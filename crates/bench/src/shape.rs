//! Shape assertions: the paper's qualitative claims per figure, checked
//! against machine-independent work counters.
//!
//! The reproduction cannot (and should not) match the paper's absolute
//! 2003 wall-clock numbers; what must hold is the *shape* of each figure —
//! which strategy wins, what degrades, and where. Each check encodes one
//! sentence of Section 5.

use gmdj_engine::strategy::Strategy;

use crate::{find, Figure, FigureId};

/// Result of one shape check.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// The paper claim being checked.
    pub name: &'static str,
    pub passed: bool,
    /// Numbers behind the verdict.
    pub detail: String,
}

/// Run every shape check for a regenerated figure.
pub fn check(fig: FigureId, figure: &Figure) -> Vec<ShapeCheck> {
    match fig {
        FigureId::Fig2 => check_fig2(figure),
        FigureId::Fig3 => check_fig3(figure),
        FigureId::Fig4 => check_fig4(figure),
        FigureId::Fig5 => check_fig5(figure),
    }
}

fn work(figure: &Figure, point: usize, s: Strategy) -> Option<f64> {
    find(&figure.points[point], s).map(|m| m.work.max(1) as f64)
}

fn wall(figure: &Figure, point: usize, s: Strategy) -> Option<f64> {
    find(&figure.points[point], s).map(|m| m.wall.as_secs_f64().max(1e-9))
}

fn ratio_check(
    name: &'static str,
    num: Option<f64>,
    den: Option<f64>,
    min_ratio: f64,
) -> ShapeCheck {
    match (num, den) {
        (Some(n), Some(d)) => {
            let r = n / d;
            ShapeCheck {
                name,
                passed: r >= min_ratio,
                detail: format!("ratio {r:.1} (required ≥ {min_ratio})"),
            }
        }
        _ => ShapeCheck {
            name,
            passed: true,
            detail: "baseline skipped at this size (cost cap) — counts as degraded".into(),
        },
    }
}

fn within_check(name: &'static str, a: Option<f64>, b: Option<f64>, factor: f64) -> ShapeCheck {
    match (a, b) {
        (Some(a), Some(b)) => {
            let r = if a > b { a / b } else { b / a };
            ShapeCheck {
                name,
                passed: r <= factor,
                detail: format!("ratio {r:.1} (required ≤ {factor})"),
            }
        }
        _ => ShapeCheck {
            name,
            passed: false,
            detail: "strategy missing".into(),
        },
    }
}

fn check_fig2(f: &Figure) -> Vec<ShapeCheck> {
    let last = f.points.len() - 1;
    vec![
        // "even for this type of query which is the simplest possible
        // case in unnesting, the GMDJ performs just as well as joins".
        within_check(
            "GMDJ performs as well as join unnesting on simple EXISTS",
            work(f, last, Strategy::GmdjBasic),
            work(f, last, Strategy::JoinUnnest),
            5.0,
        ),
        // "both the join-based unnesting and the GMDJ evaluation perform
        // significantly better" than the native EXISTS algorithm — in our
        // in-memory native simulation the gap narrows, so the bar is
        // "no worse than comparable".
        within_check(
            "GMDJ at least competitive with the native EXISTS algorithm",
            work(f, last, Strategy::GmdjBasic),
            work(f, last, Strategy::NativeSmart),
            5.0,
        ),
        scaling_check(f, Strategy::GmdjBasic, 10.0),
    ]
}

fn check_fig3(f: &Figure) -> Vec<ShapeCheck> {
    let last = f.points.len() - 1;
    vec![
        // "Not surprisingly, the join and GMDJ evaluations perform
        // significantly better for this query" than the nested loop.
        ratio_check(
            "native nested loop degrades vs optimized GMDJ",
            work(f, last, Strategy::NaiveNestedLoop),
            work(f, last, Strategy::GmdjOptimized),
            5.0,
        ),
        // "the GMDJ evaluation is much more memory efficient and does not
        // encounter such problems" — stays linear across the sweep.
        scaling_check(f, Strategy::GmdjOptimized, 12.0),
        within_check(
            "GMDJ comparable to aggregate/outer-join unnesting",
            work(f, last, Strategy::GmdjOptimized),
            work(f, last, Strategy::JoinUnnest),
            6.0,
        ),
    ]
}

fn check_fig4(f: &Figure) -> Vec<ShapeCheck> {
    let last = f.points.len() - 1;
    vec![
        // "the join/outer-join unnesting took more than 7 hours" — the
        // materializing set-difference plan must be catastrophically worse
        // than completion-optimized GMDJ (or skipped by the cost cap).
        // Wall time, not work units: the catastrophe is dominated by
        // materializing the quadratic violating-pairs relation.
        ratio_check(
            "join/set-difference unnesting is catastrophic",
            wall(f, last, Strategy::JoinUnnest),
            wall(f, last, Strategy::GmdjOptimized),
            10.0,
        ),
        // "the basic GMDJ evaluation algorithm ... is forced into an
        // evaluation that essentially mimics tuple-iteration semantics.
        // However, if the GMDJ expressions are optimized using tuple
        // completion, the GMDJs perform well."
        ratio_check(
            "tuple completion rescues the GMDJ on the <> ALL query",
            work(f, last, Strategy::GmdjBasic),
            work(f, last, Strategy::GmdjOptimized),
            5.0,
        ),
        // "the native evaluation performs very well for ALL subqueries"
        // (its smart nested loop is itself a form of tuple completion) —
        // completed GMDJ must land in the same league.
        within_check(
            "GMDJ with completion in the same league as the smart nested loop",
            work(f, last, Strategy::GmdjOptimized),
            work(f, last, Strategy::NativeSmart),
            15.0,
        ),
    ]
}

fn check_fig5(f: &Figure) -> Vec<ShapeCheck> {
    let last = f.points.len() - 1;
    vec![
        // "where this is not the case [indexes] it performs very badly".
        ratio_check(
            "native collapses without indexes",
            work(f, last, Strategy::NativeSmartNoIndex),
            work(f, last, Strategy::NativeSmart),
            5.0,
        ),
        // "Without indexes, the join evaluation again performs very
        // poorly."
        ratio_check(
            "join unnesting collapses without indexes",
            work(f, last, Strategy::JoinUnnestNoIndex),
            work(f, last, Strategy::JoinUnnest),
            5.0,
        ),
        // "its performance is basically unaffected by the absence of
        // indexes — in such a situation, the GMDJ evaluation performs an
        // order of magnitude better".
        ratio_check(
            "GMDJ beats the unindexed baselines by an order of magnitude",
            work(f, last, Strategy::NativeSmartNoIndex),
            work(f, last, Strategy::GmdjOptimized),
            8.0,
        ),
        // "by applying our previously described optimizations, the GMDJ
        // evaluation again outperforms the specialized EXISTS evaluation"
        // — coalescing + completion must beat the basic chain.
        ratio_check(
            "coalescing + completion improve on the basic GMDJ",
            work(f, last, Strategy::GmdjBasic),
            work(f, last, Strategy::GmdjOptimized),
            1.5,
        ),
    ]
}

/// Work should scale roughly linearly with the input sweep (factor 4
/// growth), never quadratically.
fn scaling_check(f: &Figure, s: Strategy, max_growth: f64) -> ShapeCheck {
    let first = work(f, 0, s);
    let last = work(f, f.points.len() - 1, s);
    match (first, last) {
        (Some(a), Some(b)) => {
            let growth = b / a;
            ShapeCheck {
                name: "GMDJ work scales (sub-)linearly across the sweep",
                passed: growth <= max_growth,
                detail: format!("growth {growth:.1}x across the sweep (required ≤ {max_growth}x)"),
            }
        }
        _ => ShapeCheck {
            name: "GMDJ work scales (sub-)linearly across the sweep",
            passed: false,
            detail: "strategy missing".into(),
        },
    }
}

/// Render check results.
pub fn render(checks: &[ShapeCheck]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for c in checks {
        let mark = if c.passed { "PASS" } else { "FAIL" };
        let _ = writeln!(out, "  [{mark}] {} — {}", c.name, c.detail);
    }
    out
}
