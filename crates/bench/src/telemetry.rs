//! Benchmark telemetry: recorded perf trajectories with noise-free
//! regression gates.
//!
//! `repro bench` executes the Figure 2–5 workloads plus an ablation grid
//! at fixed seeds and scales under the execution policies, and records
//! two kinds of signal per (workload, size, strategy, policy) cell:
//!
//! * **wall-clock** — warmup runs followed by repeated measurements,
//!   summarized as a trimmed mean (min and max dropped). Machine-bound,
//!   noisy, therefore only *warn*-gated against the baseline;
//! * **deterministic counters** — the quantities the evaluator already
//!   counts exactly ([`EvalStats`](gmdj_core::eval::EvalStats) work,
//!   [`NetworkStats`](gmdj_core::distributed::NetworkStats) traffic,
//!   table rows scanned, relational-operator row flow, per-plan-node
//!   invocations). Same seed ⇒ same bytes, so any drift against
//!   `bench/baseline.json` is a real plan-quality change and **hard-fails**
//!   the gate. The runner additionally asserts the counters are identical
//!   across its own repetitions, so a nondeterministic counter can never
//!   be recorded in the first place.
//!
//! The report is one `BENCH_<run>.json` document, schema-documented in
//! `schemas/bench.schema.json` and validated by [`validate_bench`] on the
//! same hand-rolled JSON parser the profile subsystem uses
//! ([`crate::profile::parse_json`]). [`compare_reports`] implements the
//! two-tier gate and, for a drifted entry, diffs the recorded plan-node
//! counter trees pairwise — naming the regressed node and its cost-model
//! figure ([`gmdj_core::cost::observed_cost`]) before and after.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use gmdj_core::cost;
use gmdj_core::eval::ProbeStrategy;
use gmdj_core::metrics::{self, Histogram};
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats};
use gmdj_core::shared::{SharedScanConfig, SharedScanPool};
use gmdj_engine::strategy::{run_with_policy, run_with_policy_pooled, RunResult, Strategy};
use gmdj_relation::error::{Error, Result};

use crate::profile::Json;
use crate::{lineup, pair_cap, size_label, sizes, workload, FigureId};
use gmdj_datagen::workloads::Workload;

/// Schema version written to and required from bench documents.
/// Version 2 added the page-accounting counters (`col_chunk_reads`,
/// `row_page_reads`) to the gated counter set — entry rollups and
/// per-plan-node trees both — and the `+m<N>` morsel-size component to
/// policy labels.
pub const BENCH_VERSION: u64 = 2;

/// The deterministic counter set recorded per bench entry, every field an
/// exact count read back from the run (no wall-clock anywhere). Two runs
/// at the same seed, scale, strategy and policy produce identical values;
/// the baseline gate therefore tolerates zero drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Result cardinality.
    pub rows: u64,
    /// Strategy-level machine-independent work figure.
    pub work: u64,
    /// Number of nodes in the recorded plan tree (0 for plan-free
    /// strategies).
    pub plan_nodes: u64,
    /// Plan-node invocations summed over the tree.
    pub invocations: u64,
    /// Table rows scanned, summed over the tree.
    pub scanned_rows: u64,
    /// Relational-operator input rows, summed over the tree.
    pub ops_rows_in: u64,
    /// Relational-operator output rows, summed over the tree.
    pub ops_rows_out: u64,
    // The twelve evaluator counters, rolled up over the tree.
    pub detail_scanned: u64,
    pub probe_candidates: u64,
    pub theta_evals: u64,
    pub agg_updates: u64,
    pub base_rows: u64,
    pub dead_early: u64,
    pub done_early: u64,
    pub index_builds: u64,
    pub partitions: u64,
    pub completion_fallbacks: u64,
    pub col_chunk_reads: u64,
    pub row_page_reads: u64,
    // Closed-form network traffic (transport-independent value counts;
    // the measured byte counters are deliberately NOT extracted here —
    // they differ between transports and must never gate).
    pub messages: u64,
    pub broadcast_values: u64,
    pub collected_states: u64,
}

/// The 22 counter keys, alphabetically sorted — the order they are
/// emitted in JSON and required by the schema.
pub const COUNTER_KEYS: [&str; 22] = [
    "agg_updates",
    "base_rows",
    "broadcast_values",
    "col_chunk_reads",
    "collected_states",
    "completion_fallbacks",
    "dead_early",
    "detail_scanned",
    "done_early",
    "index_builds",
    "invocations",
    "messages",
    "ops_rows_in",
    "ops_rows_out",
    "partitions",
    "plan_nodes",
    "probe_candidates",
    "row_page_reads",
    "rows",
    "scanned_rows",
    "theta_evals",
    "work",
];

impl Counters {
    /// Extract the counter set from a strategy run.
    pub fn from_run(result: &RunResult) -> Counters {
        let mut c = Counters {
            rows: result.relation.len() as u64,
            work: result.stats.work(),
            ..Counters::default()
        };
        if let Some(tree) = &result.plan_stats {
            let eval = tree.total_eval();
            let net = tree.total_network();
            let ops = tree.total_ops();
            c.plan_nodes = count_nodes(tree);
            c.invocations = sum_invocations(tree);
            c.scanned_rows = tree.total_scanned();
            c.ops_rows_in = ops.rows_in;
            c.ops_rows_out = ops.rows_out;
            c.detail_scanned = eval.detail_scanned;
            c.probe_candidates = eval.probe_candidates;
            c.theta_evals = eval.theta_evals;
            c.agg_updates = eval.agg_updates;
            c.base_rows = eval.base_rows;
            c.dead_early = eval.dead_early;
            c.done_early = eval.done_early;
            c.index_builds = eval.index_builds;
            c.partitions = eval.partitions;
            c.completion_fallbacks = eval.completion_fallbacks;
            c.col_chunk_reads = eval.col_chunk_reads;
            c.row_page_reads = eval.row_page_reads;
            c.messages = net.messages;
            c.broadcast_values = net.broadcast_values;
            c.collected_states = net.collected_states;
        }
        c
    }

    /// `(key, value)` pairs in [`COUNTER_KEYS`] (sorted) order.
    pub fn items(&self) -> [(&'static str, u64); 22] {
        [
            ("agg_updates", self.agg_updates),
            ("base_rows", self.base_rows),
            ("broadcast_values", self.broadcast_values),
            ("col_chunk_reads", self.col_chunk_reads),
            ("collected_states", self.collected_states),
            ("completion_fallbacks", self.completion_fallbacks),
            ("dead_early", self.dead_early),
            ("detail_scanned", self.detail_scanned),
            ("done_early", self.done_early),
            ("index_builds", self.index_builds),
            ("invocations", self.invocations),
            ("messages", self.messages),
            ("ops_rows_in", self.ops_rows_in),
            ("ops_rows_out", self.ops_rows_out),
            ("partitions", self.partitions),
            ("plan_nodes", self.plan_nodes),
            ("probe_candidates", self.probe_candidates),
            ("row_page_reads", self.row_page_reads),
            ("rows", self.rows),
            ("scanned_rows", self.scanned_rows),
            ("theta_evals", self.theta_evals),
            ("work", self.work),
        ]
    }

    fn to_json(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.items().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

fn count_nodes(t: &PlanNodeStats) -> u64 {
    1 + t.children.iter().map(count_nodes).sum::<u64>()
}

fn sum_invocations(t: &PlanNodeStats) -> u64 {
    t.invocations + t.children.iter().map(sum_invocations).sum::<u64>()
}

/// The per-node counter keys of the recorded plan tree (alphabetical).
pub const NODE_COUNTER_KEYS: [&str; 20] = [
    "agg_updates",
    "base_rows",
    "broadcast_values",
    "col_chunk_reads",
    "collected_states",
    "completion_fallbacks",
    "dead_early",
    "detail_scanned",
    "done_early",
    "index_builds",
    "invocations",
    "messages",
    "ops_rows_in",
    "ops_rows_out",
    "partitions",
    "probe_candidates",
    "row_page_reads",
    "rows_out",
    "scanned_rows",
    "theta_evals",
];

fn node_counter_items(t: &PlanNodeStats) -> [(&'static str, u64); 20] {
    let e = &t.eval;
    let n = &t.network;
    [
        ("agg_updates", e.agg_updates),
        ("base_rows", e.base_rows),
        ("broadcast_values", n.broadcast_values),
        ("col_chunk_reads", e.col_chunk_reads),
        ("collected_states", n.collected_states),
        ("completion_fallbacks", e.completion_fallbacks),
        ("dead_early", e.dead_early),
        ("detail_scanned", e.detail_scanned),
        ("done_early", e.done_early),
        ("index_builds", e.index_builds),
        ("invocations", t.invocations),
        ("messages", n.messages),
        ("ops_rows_in", t.ops.rows_in),
        ("ops_rows_out", t.ops.rows_out),
        ("partitions", e.partitions),
        ("probe_candidates", e.probe_candidates),
        ("row_page_reads", e.row_page_reads),
        ("rows_out", t.rows_out),
        ("scanned_rows", t.scanned_rows),
        ("theta_evals", e.theta_evals),
    ]
}

/// Render the *deterministic projection* of a plan-stats tree: labels and
/// counters only, every timing field excluded, keys sorted — the plan
/// section of a bench entry, byte-reproducible at a fixed seed.
pub fn counter_tree_json(t: &PlanNodeStats) -> String {
    let mut out = format!(
        "{{\"label\":\"{}\",\"counters\":{{",
        gmdj_core::trace::json_escape(&t.label)
    );
    for (i, (k, v)) in node_counter_items(t).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push_str("},\"children\":[");
    for (i, c) in t.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&counter_tree_json(c));
    }
    out.push_str("]}");
    out
}

/// Reconstruct a (timing-free) [`PlanNodeStats`] from a counter tree, so
/// [`gmdj_core::cost::observed_cost`] can price recorded plans without
/// re-running them.
pub fn plan_from_counter_tree(node: &Json) -> std::result::Result<PlanNodeStats, String> {
    let counters = node.get("counters").ok_or("node missing `counters`")?;
    let num = |key: &str| -> std::result::Result<u64, String> {
        counters
            .get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("node counters missing `{key}`"))
    };
    let mut out = PlanNodeStats::new(
        node.get("label")
            .and_then(Json::as_str)
            .ok_or("node missing `label`")?,
    );
    out.rows_out = num("rows_out")?;
    out.scanned_rows = num("scanned_rows")?;
    out.invocations = num("invocations")?;
    out.ops.rows_in = num("ops_rows_in")?;
    out.ops.rows_out = num("ops_rows_out")?;
    out.eval.detail_scanned = num("detail_scanned")?;
    out.eval.probe_candidates = num("probe_candidates")?;
    out.eval.theta_evals = num("theta_evals")?;
    out.eval.agg_updates = num("agg_updates")?;
    out.eval.base_rows = num("base_rows")?;
    out.eval.dead_early = num("dead_early")?;
    out.eval.done_early = num("done_early")?;
    out.eval.index_builds = num("index_builds")?;
    out.eval.partitions = num("partitions")?;
    out.eval.completion_fallbacks = num("completion_fallbacks")?;
    out.eval.col_chunk_reads = num("col_chunk_reads")?;
    out.eval.row_page_reads = num("row_page_reads")?;
    out.network.messages = num("messages")?;
    out.network.broadcast_values = num("broadcast_values")?;
    out.network.collected_states = num("collected_states")?;
    for c in node
        .get("children")
        .and_then(Json::as_arr)
        .ok_or("node missing `children`")?
    {
        out.children.push(plan_from_counter_tree(c)?);
    }
    Ok(out)
}

/// Wall-clock summary of one entry's repetitions.
#[derive(Debug, Clone, Copy)]
pub struct WallStats {
    /// Number of measured repetitions (warmups excluded).
    pub reps: u64,
    /// Mean of the repetitions with min and max dropped (plain mean when
    /// fewer than three repetitions), microseconds.
    pub trimmed_mean_us: u64,
    pub min_us: u64,
    pub max_us: u64,
}

fn wall_stats(mut samples: Vec<u64>) -> WallStats {
    samples.sort_unstable();
    let reps = samples.len() as u64;
    let (min_us, max_us) = (samples[0], samples[samples.len() - 1]);
    let trimmed: &[u64] = if samples.len() >= 3 {
        &samples[1..samples.len() - 1]
    } else {
        &samples
    };
    WallStats {
        reps,
        trimmed_mean_us: trimmed.iter().sum::<u64>() / trimmed.len() as u64,
        min_us,
        max_us,
    }
}

/// One measured cell of the bench grid.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Workload group: `fig2`..`fig5` or `ablation/<name>`.
    pub group: String,
    /// Size-point or variant label within the group.
    pub label: String,
    pub strategy: &'static str,
    /// Stable policy label (`seq`, `par2`, `dist2`, `seq+part4`).
    pub policy: String,
    /// Whether the counter section of this entry is hard-gated against
    /// the baseline.
    pub gated: bool,
    pub wall: WallStats,
    pub counters: Counters,
    /// Deterministic plan-tree projection (GMDJ strategies only).
    pub plan: Option<PlanNodeStats>,
    /// The cost model's figure for the recorded work
    /// ([`gmdj_core::cost::observed_cost`]); derived from the counters,
    /// hence equally deterministic.
    pub predicted_cost: Option<f64>,
}

impl BenchEntry {
    /// The identity of this cell in baseline comparisons.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.group, self.label, self.strategy, self.policy
        )
    }

    fn to_json(&self) -> String {
        let plan = match &self.plan {
            Some(t) => counter_tree_json(t),
            None => "null".into(),
        };
        let predicted = match self.predicted_cost {
            Some(c) => format!("{c:.1}"),
            None => "null".into(),
        };
        format!(
            "{{\"group\":\"{}\",\"label\":\"{}\",\"strategy\":\"{}\",\"policy\":\"{}\",\
             \"gated\":{},\"wall\":{{\"max_us\":{},\"min_us\":{},\"reps\":{},\"trimmed_mean_us\":{}}},\
             \"counters\":{},\"predicted_cost\":{},\"plan\":{}}}",
            gmdj_core::trace::json_escape(&self.group),
            gmdj_core::trace::json_escape(&self.label),
            self.strategy,
            self.policy,
            self.gated,
            self.wall.max_us,
            self.wall.min_us,
            self.wall.reps,
            self.wall.trimmed_mean_us,
            self.counters.to_json(),
            predicted,
            plan,
        )
    }
}

/// Stable, filename-safe label for an execution policy (delegates to
/// [`ExecPolicy::label`], which the progress registry also uses).
pub fn policy_label(policy: &ExecPolicy) -> String {
    policy.label()
}

/// Configuration of one bench run. [`BenchConfig::quick`] is the CI /
/// baseline configuration; [`BenchConfig::full`] takes longer and sweeps
/// larger sizes for local trajectory recording.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub figures: Vec<FigureId>,
    /// Multiplier on the paper's row counts (see [`sizes`]).
    pub scale: f64,
    pub seed: u64,
    /// Unmeasured warmup runs per cell.
    pub warmup: u32,
    /// Measured repetitions per cell.
    pub reps: u32,
    /// Include the ablation grid.
    pub ablations: bool,
    /// Run the figure grid's first size point also under the parallel and
    /// distributed policies (GMDJ strategies only).
    pub cross_policy: bool,
    /// Mode tag written to the report (`quick` or `full`).
    pub quick: bool,
    /// Run the grid through the vectorized detail-scan kernels (default)
    /// or force the row path everywhere. The kernels are counter-exact,
    /// so both settings must pass the same baseline — the flag is
    /// recorded in the report header informationally and never enters an
    /// entry's identity key.
    pub vectorized: bool,
    /// Override the parallel detail scan's morsel size (rows per queue
    /// pull) on the figure-grid policies. Pure scheduling: every gated
    /// counter — page accounting included — is identical for any setting.
    /// Unlike `vectorized` the label IS part of the entry key (`+mN`), so
    /// an override records a new trajectory rather than gating against
    /// the default baseline. The morsel-size ablation group pins its own
    /// values and ignores this.
    pub morsel_size: Option<usize>,
    /// Run the distributed-policy cells over real socket-backed loopback
    /// sites instead of the in-process transport. Like `vectorized`,
    /// this is a physical-path choice that must not move any gated
    /// counter (the sites run the identical evaluation; only the
    /// ungated byte counters and wall-clock change), so it is recorded
    /// in the header and the run id but never enters an entry's key —
    /// a real-sites run gates against the same baseline.
    pub real_sites: bool,
    /// `Some(n)`: additionally run the concurrent-load group — `n`
    /// identical GMDJ queries submitted serially (standalone) and then
    /// concurrently through a [`SharedScanPool`], recording per-query
    /// latency quantiles, queries/sec, the speedup, and the shared-scan
    /// pass counters. The grid entries are untouched (sharing engages
    /// only on the pooled leg), so the existing baseline entries stay
    /// byte-identical; the section gets its own blessed record.
    pub concurrent: Option<usize>,
}

impl BenchConfig {
    /// The CI configuration: every figure, tiny scale, short repetitions.
    /// This is the configuration `bench/baseline.json` is recorded with.
    pub fn quick(seed: u64) -> Self {
        BenchConfig {
            figures: FigureId::all().to_vec(),
            scale: 0.004,
            seed,
            warmup: 1,
            reps: 3,
            ablations: true,
            cross_policy: true,
            quick: true,
            vectorized: true,
            morsel_size: None,
            real_sites: false,
            concurrent: None,
        }
    }

    /// The local trajectory-recording configuration.
    pub fn full(seed: u64) -> Self {
        BenchConfig {
            scale: 0.05,
            warmup: 1,
            reps: 5,
            quick: false,
            ..Self::quick(seed)
        }
    }

    /// Deterministic run identifier: `BENCH_<run_id>.json`. Row-path and
    /// real-sites runs get distinct ids so those legs never overwrite
    /// the canonical recording.
    pub fn run_id(&self) -> String {
        format!(
            "{}_seed{}{}{}{}",
            if self.quick {
                "quick".into()
            } else {
                format!("s{}", self.scale)
            },
            self.seed,
            if self.vectorized { "" } else { "_rowpath" },
            if self.real_sites { "_realsites" } else { "" },
            match self.concurrent {
                Some(n) => format!("_conc{n}"),
                None => String::new(),
            }
        )
    }
}

/// A completed bench run.
#[derive(Debug)]
pub struct BenchReport {
    pub config: BenchConfig,
    pub entries: Vec<BenchEntry>,
    /// Process-level `query_latency_us` quantiles from the global
    /// [`metrics`] registry `(count, p50, p95, p99)` — wall-bound, not
    /// gated.
    pub latency: Option<(u64, u64, u64, u64)>,
    /// The concurrent-load group ([`BenchConfig::concurrent`]).
    pub concurrent: Option<ConcurrentReport>,
}

impl BenchReport {
    /// Render the full document (`BENCH_<run>.json`).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{},\"run\":\"{}\",\"mode\":\"{}\",\"scale\":{},\"seed\":{},\
             \"warmup\":{},\"reps\":{},\"vectorized\":{},\"real_sites\":{},\"entries\":[",
            BENCH_VERSION,
            self.config.run_id(),
            if self.config.quick { "quick" } else { "full" },
            self.config.scale,
            self.config.seed,
            self.config.warmup,
            self.config.reps,
            self.config.vectorized,
            self.config.real_sites,
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("],\"latency\":");
        match self.latency {
            Some((count, p50, p95, p99)) => out.push_str(&format!(
                "{{\"count\":{count},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}"
            )),
            None => out.push_str("null"),
        }
        if let Some(conc) = &self.concurrent {
            out.push_str(",\"concurrent\":");
            out.push_str(&conc.to_json());
        }
        out.push('}');
        out
    }
}

/// The concurrent-load group: `queries` identical GMDJs over one detail
/// table, measured submitted serially (standalone runs, back to back) and
/// then concurrently through a [`SharedScanPool`] where they coalesce
/// into shared passes. The per-query work counters are identical between
/// the legs (logical accounting — that is the correctness claim) and
/// deterministic, so they gate; the pass counters prove the physical
/// amortization (detail chunks paid once per pass, not once per query);
/// wall-clock, latency quantiles, queries/sec and the speedup are
/// machine-bound and informational.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Queries per wave (`--concurrent`'s N).
    pub queries: usize,
    /// Measured waves.
    pub reps: u32,
    pub group: String,
    pub label: String,
    pub strategy: &'static str,
    pub policy: String,
    /// Per-query gated counters — asserted identical across every query
    /// of both legs and every rep before being recorded.
    pub counters: Counters,
    /// `shared_scan_passes_total` delta over the measured waves
    /// (deterministic: one pass per plan GMDJ node per wave).
    pub shared_scan_passes: u64,
    /// `shared_scan_queries_served_total` delta — `queries ×` the pass
    /// count; the `passes < served` gap IS the shared work.
    pub shared_scan_queries_served: u64,
    /// Whole-wave wall-clock, serial leg (N standalone runs back to
    /// back).
    pub serial_wall: WallStats,
    /// Whole-wave wall-clock, pooled leg (N concurrent submissions).
    pub shared_wall: WallStats,
    /// Per-query latency `(p50, p95, p99)` µs, serial leg.
    pub serial_latency_us: (u64, u64, u64),
    /// Per-query latency `(p50, p95, p99)` µs, pooled leg.
    pub shared_latency_us: (u64, u64, u64),
    /// Queries per second from the trimmed-mean wave wall-clock.
    pub serial_qps: f64,
    /// Queries per second from the trimmed-mean wave wall-clock.
    pub shared_qps: f64,
    /// `shared_qps / serial_qps`.
    pub speedup: f64,
}

impl ConcurrentReport {
    /// Render the `"concurrent"` report section.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queries\":{},\"reps\":{},\"group\":\"{}\",\"label\":\"{}\",\
             \"strategy\":\"{}\",\"policy\":\"{}\",\"counters\":{},\
             \"shared_scan_passes\":{},\"shared_scan_queries_served\":{},\
             \"serial_wall\":{{\"max_us\":{},\"min_us\":{},\"reps\":{},\"trimmed_mean_us\":{}}},\
             \"shared_wall\":{{\"max_us\":{},\"min_us\":{},\"reps\":{},\"trimmed_mean_us\":{}}},\
             \"serial_latency\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"shared_latency\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"serial_qps\":{:.1},\"shared_qps\":{:.1},\"speedup\":{:.3}}}",
            self.queries,
            self.reps,
            gmdj_core::trace::json_escape(&self.group),
            gmdj_core::trace::json_escape(&self.label),
            self.strategy,
            self.policy,
            self.counters.to_json(),
            self.shared_scan_passes,
            self.shared_scan_queries_served,
            self.serial_wall.max_us,
            self.serial_wall.min_us,
            self.serial_wall.reps,
            self.serial_wall.trimmed_mean_us,
            self.shared_wall.max_us,
            self.shared_wall.min_us,
            self.shared_wall.reps,
            self.shared_wall.trimmed_mean_us,
            self.serial_latency_us.0,
            self.serial_latency_us.1,
            self.serial_latency_us.2,
            self.shared_latency_us.0,
            self.shared_latency_us.1,
            self.shared_latency_us.2,
            self.serial_qps,
            self.shared_qps,
            self.speedup,
        )
    }
}

/// Measure one cell: warmups, then `reps` measured runs. The counters of
/// every repetition must agree exactly — a mismatch means a counter is
/// nondeterministic and must not be recorded, so it is an error.
fn measure(
    w: &Workload,
    strategy: Strategy,
    policy: ExecPolicy,
    cfg: &BenchConfig,
    group: &str,
    label: &str,
    gated: bool,
) -> Result<BenchEntry> {
    for _ in 0..cfg.warmup {
        run_with_policy(&w.query, &w.catalog, strategy, policy)?;
    }
    let mut walls: Vec<u64> = Vec::with_capacity(cfg.reps as usize);
    let mut recorded: Option<(Counters, Option<PlanNodeStats>)> = None;
    for _ in 0..cfg.reps.max(1) {
        let result = run_with_policy(&w.query, &w.catalog, strategy, policy)?;
        walls.push(result.wall.as_micros() as u64);
        let counters = Counters::from_run(&result);
        match &recorded {
            None => recorded = Some((counters, result.plan_stats)),
            Some((prev, _)) if *prev != counters => {
                return Err(Error::invalid(format!(
                    "nondeterministic counters for {group} {label} {} {}: {prev:?} vs {counters:?}",
                    strategy.label(),
                    policy_label(&policy),
                )));
            }
            Some(_) => {}
        }
    }
    let (counters, plan) = recorded.expect("at least one rep");
    let predicted_cost = plan.as_ref().map(|t| cost::observed_cost(t).total());
    Ok(BenchEntry {
        group: group.to_string(),
        label: label.to_string(),
        strategy: strategy.label(),
        policy: policy_label(&policy),
        gated,
        wall: wall_stats(walls),
        counters,
        plan,
        predicted_cost,
    })
}

fn figure_group(fig: FigureId) -> &'static str {
    match fig {
        FigureId::Fig2 => "fig2",
        FigureId::Fig3 => "fig3",
        FigureId::Fig4 => "fig4",
        FigureId::Fig5 => "fig5",
    }
}

/// Execute the configured bench grid. Deterministic counter sections:
/// every entry is gated — the runner has already proven rep-to-rep
/// counter equality, and chunked parallel scans split by fixed ranges, so
/// counters do not depend on scheduling.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport> {
    // Every grid policy inherits the run's vectorization setting and
    // morsel-size override; the dedicated ablation groups below pin
    // their own values per entry.
    let vec_policy = |p: ExecPolicy| {
        let p = p
            .with_vectorized(cfg.vectorized)
            .with_real_sites(cfg.real_sites);
        match cfg.morsel_size {
            Some(m) => p.with_morsel_size(Some(m)),
            None => p,
        }
    };
    let mut entries: Vec<BenchEntry> = Vec::new();
    for &fig in &cfg.figures {
        let group = figure_group(fig);
        for (pi, (outer, inner)) in sizes(fig, cfg.scale).into_iter().enumerate() {
            let w = workload(fig, outer, inner, cfg.seed);
            let label = size_label(fig, outer, inner);
            for strategy in lineup(fig) {
                if let Some(cap) = pair_cap(fig, strategy) {
                    if (outer as u64) * (inner as u64) > cap {
                        continue;
                    }
                }
                entries.push(measure(
                    &w,
                    strategy,
                    vec_policy(ExecPolicy::sequential()),
                    cfg,
                    group,
                    &label,
                    true,
                )?);
                // Cross-policy coverage on the first size point: the
                // policies only affect strategies that execute GMDJ plans.
                let has_plan = entries.last().map(|e| e.plan.is_some()).unwrap_or(false);
                if cfg.cross_policy && pi == 0 && has_plan {
                    for policy in [ExecPolicy::parallel(2), ExecPolicy::distributed(2)] {
                        entries.push(measure(
                            &w,
                            strategy,
                            vec_policy(policy),
                            cfg,
                            group,
                            &label,
                            true,
                        )?);
                    }
                }
            }
        }
    }
    if cfg.ablations {
        entries.extend(run_ablations(cfg)?);
    }
    let concurrent = match cfg.concurrent {
        Some(n) => Some(run_concurrent(cfg, n)?),
        None => None,
    };
    let latency = metrics::global().histogram("query_latency_us").map(|h| {
        let (p50, p95, p99) = h.quantiles();
        (h.count(), p50, p95, p99)
    });
    Ok(BenchReport {
        config: cfg.clone(),
        entries,
        latency,
        concurrent,
    })
}

/// Counter-equality check across every query of both concurrent legs:
/// the shared pass must do exactly the standalone per-query work.
fn check_concurrent_counters(
    recorded: &mut Option<Counters>,
    counters: Counters,
    leg: &str,
) -> Result<()> {
    match recorded {
        None => {
            *recorded = Some(counters);
            Ok(())
        }
        Some(prev) if *prev != counters => Err(Error::invalid(format!(
            "concurrent group: {leg} per-query counters diverge \
             (shared execution must be counter-identical to standalone): \
             {prev:?} vs {counters:?}"
        ))),
        Some(_) => Ok(()),
    }
}

/// The concurrent-load group: `n` identical GMDJ queries over one detail
/// table, measured (a) submitted serially as standalone runs and (b)
/// submitted concurrently through a [`SharedScanPool`] sized to coalesce
/// the whole wave into shared passes. Hard-errors if any query's gated
/// counters differ between legs, if the waves did not fully coalesce
/// (`served != passes × n`), or if sharing paid no passes at all.
fn run_concurrent(cfg: &BenchConfig, n: usize) -> Result<ConcurrentReport> {
    let n = n.max(1);
    // The largest Fig2 point at a boosted scale: a single-detail-table
    // GMDJ plan where the detail scan dominates — the workload the
    // sharing claim is about. The grid's quick tier keeps relations tiny
    // so 94 entries stay fast; here one workload is reused across every
    // wave, so it can afford to be large enough that per-wave fixed costs
    // (thread spawns, per-query prepare) do not swamp the shared scan.
    let conc_scale = (cfg.scale * 25.0).min(1.0);
    let (outer, inner) = *sizes(FigureId::Fig2, conc_scale)
        .last()
        .expect("fig2 has size points");
    let w = workload(FigureId::Fig2, outer, inner, cfg.seed);
    let label = size_label(FigureId::Fig2, outer, inner);
    let strategy = Strategy::GmdjOptimized;
    let policy = {
        let p = ExecPolicy::parallel(2).with_vectorized(cfg.vectorized);
        match cfg.morsel_size {
            Some(m) => p.with_morsel_size(Some(m)),
            None => p,
        }
    };
    // A generous window plus target_batch = n: the barrier-released wave
    // coalesces completely, so pass counts are closed-form.
    let pool = Arc::new(SharedScanPool::new(SharedScanConfig {
        window: Duration::from_millis(500),
        target_batch: n,
        threads: 4,
        morsel_rows: gmdj_core::runtime::DEFAULT_MORSEL_ROWS,
    }));
    let reps = cfg.reps.max(1);
    let mut recorded: Option<Counters> = None;

    // Serial leg: the same n queries, standalone, back to back.
    for _ in 0..cfg.warmup {
        run_with_policy(&w.query, &w.catalog, strategy, policy)?;
    }
    let mut serial_hist = Histogram::default();
    let mut serial_walls: Vec<u64> = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..n {
            let r = run_with_policy(&w.query, &w.catalog, strategy, policy)?;
            serial_hist.observe(r.wall.as_micros() as u64);
            check_concurrent_counters(&mut recorded, Counters::from_run(&r), "serial")?;
        }
        serial_walls.push(t0.elapsed().as_micros() as u64);
    }

    // Pooled leg: one barrier-released wave of n submitter threads per
    // rep, all coalescing through the pool.
    let pooled_wave = |hist: Option<&mut Histogram>,
                       recorded: &mut Option<Counters>|
     -> Result<u64> {
        let barrier = Barrier::new(n);
        let t0 = Instant::now();
        let runs: Vec<Result<(RunResult, Duration)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let (w, pool, barrier, policy) = (&w, pool.clone(), &barrier, policy);
                    scope.spawn(move || -> Result<(RunResult, Duration)> {
                        barrier.wait();
                        let t = Instant::now();
                        let r =
                            run_with_policy_pooled(&w.query, &w.catalog, strategy, policy, pool)?;
                        Ok((r, t.elapsed()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::invalid("concurrent submitter panicked")))
                })
                .collect()
        });
        let wave_us = t0.elapsed().as_micros() as u64;
        let mut hist = hist;
        for run in runs {
            let (r, latency) = run?;
            if let Some(h) = hist.as_deref_mut() {
                h.observe(latency.as_micros() as u64);
            }
            check_concurrent_counters(recorded, Counters::from_run(&r), "shared")?;
        }
        Ok(wave_us)
    };
    for _ in 0..cfg.warmup {
        pooled_wave(None, &mut recorded)?;
    }
    let m = metrics::global();
    let passes_before = m.counter("shared_scan_passes_total");
    let served_before = m.counter("shared_scan_queries_served_total");
    let mut shared_hist = Histogram::default();
    let mut shared_walls: Vec<u64> = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        shared_walls.push(pooled_wave(Some(&mut shared_hist), &mut recorded)?);
    }
    let shared_scan_passes = m.counter("shared_scan_passes_total") - passes_before;
    let shared_scan_queries_served = m.counter("shared_scan_queries_served_total") - served_before;
    if shared_scan_passes == 0 {
        return Err(Error::invalid(
            "concurrent group: pooled leg paid no shared-scan passes",
        ));
    }
    if shared_scan_queries_served != shared_scan_passes * n as u64 {
        return Err(Error::invalid(format!(
            "concurrent group: waves did not fully coalesce: \
             {shared_scan_passes} passes served {shared_scan_queries_served} queries \
             (expected passes × {n})"
        )));
    }
    if n > 1 && shared_scan_passes >= shared_scan_queries_served {
        return Err(Error::invalid(
            "concurrent group: shared_scan_passes must stay below queries served",
        ));
    }

    let serial_wall = wall_stats(serial_walls);
    let shared_wall = wall_stats(shared_walls);
    let qps = |wall: &WallStats| {
        if wall.trimmed_mean_us == 0 {
            0.0
        } else {
            n as f64 * 1e6 / wall.trimmed_mean_us as f64
        }
    };
    let serial_qps = qps(&serial_wall);
    let shared_qps = qps(&shared_wall);
    Ok(ConcurrentReport {
        queries: n,
        reps,
        group: "concurrent/fig2".to_string(),
        label,
        strategy: strategy.label(),
        policy: policy_label(&policy),
        counters: recorded.expect("at least one measured query"),
        shared_scan_passes,
        shared_scan_queries_served,
        serial_latency_us: serial_hist.quantiles(),
        shared_latency_us: shared_hist.quantiles(),
        serial_wall,
        shared_wall,
        serial_qps,
        shared_qps,
        speedup: if serial_qps > 0.0 && shared_qps > 0.0 {
            shared_qps / serial_qps
        } else {
            0.0
        },
    })
}

/// The ablation grid: the DESIGN.md design choices measured in isolation
/// (mirroring `benches/ablations.rs`, but deterministic and recorded).
fn run_ablations(cfg: &BenchConfig) -> Result<Vec<BenchEntry>> {
    let vec_policy = |p: ExecPolicy| {
        p.with_vectorized(cfg.vectorized)
            .with_real_sites(cfg.real_sites)
    };
    let mut entries = Vec::new();
    let (outer2, inner2) = sizes(FigureId::Fig2, cfg.scale)[0];
    let fig2 = workload(FigureId::Fig2, outer2, inner2, cfg.seed);
    // Intrinsic probe indexing vs scanning the active base set.
    for (label, strategy) in [
        ("hash-probe", Strategy::GmdjBasic),
        ("active-scan", Strategy::GmdjBasicNoProbeIndex),
    ] {
        entries.push(measure(
            &fig2,
            strategy,
            vec_policy(ExecPolicy::sequential()),
            cfg,
            "ablation/probe",
            label,
            true,
        )?);
    }
    // Memory-partitioned evaluation: 2 and 4 base partitions.
    for parts in [2usize, 4] {
        let rows = outer2.div_ceil(parts);
        entries.push(measure(
            &fig2,
            Strategy::GmdjOptimized,
            vec_policy(ExecPolicy::sequential().with_partition_rows(Some(rows))),
            cfg,
            "ablation/partitions",
            &format!("partitions-{parts}"),
            true,
        )?);
    }
    // Thread scaling of the detail scan.
    for threads in [1usize, 2, 4] {
        let policy = if threads == 1 {
            ExecPolicy::sequential()
        } else {
            ExecPolicy::parallel(threads)
        };
        entries.push(measure(
            &fig2,
            Strategy::GmdjOptimized,
            vec_policy(policy),
            cfg,
            "ablation/threads",
            &format!("threads-{threads}"),
            true,
        )?);
    }
    // Morsel-size sweep of the parallel work queue. Morsel size is pure
    // scheduling, so every gated counter — page accounting included — is
    // identical down the sweep; the wall-clock columns (and the balanced
    // per-worker `gmdj.worker` spans behind them) are the ablation
    // signal. Small morsels rebalance skew, the whole-relation morsel
    // degenerates to one worker doing everything.
    for morsel in [64usize, 1024, 4096] {
        entries.push(measure(
            &fig2,
            Strategy::GmdjOptimized,
            vec_policy(ExecPolicy::parallel(2).with_morsel_size(Some(morsel))),
            cfg,
            "ablation/morsel_size",
            &format!("morsel-{morsel}"),
            true,
        )?);
    }
    // Vectorized detail-scan kernels vs the row path, per probe shape and
    // thread count. Unlike the rest of the grid (which inherits the run's
    // vectorization setting), these entries pin it per label so one report
    // carries the on/off contrast; the counters are identical by
    // construction — the wall-clock columns are the ablation signal.
    // GmdjBasic, not GmdjOptimized: a completion plan pins the sequential
    // scan to the row loop, which would blank the axis being measured.
    for (label, policy) in [
        ("seq-vec", ExecPolicy::sequential().with_vectorized(true)),
        ("seq-row", ExecPolicy::sequential().with_vectorized(false)),
        (
            "scan-vec",
            ExecPolicy::sequential()
                .with_probe(ProbeStrategy::ForceScan)
                .with_vectorized(true),
        ),
        (
            "scan-row",
            ExecPolicy::sequential()
                .with_probe(ProbeStrategy::ForceScan)
                .with_vectorized(false),
        ),
        ("par2-vec", ExecPolicy::parallel(2).with_vectorized(true)),
        ("par2-row", ExecPolicy::parallel(2).with_vectorized(false)),
    ] {
        entries.push(measure(
            &fig2,
            Strategy::GmdjBasic,
            policy,
            cfg,
            "ablation/vectorized",
            label,
            true,
        )?);
    }
    // Base-tuple completion on the Figure 4 ALL query.
    let (outer4, inner4) = sizes(FigureId::Fig4, cfg.scale)[0];
    let fig4 = workload(FigureId::Fig4, outer4, inner4, cfg.seed);
    for (label, strategy) in [
        ("without-completion", Strategy::GmdjBasic),
        ("with-completion", Strategy::GmdjOptimized),
    ] {
        entries.push(measure(
            &fig4,
            strategy,
            vec_policy(ExecPolicy::sequential()),
            cfg,
            "ablation/completion",
            label,
            true,
        )?);
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Validation (schemas/bench.schema.json) and baseline comparison.
// ---------------------------------------------------------------------

fn require_num(obj: &Json, key: &str, at: &str) -> std::result::Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{at}: missing numeric `{key}`"))
}

fn require_str<'j>(obj: &'j Json, key: &str, at: &str) -> std::result::Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{at}: missing string `{key}`"))
}

fn validate_counter_node(node: &Json, at: &str) -> std::result::Result<(), String> {
    require_str(node, "label", at)?;
    let counters = node
        .get("counters")
        .ok_or_else(|| format!("{at}: missing `counters`"))?;
    for key in NODE_COUNTER_KEYS {
        require_num(counters, key, &format!("{at}.counters"))?;
    }
    let children = node
        .get("children")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{at}: missing `children` array"))?;
    for (i, c) in children.iter().enumerate() {
        validate_counter_node(c, &format!("{at}.children[{i}]"))?;
    }
    Ok(())
}

/// Validate a parsed bench document against the checked-in schema
/// (`schemas/bench.schema.json`). Returns the first violation.
pub fn validate_bench(doc: &Json) -> std::result::Result<(), String> {
    let version = require_num(doc, "version", "bench")?;
    if version != BENCH_VERSION as f64 {
        return Err(format!("unsupported bench version {version}"));
    }
    require_str(doc, "run", "bench")?;
    let mode = require_str(doc, "mode", "bench")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("bench: `mode` must be quick|full, got `{mode}`"));
    }
    for key in ["scale", "seed", "warmup", "reps"] {
        require_num(doc, key, "bench")?;
    }
    // Informational and absent from pre-kernel recordings; when present
    // they must be booleans. Never part of an entry's identity.
    match doc.get("vectorized") {
        None | Some(Json::Bool(_)) => {}
        _ => return Err("bench: `vectorized` must be a boolean".into()),
    }
    match doc.get("real_sites") {
        None | Some(Json::Bool(_)) => {}
        _ => return Err("bench: `real_sites` must be a boolean".into()),
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("bench: missing `entries` array")?;
    if entries.is_empty() {
        return Err("bench: `entries` is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let at = format!("entries[{i}]");
        for key in ["group", "label", "strategy", "policy"] {
            require_str(e, key, &at)?;
        }
        match e.get("gated") {
            Some(Json::Bool(_)) => {}
            _ => return Err(format!("{at}: missing boolean `gated`")),
        }
        let wall = e
            .get("wall")
            .ok_or_else(|| format!("{at}: missing `wall`"))?;
        for key in ["max_us", "min_us", "reps", "trimmed_mean_us"] {
            require_num(wall, key, &format!("{at}.wall"))?;
        }
        let counters = e
            .get("counters")
            .ok_or_else(|| format!("{at}: missing `counters`"))?;
        for key in COUNTER_KEYS {
            require_num(counters, key, &format!("{at}.counters"))?;
        }
        match e.get("predicted_cost") {
            Some(Json::Null) | Some(Json::Num(_)) => {}
            _ => return Err(format!("{at}: `predicted_cost` must be a number or null")),
        }
        match e.get("plan") {
            Some(Json::Null) => {}
            Some(plan @ Json::Obj(_)) => validate_counter_node(plan, &format!("{at}.plan"))?,
            _ => return Err(format!("{at}: `plan` must be an object or null")),
        }
    }
    match doc.get("latency") {
        Some(Json::Null) | None => {}
        Some(l @ Json::Obj(_)) => {
            for key in ["count", "p50", "p95", "p99"] {
                require_num(l, key, "bench.latency")?;
            }
        }
        _ => return Err("bench: `latency` must be an object or null".into()),
    }
    match doc.get("concurrent") {
        None => {}
        Some(c @ Json::Obj(_)) => validate_concurrent(c)?,
        _ => return Err("bench: `concurrent` must be an object".into()),
    }
    Ok(())
}

/// Validate the optional `concurrent` section, including the closed-form
/// sharing invariant: with more than one query per wave, detail passes
/// must be strictly fewer than queries served — chunk reads are paid
/// once per pass, not once per query.
fn validate_concurrent(c: &Json) -> std::result::Result<(), String> {
    let at = "bench.concurrent";
    for key in ["group", "label", "strategy", "policy"] {
        require_str(c, key, at)?;
    }
    for key in [
        "queries",
        "reps",
        "shared_scan_passes",
        "shared_scan_queries_served",
        "serial_qps",
        "shared_qps",
        "speedup",
    ] {
        require_num(c, key, at)?;
    }
    let counters = c
        .get("counters")
        .ok_or_else(|| format!("{at}: missing `counters`"))?;
    for key in COUNTER_KEYS {
        require_num(counters, key, &format!("{at}.counters"))?;
    }
    for wall_key in ["serial_wall", "shared_wall"] {
        let wall = c
            .get(wall_key)
            .ok_or_else(|| format!("{at}: missing `{wall_key}`"))?;
        for key in ["max_us", "min_us", "reps", "trimmed_mean_us"] {
            require_num(wall, key, &format!("{at}.{wall_key}"))?;
        }
    }
    for lat_key in ["serial_latency", "shared_latency"] {
        let lat = c
            .get(lat_key)
            .ok_or_else(|| format!("{at}: missing `{lat_key}`"))?;
        for key in ["p50", "p95", "p99"] {
            require_num(lat, key, &format!("{at}.{lat_key}"))?;
        }
    }
    let queries = require_num(c, "queries", at)? as u64;
    let passes = require_num(c, "shared_scan_passes", at)? as u64;
    let served = require_num(c, "shared_scan_queries_served", at)? as u64;
    if served != passes * queries {
        return Err(format!(
            "{at}: queries served ({served}) must equal passes ({passes}) × queries ({queries})"
        ));
    }
    if queries > 1 && passes >= served {
        return Err(format!(
            "{at}: shared_scan_passes ({passes}) must be strictly below \
             queries served ({served}) — detail chunks are paid once per pass"
        ));
    }
    Ok(())
}

fn entry_key(e: &Json) -> std::result::Result<String, String> {
    Ok(format!(
        "{} {} {} {}",
        require_str(e, "group", "entry")?,
        require_str(e, "label", "entry")?,
        require_str(e, "strategy", "entry")?,
        require_str(e, "policy", "entry")?,
    ))
}

/// Canonical rendering of the gated counter data of a bench document: one
/// block per gated entry (key line, sorted counters, plan counter tree).
/// Two runs at the same configuration must render byte-identically — this
/// is the string the determinism test and the baseline gate compare.
pub fn counter_section(doc: &Json) -> std::result::Result<String, String> {
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing `entries` array")?;
    let mut out = String::new();
    for e in entries {
        if e.get("gated") != Some(&Json::Bool(true)) {
            continue;
        }
        out.push_str(&entry_key(e)?);
        out.push('\n');
        let counters = e.get("counters").ok_or("entry missing `counters`")?;
        if let Json::Obj(members) = counters {
            let mut sorted: Vec<&(String, Json)> = members.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (k, v) in sorted {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("counter `{k}` not numeric"))?;
                out.push_str(&format!("  {k}={}\n", n as u64));
            }
        } else {
            return Err("`counters` is not an object".into());
        }
        if let Some(plan @ Json::Obj(_)) = e.get("plan") {
            counter_section_plan(plan, 1, &mut out)?;
        }
    }
    Ok(out)
}

fn counter_section_plan(
    node: &Json,
    depth: usize,
    out: &mut String,
) -> std::result::Result<(), String> {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str("plan ");
    out.push_str(require_str(node, "label", "plan node")?);
    if let Some(Json::Obj(members)) = node.get("counters") {
        let mut sorted: Vec<&(String, Json)> = members.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, v) in sorted {
            let n = v
                .as_num()
                .ok_or_else(|| format!("counter `{k}` not numeric"))?;
            out.push_str(&format!(" {k}={}", n as u64));
        }
    }
    out.push('\n');
    if let Some(children) = node.get("children").and_then(Json::as_arr) {
        for c in children {
            counter_section_plan(c, depth + 1, out)?;
        }
    }
    Ok(())
}

/// Outcome of a baseline comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Hard failures: configuration mismatches, gated entries missing
    /// from the current run, and counter drifts (with plan-node diffs).
    pub drifts: Vec<String>,
    /// Wall-clock regressions beyond the tolerance — advisory only.
    pub wall_warnings: Vec<String>,
    /// Entries present in the current run but absent from the baseline
    /// (e.g. a grown grid) — informational; re-bless to record them.
    pub new_entries: Vec<String>,
}

impl Comparison {
    /// Whether the hard (counter) gate failed.
    pub fn gate_failed(&self) -> bool {
        !self.drifts.is_empty()
    }

    /// Human-readable summary of the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.drifts {
            out.push_str(&format!("DRIFT  {d}\n"));
        }
        for w in &self.wall_warnings {
            out.push_str(&format!("WARN   {w}\n"));
        }
        for n in &self.new_entries {
            out.push_str(&format!(
                "NEW    {n} (not in baseline; re-bless to record)\n"
            ));
        }
        if out.is_empty() {
            out.push_str("baseline check: no counter drift, no wall-clock warnings\n");
        }
        out
    }
}

/// Diff two recorded plan counter trees, appending one line per
/// mismatched node with the drifted counters and the cost model's figure
/// for the node before (baseline = predicted) and after (current =
/// observed) — the "which plan node regressed" report.
fn diff_plan_nodes(
    baseline: &Json,
    current: &Json,
    path: &str,
    out: &mut Vec<String>,
) -> std::result::Result<(), String> {
    let b_label = require_str(baseline, "label", "plan node")?;
    let c_label = require_str(current, "label", "plan node")?;
    let path = if path.is_empty() {
        b_label.to_string()
    } else {
        format!("{path} > {b_label}")
    };
    if b_label != c_label {
        out.push(format!(
            "    plan node {path}: operator changed {b_label} -> {c_label}"
        ));
        return Ok(());
    }
    let mut changed: Vec<String> = Vec::new();
    for key in NODE_COUNTER_KEYS {
        let b = baseline
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_num);
        let c = current
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_num);
        if b != c {
            changed.push(format!(
                "{key} {} -> {}",
                b.map(|v| (v as u64).to_string())
                    .unwrap_or_else(|| "?".into()),
                c.map(|v| (v as u64).to_string())
                    .unwrap_or_else(|| "?".into()),
            ));
        }
    }
    if !changed.is_empty() {
        let predicted = plan_from_counter_tree(baseline)
            .map(|t| cost::observed_cost(&t).total())
            .unwrap_or(f64::NAN);
        let observed = plan_from_counter_tree(current)
            .map(|t| cost::observed_cost(&t).total())
            .unwrap_or(f64::NAN);
        out.push(format!(
            "    plan node {path}: {} [cost predicted={predicted:.1} observed={observed:.1}]",
            changed.join(", "),
        ));
    }
    let b_children = baseline
        .get("children")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    let c_children = current
        .get("children")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if b_children.len() != c_children.len() {
        out.push(format!(
            "    plan node {path}: child count changed {} -> {}",
            b_children.len(),
            c_children.len()
        ));
    }
    for (b, c) in b_children.iter().zip(c_children.iter()) {
        diff_plan_nodes(b, c, &path, out)?;
    }
    Ok(())
}

/// The two-tier baseline gate. `current` and `baseline` are parsed bench
/// documents (validate them first). Counter drift on any gated entry —
/// including a gated entry disappearing, or the recording configuration
/// changing — is a hard failure ([`Comparison::gate_failed`]); wall-clock
/// regressions beyond `wall_tolerance` (fractional, e.g. 0.25 = +25%)
/// only warn.
pub fn compare_reports(
    current: &Json,
    baseline: &Json,
    wall_tolerance: f64,
) -> std::result::Result<Comparison, String> {
    let mut cmp = Comparison::default();
    for key in ["version", "scale", "seed"] {
        let b = require_num(baseline, key, "baseline")?;
        let c = require_num(current, key, "current")?;
        if b != c {
            cmp.drifts.push(format!(
                "configuration mismatch: `{key}` baseline={b} current={c} \
                 (compare runs recorded with the same config, or re-bless)"
            ));
        }
    }
    let b_mode = require_str(baseline, "mode", "baseline")?;
    let c_mode = require_str(current, "mode", "current")?;
    if b_mode != c_mode {
        cmp.drifts.push(format!(
            "configuration mismatch: `mode` baseline={b_mode} current={c_mode}"
        ));
    }
    if !cmp.drifts.is_empty() {
        return Ok(cmp);
    }

    let b_entries = baseline
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing `entries`")?;
    let c_entries = current
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("current: missing `entries`")?;
    let mut current_by_key: Vec<(String, &Json)> = Vec::with_capacity(c_entries.len());
    for e in c_entries {
        current_by_key.push((entry_key(e)?, e));
    }
    let find = |key: &str| {
        current_by_key
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, e)| *e)
    };

    let mut baseline_keys: Vec<String> = Vec::with_capacity(b_entries.len());
    for b in b_entries {
        let key = entry_key(b)?;
        baseline_keys.push(key.clone());
        let gated = b.get("gated") == Some(&Json::Bool(true));
        let Some(c) = find(&key) else {
            if gated {
                cmp.drifts
                    .push(format!("{key}: gated entry missing from current run"));
            }
            continue;
        };
        if gated {
            let mut changed: Vec<String> = Vec::new();
            for counter in COUNTER_KEYS {
                let bv = b
                    .get("counters")
                    .and_then(|o| o.get(counter))
                    .and_then(Json::as_num);
                let cv = c
                    .get("counters")
                    .and_then(|o| o.get(counter))
                    .and_then(Json::as_num);
                if bv != cv {
                    changed.push(format!(
                        "{counter} {} -> {}",
                        bv.map(|v| (v as u64).to_string())
                            .unwrap_or_else(|| "?".into()),
                        cv.map(|v| (v as u64).to_string())
                            .unwrap_or_else(|| "?".into()),
                    ));
                }
            }
            // Diff the recorded plan trees regardless of the entry-level
            // rollups: counters redistributed among nodes (same totals,
            // different plan) are still a plan-quality change.
            let mut plan_lines: Vec<String> = Vec::new();
            match (b.get("plan"), c.get("plan")) {
                (Some(bp @ Json::Obj(_)), Some(cp @ Json::Obj(_))) => {
                    diff_plan_nodes(bp, cp, "", &mut plan_lines)?;
                }
                (Some(Json::Obj(_)), _) => {
                    plan_lines.push("    plan tree disappeared from current run".into());
                }
                _ => {}
            }
            if !changed.is_empty() || !plan_lines.is_empty() {
                let what = if changed.is_empty() {
                    "plan-node counter drift".to_string()
                } else {
                    format!("counter drift: {}", changed.join(", "))
                };
                let mut lines = vec![format!("{key}: {what}")];
                lines.extend(plan_lines);
                cmp.drifts.push(lines.join("\n"));
            }
        }
        // Wall-clock: advisory warn-gate on the trimmed mean.
        let b_wall = b
            .get("wall")
            .and_then(|w| w.get("trimmed_mean_us"))
            .and_then(Json::as_num);
        let c_wall = c
            .get("wall")
            .and_then(|w| w.get("trimmed_mean_us"))
            .and_then(Json::as_num);
        if let (Some(bw), Some(cw)) = (b_wall, c_wall) {
            if bw > 0.0 && cw > bw * (1.0 + wall_tolerance) {
                cmp.wall_warnings.push(format!(
                    "{key}: wall-clock {:.0}us -> {:.0}us (+{:.0}%, tolerance {:.0}%)",
                    bw,
                    cw,
                    100.0 * (cw - bw) / bw,
                    100.0 * wall_tolerance,
                ));
            }
        }
    }
    for (key, _) in &current_by_key {
        if !baseline_keys.contains(key) {
            cmp.new_entries.push(key.clone());
        }
    }

    // The concurrent section gates only when the current run recorded
    // one (`--concurrent`): runs without the flag still compare cleanly
    // against a baseline that has the section.
    match (current.get("concurrent"), baseline.get("concurrent")) {
        (Some(c @ Json::Obj(_)), Some(b @ Json::Obj(_))) => {
            let key = "concurrent section";
            for field in ["group", "label", "strategy", "policy"] {
                let bv = require_str(b, field, "baseline.concurrent")?;
                let cv = require_str(c, field, "current.concurrent")?;
                if bv != cv {
                    cmp.drifts
                        .push(format!("{key}: `{field}` baseline={bv} current={cv}"));
                }
            }
            for field in [
                "queries",
                "reps",
                "shared_scan_passes",
                "shared_scan_queries_served",
            ] {
                let bv = require_num(b, field, "baseline.concurrent")? as u64;
                let cv = require_num(c, field, "current.concurrent")? as u64;
                if bv != cv {
                    cmp.drifts
                        .push(format!("{key}: `{field}` drifted {bv} -> {cv}"));
                }
            }
            let mut changed: Vec<String> = Vec::new();
            for counter in COUNTER_KEYS {
                let bv = b
                    .get("counters")
                    .and_then(|o| o.get(counter))
                    .and_then(Json::as_num);
                let cv = c
                    .get("counters")
                    .and_then(|o| o.get(counter))
                    .and_then(Json::as_num);
                if bv != cv {
                    changed.push(format!(
                        "{counter} {} -> {}",
                        bv.map(|v| (v as u64).to_string())
                            .unwrap_or_else(|| "?".into()),
                        cv.map(|v| (v as u64).to_string())
                            .unwrap_or_else(|| "?".into()),
                    ));
                }
            }
            if !changed.is_empty() {
                cmp.drifts
                    .push(format!("{key}: counter drift: {}", changed.join(", ")));
            }
        }
        (Some(Json::Obj(_)), None) => {
            cmp.new_entries.push("concurrent section".into());
        }
        (None, _) => {}
        _ => return Err("`concurrent` must be an object when present".into()),
    }
    Ok(cmp)
}

/// Splice a freshly measured `concurrent` section into an existing
/// baseline document, leaving every other byte of the baseline —
/// including its wall-clock numbers — untouched. This is how
/// `repro bench --concurrent --bless` records the concurrent group
/// without re-blessing (and thus re-noising) the existing entries.
/// Returns `None` if the baseline does not end in a JSON object.
pub fn splice_concurrent(baseline_text: &str, section_json: &str) -> Option<String> {
    let trimmed = baseline_text.trim_end();
    let body = trimmed.strip_suffix('}')?;
    // Replace an already-present section (it is always the last member,
    // emitted after `latency`).
    let body = match body.rfind(",\"concurrent\":") {
        Some(i) => &body[..i],
        None => body,
    };
    Some(format!("{body},\"concurrent\":{section_json}}}"))
}

/// Per-entry wall-clock comparison of two bench documents (`repro bench
/// --compare A.json B.json`). Pairs entries by identity key and reports
/// the trimmed-mean delta of B relative to A, plus a geometric-mean
/// speedup over the paired entries — the report backing a measured
/// "vectorized vs row path" claim. Counter drift between the documents is
/// listed first: a wall-clock comparison across different plans is
/// answering a different question, and should say so.
pub fn compare_wall_clock(a: &Json, b: &Json) -> std::result::Result<String, String> {
    let entries_of = |doc: &'_ Json, which: &str| -> std::result::Result<Vec<Json>, String> {
        Ok(doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{which}: missing `entries` array"))?
            .to_vec())
    };
    let a_entries = entries_of(a, "A")?;
    let b_entries = entries_of(b, "B")?;
    let wall_of = |e: &Json| -> Option<f64> {
        e.get("wall")
            .and_then(|w| w.get("trimmed_mean_us"))
            .and_then(Json::as_num)
    };
    let mut out = String::new();
    let a_vec = a.get("vectorized").cloned();
    let b_vec = b.get("vectorized").cloned();
    if let (Some(Json::Bool(av)), Some(Json::Bool(bv))) = (&a_vec, &b_vec) {
        out.push_str(&format!("A vectorized={av}  B vectorized={bv}\n"));
    }
    let mut drift = 0usize;
    let mut ratios: Vec<f64> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for ae in &a_entries {
        let key = entry_key(ae)?;
        let Some(be) = b_entries
            .iter()
            .find(|e| entry_key(e).as_deref() == Ok(key.as_str()))
        else {
            lines.push(format!("{key}: only in A"));
            continue;
        };
        for counter in COUNTER_KEYS {
            let av = ae
                .get("counters")
                .and_then(|c| c.get(counter))
                .and_then(Json::as_num);
            let bv = be
                .get("counters")
                .and_then(|c| c.get(counter))
                .and_then(Json::as_num);
            if av != bv {
                drift += 1;
                break;
            }
        }
        let (Some(aw), Some(bw)) = (wall_of(ae), wall_of(be)) else {
            continue;
        };
        if aw > 0.0 && bw > 0.0 {
            ratios.push(aw / bw);
        }
        let delta = if aw > 0.0 {
            format!("{:+.1}%", 100.0 * (bw - aw) / aw)
        } else {
            "n/a".into()
        };
        lines.push(format!("{key}: A={aw:.0}us B={bw:.0}us ({delta})"));
    }
    if drift > 0 {
        out.push_str(&format!(
            "note: {drift} paired entr{} differ in gated counters — \
             the runs executed different plans\n",
            if drift == 1 { "y" } else { "ies" }
        ));
    }
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    if !ratios.is_empty() {
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        out.push_str(&format!(
            "geomean speedup A/B over {} paired entries: {geomean:.2}x \
             (>1 means B is faster)\n",
            ratios.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::parse_json;

    fn micro_config() -> BenchConfig {
        BenchConfig {
            figures: vec![FigureId::Fig2],
            scale: 0.002,
            seed: 7,
            warmup: 0,
            reps: 1,
            ablations: false,
            cross_policy: false,
            quick: true,
            vectorized: true,
            morsel_size: None,
            real_sites: false,
            concurrent: None,
        }
    }

    #[test]
    fn wall_stats_trim_min_and_max() {
        let w = wall_stats(vec![100, 5, 9000]);
        assert_eq!(w.reps, 3);
        assert_eq!(w.min_us, 5);
        assert_eq!(w.max_us, 9000);
        assert_eq!(w.trimmed_mean_us, 100);
        let two = wall_stats(vec![10, 20]);
        assert_eq!(two.trimmed_mean_us, 15);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(policy_label(&ExecPolicy::sequential()), "seq");
        assert_eq!(policy_label(&ExecPolicy::parallel(4)), "par4");
        assert_eq!(policy_label(&ExecPolicy::distributed(2)), "dist2");
        assert_eq!(
            policy_label(&ExecPolicy::sequential().with_partition_rows(Some(8))),
            "seq+part8"
        );
        assert_eq!(
            policy_label(&ExecPolicy::parallel(2).with_morsel_size(Some(64))),
            "par2+m64"
        );
        assert_eq!(
            policy_label(
                &ExecPolicy::parallel(4)
                    .with_partition_rows(Some(8))
                    .with_morsel_size(Some(1024))
            ),
            "par4+part8+m1024"
        );
    }

    #[test]
    fn counter_keys_are_sorted_and_complete() {
        let mut sorted = COUNTER_KEYS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, COUNTER_KEYS.to_vec());
        let mut node_sorted = NODE_COUNTER_KEYS.to_vec();
        node_sorted.sort_unstable();
        assert_eq!(node_sorted, NODE_COUNTER_KEYS.to_vec());
        // The items() accessors emit exactly the schema keys, in order.
        let c = Counters::default();
        let keys: Vec<&str> = c.items().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, COUNTER_KEYS.to_vec());
    }

    #[test]
    fn micro_bench_renders_and_validates() {
        let report = run_bench(&micro_config()).unwrap();
        assert!(!report.entries.is_empty());
        let doc = parse_json(&report.to_json()).unwrap();
        validate_bench(&doc).unwrap();
        let section = counter_section(&doc).unwrap();
        assert!(section.contains("fig2"), "{section}");
        assert!(section.contains("theta_evals="), "{section}");
    }

    #[test]
    fn counter_tree_round_trips_through_cost() {
        let report = run_bench(&micro_config()).unwrap();
        let entry = report
            .entries
            .iter()
            .find(|e| e.plan.is_some())
            .expect("a GMDJ entry");
        let tree = entry.plan.as_ref().unwrap();
        let parsed = parse_json(&counter_tree_json(tree)).unwrap();
        let back = plan_from_counter_tree(&parsed).unwrap();
        let direct = cost::observed_cost(tree).total();
        let via_json = cost::observed_cost(&back).total();
        assert!((direct - via_json).abs() < 1e-9, "{direct} vs {via_json}");
        assert_eq!(entry.predicted_cost.unwrap(), direct);
    }
}
