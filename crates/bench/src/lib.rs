//! Shared harness for regenerating the paper's figures.
//!
//! Each figure is a sweep of (outer, inner) sizes × a lineup of
//! strategies. [`run_figure`] executes one sweep and returns the
//! measurement grid; [`render_table`] prints it in the shape of the
//! paper's plots (one row per size, one column per strategy).
//!
//! Absolute times cannot match 2003 hardware; the *shape* assertions of
//! the paper (who wins, by roughly what factor, where evaluation
//! degrades) are encoded in [`shape`] and verified by the integration
//! tests and the `repro` binary.

use std::time::Duration;

use gmdj_algebra::ast::QueryExpr;
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats};
use gmdj_datagen::workloads::{
    fig2_exists, fig3_aggregate_comparison, fig4_quantified_all, fig5_tree_exists, Workload,
};
use gmdj_engine::strategy::{run_with_policy, Strategy};
use gmdj_relation::error::Result;

pub mod profile;
pub mod shape;
pub mod telemetry;

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub strategy: Strategy,
    pub wall: Duration,
    /// Translation + optimization time (zero for plan-free engines).
    pub plan_wall: Duration,
    pub work: u64,
    pub rows: usize,
    /// Timed plan tree, when the strategy executes a GMDJ plan.
    pub plan: Option<PlanNodeStats>,
}

/// One row of a figure: a size point with all strategy measurements.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// Label, e.g. `"1000/300k"` matching the paper's x-axis.
    pub label: String,
    pub outer: usize,
    pub inner: usize,
    pub measurements: Vec<Measurement>,
}

/// A regenerated figure.
#[derive(Debug, Clone)]
pub struct Figure {
    pub name: &'static str,
    pub description: &'static str,
    pub points: Vec<SizePoint>,
}

/// Which figure to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureId {
    Fig2,
    Fig3,
    Fig4,
    Fig5,
}

impl FigureId {
    /// Parse "2".."5".
    pub fn parse(s: &str) -> Option<FigureId> {
        match s {
            "2" => Some(FigureId::Fig2),
            "3" => Some(FigureId::Fig3),
            "4" => Some(FigureId::Fig4),
            "5" => Some(FigureId::Fig5),
            _ => None,
        }
    }

    /// All figures.
    pub fn all() -> [FigureId; 4] {
        [
            FigureId::Fig2,
            FigureId::Fig3,
            FigureId::Fig4,
            FigureId::Fig5,
        ]
    }
}

/// Scaled size sweeps. `scale` multiplies the paper's row counts (1.0 =
/// the paper's sizes). Each entry is `(outer, inner)`.
pub fn sizes(fig: FigureId, scale: f64) -> Vec<(usize, usize)> {
    let s = |n: usize| (((n as f64) * scale).round() as usize).max(8);
    match fig {
        FigureId::Fig2 | FigureId::Fig5 => gmdj_datagen::workloads::sweeps::FIG2
            .iter()
            .map(|&(o, i)| (s(o), s(i)))
            .collect(),
        FigureId::Fig3 => gmdj_datagen::workloads::sweeps::FIG3
            .iter()
            .map(|&(o, i)| (s(o), s(i)))
            .collect(),
        FigureId::Fig4 => gmdj_datagen::workloads::sweeps::FIG4
            .iter()
            .map(|&n| (s(n), s(n)))
            .collect(),
    }
}

/// Strategy lineup per figure, mirroring the series the paper plots.
pub fn lineup(fig: FigureId) -> Vec<Strategy> {
    match fig {
        // Fig 2: Native Algorithm, Unnesting Algorithm, GMDJ Algorithm.
        FigureId::Fig2 => vec![
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
        ],
        // Fig 3: Native Algorithm (a simple nested loop in the paper's
        // DBMS), Optimized GMDJ, Unnesting Algorithm.
        FigureId::Fig3 => {
            vec![
                Strategy::NaiveNestedLoop,
                Strategy::GmdjOptimized,
                Strategy::JoinUnnest,
            ]
        }
        // Fig 4: native smart nested loop, join/set-difference unnesting,
        // basic GMDJ, GMDJ with tuple completion.
        FigureId::Fig4 => vec![
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ],
        // Fig 5: native with/without indexes, unnesting with/without
        // indexes, basic GMDJ, optimized (coalesced) GMDJ.
        FigureId::Fig5 => vec![
            Strategy::NativeSmart,
            Strategy::NativeSmartNoIndex,
            Strategy::JoinUnnest,
            Strategy::JoinUnnestNoIndex,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ],
    }
}

/// Build the workload for one size point of a figure.
pub fn workload(fig: FigureId, outer: usize, inner: usize, seed: u64) -> Workload {
    match fig {
        FigureId::Fig2 => fig2_exists(outer, inner, seed),
        FigureId::Fig3 => fig3_aggregate_comparison(outer, inner, seed),
        FigureId::Fig4 => fig4_quantified_all(outer, seed),
        FigureId::Fig5 => fig5_tree_exists(outer, inner, seed),
    }
}

pub(crate) fn size_label(fig: FigureId, outer: usize, inner: usize) -> String {
    fn k(n: usize) -> String {
        if n >= 1_000_000 && n.is_multiple_of(100_000) {
            format!("{:.1}M", n as f64 / 1e6)
        } else if n >= 1000 && n.is_multiple_of(1000) {
            format!("{}k", n / 1000)
        } else {
            n.to_string()
        }
    }
    match fig {
        FigureId::Fig4 => k(outer),
        _ => format!("{}/{}", k(outer), k(inner)),
    }
}

/// Per-strategy caps on problem size (quadratic baselines become
/// impractical exactly as in the paper — its join unnesting needed > 7
/// hours for a 20k-row Figure 4 instance). `None` = no cap; otherwise the
/// strategy is skipped for `outer * inner` above the cap.
pub fn pair_cap(fig: FigureId, strategy: Strategy) -> Option<u64> {
    match (fig, strategy) {
        // Materializing join + set difference: memory-bound, skip large.
        (FigureId::Fig4, Strategy::JoinUnnest | Strategy::JoinUnnestNoIndex) => Some(8_000_000),
        // Quadratic scans: bounded for wall-clock sanity.
        (FigureId::Fig4, Strategy::GmdjBasic | Strategy::NaiveNestedLoop) => Some(3_000_000_000),
        (_, Strategy::NaiveNestedLoop) => Some(3_000_000_000),
        (_, Strategy::NativeSmartNoIndex) => Some(6_000_000_000),
        (_, Strategy::JoinUnnestNoIndex) => Some(6_000_000_000),
        _ => None,
    }
}

/// Run one full figure sweep, sequentially.
pub fn run_figure(fig: FigureId, scale: f64, seed: u64) -> Result<Figure> {
    run_figure_with(fig, scale, seed, ExecPolicy::sequential())
}

/// Run one full figure sweep under an execution policy (the GMDJ
/// strategies evaluate through the policy's runtime; the reference and
/// unnest competitors are unaffected).
pub fn run_figure_with(fig: FigureId, scale: f64, seed: u64, policy: ExecPolicy) -> Result<Figure> {
    let strategies = lineup(fig);
    let mut points = Vec::new();
    for (outer, inner) in sizes(fig, scale) {
        let w = workload(fig, outer, inner, seed);
        let mut measurements = Vec::new();
        let mut expected: Option<usize> = None;
        for &strategy in &strategies {
            if let Some(cap) = pair_cap(fig, strategy) {
                if (outer as u64) * (inner as u64) > cap {
                    continue;
                }
            }
            let result = run_with_policy(&w.query, &w.catalog, strategy, policy)?;
            if let Some(e) = expected {
                assert_eq!(
                    e,
                    result.relation.len(),
                    "strategy {strategy:?} disagrees at {outer}/{inner}"
                );
            } else {
                expected = Some(result.relation.len());
            }
            measurements.push(Measurement {
                strategy,
                wall: result.wall,
                plan_wall: result.plan_wall,
                work: result.stats.work(),
                rows: result.relation.len(),
                plan: result.plan_stats,
            });
        }
        points.push(SizePoint {
            label: size_label(fig, outer, inner),
            outer,
            inner,
            measurements,
        });
    }
    let (name, description) = match fig {
        FigureId::Fig2 => ("Figure 2", "EXISTS subquery — query evaluation time"),
        FigureId::Fig3 => (
            "Figure 3",
            "comparison predicate over aggregate — query evaluation time",
        ),
        FigureId::Fig4 => ("Figure 4", "quantified comparison predicate ALL"),
        FigureId::Fig5 => ("Figure 5", "tree-nested EXISTS predicates"),
    };
    Ok(Figure {
        name,
        description,
        points,
    })
}

/// Render a figure as an aligned text table (milliseconds + work units).
pub fn render_table(fig: &Figure) -> String {
    use std::fmt::Write;
    let mut strategies: Vec<Strategy> = Vec::new();
    for p in &fig.points {
        for m in &p.measurements {
            if !strategies.contains(&m.strategy) {
                strategies.push(m.strategy);
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", fig.name, fig.description);
    let _ = write!(out, "{:<14}", "size");
    for s in &strategies {
        let _ = write!(out, "{:>22}", s.label());
    }
    let _ = writeln!(out);
    for p in &fig.points {
        let _ = write!(out, "{:<14}", p.label);
        for s in &strategies {
            match p.measurements.iter().find(|m| m.strategy == *s) {
                Some(m) => {
                    let _ = write!(
                        out,
                        "{:>14.1}ms {:>5}",
                        m.wall.as_secs_f64() * 1e3,
                        human_work(m.work)
                    );
                }
                None => {
                    let _ = write!(out, "{:>22}", "(skipped)");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Compact work-unit rendering (e.g. `1.2G`).
pub fn human_work(w: u64) -> String {
    match w {
        0..=9_999 => format!("{w}"),
        10_000..=9_999_999 => format!("{:.0}k", w as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}M", w as f64 / 1e6),
        _ => format!("{:.1}G", w as f64 / 1e9),
    }
}

/// Find a measurement by strategy.
pub fn find(point: &SizePoint, strategy: Strategy) -> Option<&Measurement> {
    point.measurements.iter().find(|m| m.strategy == strategy)
}

/// Expose the figure workload query/catalog pair for the criterion
/// benches.
pub fn bench_instance(
    fig: FigureId,
    outer: usize,
    inner: usize,
    seed: u64,
) -> (MemoryCatalog, QueryExpr) {
    let w = workload(fig, outer, inner, seed);
    (w.catalog, w.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_engine::strategy::Strategy;

    #[test]
    fn sizes_scale_and_floor() {
        let full = sizes(FigureId::Fig2, 1.0);
        assert_eq!(
            full,
            vec![
                (1000, 300_000),
                (1000, 600_000),
                (1000, 900_000),
                (1000, 1_200_000)
            ]
        );
        let tiny = sizes(FigureId::Fig4, 0.00001);
        assert!(tiny.iter().all(|&(o, i)| o >= 8 && i >= 8));
        assert_eq!(sizes(FigureId::Fig3, 1.0)[0], (500, 300_000));
    }

    #[test]
    fn lineups_match_the_paper_series() {
        assert_eq!(lineup(FigureId::Fig2).len(), 3);
        assert!(lineup(FigureId::Fig3).contains(&Strategy::NaiveNestedLoop));
        assert!(lineup(FigureId::Fig4).contains(&Strategy::GmdjOptimized));
        assert_eq!(lineup(FigureId::Fig5).len(), 6);
    }

    #[test]
    fn pair_caps_protect_quadratic_baselines() {
        assert!(pair_cap(FigureId::Fig4, Strategy::JoinUnnest).is_some());
        assert!(pair_cap(FigureId::Fig2, Strategy::GmdjBasic).is_none());
        let cap = pair_cap(FigureId::Fig4, Strategy::JoinUnnest).unwrap();
        // The paper's 20k anecdote (7+ hours) is far beyond the cap.
        assert!(20_000u64 * 20_000 > cap);
    }

    #[test]
    fn human_work_buckets() {
        assert_eq!(human_work(12), "12");
        assert_eq!(human_work(42_000), "42k");
        assert_eq!(human_work(12_000_000), "12.0M");
        assert_eq!(human_work(3_200_000_000), "3.2G");
    }

    #[test]
    fn figure_id_parsing() {
        assert_eq!(FigureId::parse("2"), Some(FigureId::Fig2));
        assert_eq!(FigureId::parse("5"), Some(FigureId::Fig5));
        assert_eq!(FigureId::parse("6"), None);
        assert_eq!(FigureId::all().len(), 4);
    }

    #[test]
    fn parallel_figure_matches_sequential_rows() {
        let seq = run_figure(FigureId::Fig2, 0.002, 1).unwrap();
        let par = run_figure_with(FigureId::Fig2, 0.002, 1, ExecPolicy::parallel(2)).unwrap();
        for (a, b) in seq.points.iter().zip(&par.points) {
            for (ma, mb) in a.measurements.iter().zip(&b.measurements) {
                assert_eq!(ma.rows, mb.rows, "{} {:?}", a.label, ma.strategy);
            }
        }
    }

    #[test]
    fn run_figure_smoke_renders() {
        let f = run_figure(FigureId::Fig2, 0.002, 1).unwrap();
        let table = render_table(&f);
        assert!(table.contains("Figure 2"));
        assert!(table.contains("native"));
        assert!(table.contains("ms"));
        let checks = shape::check(FigureId::Fig2, &f);
        assert_eq!(checks.len(), 3);
    }
}
