//! An SQL shell over the GMDJ engine.
//!
//! ```text
//! gmdj-sql-shell [--csv name=path ...] [--tpcr SF] [--netflow N]
//!                [--strategy S] [--threads N] [--sites N]
//!                [--morsel-size N] [-e "SQL"]
//! ```
//!
//! Loads tables from CSV files (schema inferred) and/or generated
//! datasets, then evaluates SQL queries — interactively from stdin or
//! one-shot with `-e`. `SET threads = N;` / `SET sites = N;` switch the
//! execution policy mid-session (N = 1 thread returns to sequential);
//! `SET morsel_size = N;` sets the rows per morsel of the parallel
//! detail scan; `SET real_sites = on;` runs distributed sites over real
//! loopback sockets ([`gmdj_core::wire`]) instead of the in-process
//! simulation; answers never depend on the policy.
//! `SET stats_addr = HOST:PORT;` starts the HTTP stats endpoint
//! ([`gmdj_core::serve`]) for the session (`off` stops it). Meta
//! commands:
//!
//! ```text
//! \tables                 list tables and row counts
//! \strategy [name]        show / set the evaluation strategy
//! \explain SQL            show the (optimized) GMDJ plan
//! \analyze [json] SQL     run and show the timed, counter-annotated plan
//! \dot SQL                emit the optimized plan as Graphviz dot
//! \compare SQL            run under every strategy and compare
//! \metrics [json]         dump the process metrics registry — key-sorted
//!                         Prometheus text, or JSON with p50/p95/p99
//!                         plus a `queries` progress section
//! \queries [json]         active queries + cumulative progress totals
//! \cache [clear]          plan-cache occupancy and hit/miss totals
//! \flight                 dump the flight recorder's retained trace tail
//! \sites [json]           per-site round-trip totals (distributed runs)
//! \timing on|off          toggle the parse/plan/execute breakdown
//! \q                      quit
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use gmdj_core::exec::{MemoryCatalog, TableProvider};
use gmdj_core::metrics;
use gmdj_core::progress;
use gmdj_core::runtime::{ExecMode, ExecPolicy};
use gmdj_core::serve::StatsServer;
use gmdj_core::trace::{self, CollectingSink, Span};
use gmdj_datagen::netflow::{NetflowConfig, NetflowData};
use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_engine::analyze::explain_analyze;
use gmdj_engine::strategy::{explain_gmdj, run_with_policy, run_with_policy_traced, Strategy};
use gmdj_sql::parse_query;

const STRATEGIES: [Strategy; 10] = [
    Strategy::NaiveNestedLoop,
    Strategy::NativeSmart,
    Strategy::NativeSmartNoIndex,
    Strategy::JoinUnnest,
    Strategy::JoinUnnestNoIndex,
    Strategy::GmdjBasic,
    Strategy::GmdjOptimized,
    Strategy::GmdjOptimizedNoProbeIndex,
    Strategy::GmdjBasicNoProbeIndex,
    Strategy::GmdjCostBased,
];

fn strategy_by_label(label: &str) -> Option<Strategy> {
    STRATEGIES.into_iter().find(|s| s.label() == label)
}

struct Shell {
    catalog: MemoryCatalog,
    strategy: Strategy,
    policy: ExecPolicy,
    timing: bool,
    /// The HTTP stats endpoint, when `SET stats_addr` started one.
    /// Dropping it (shell exit or `SET stats_addr = off`) stops it.
    stats: Option<StatsServer>,
}

/// The shell's session variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetVar {
    Threads,
    Sites,
    MorselSize,
}

/// Recognize `SET threads = N` / `SET sites = N` / `SET morsel_size = N`
/// (case-insensitive; `=` optional). Returns the variable and the
/// requested count.
fn parse_set(sql: &str) -> Option<Result<(SetVar, usize), String>> {
    let mut words = sql.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("set") {
        return None;
    }
    let var = words.next()?;
    let var = if var.eq_ignore_ascii_case("threads") {
        SetVar::Threads
    } else if var.eq_ignore_ascii_case("sites") {
        SetVar::Sites
    } else if var.eq_ignore_ascii_case("morsel_size") {
        SetVar::MorselSize
    } else {
        return None;
    };
    let name = match var {
        SetVar::Threads => "threads",
        SetVar::Sites => "sites",
        SetVar::MorselSize => "morsel_size",
    };
    let rest: Vec<&str> = words.collect();
    let value = match rest.as_slice() {
        ["=", v] => v,
        [v] => v.strip_prefix('=').unwrap_or(v),
        _ => return Some(Err(format!("usage: SET {name} = N"))),
    };
    Some(match value.parse::<usize>() {
        Ok(0) => Err(format!("{name} must be at least 1")),
        Ok(n) => Ok((var, n)),
        Err(_) => Err(format!("bad {name} count `{value}`")),
    })
}

/// Recognize `SET stats_addr = HOST:PORT` / `SET stats_addr = off`.
/// Handled apart from [`parse_set`]'s numeric session variables because
/// its value is an address, and setting it has a side effect (starting
/// or stopping the HTTP stats endpoint).
fn parse_set_stats_addr(sql: &str) -> Option<Result<String, String>> {
    let mut words = sql.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("set") {
        return None;
    }
    if !words.next()?.eq_ignore_ascii_case("stats_addr") {
        return None;
    }
    let rest: Vec<&str> = words.collect();
    match rest.as_slice() {
        ["=", v] => Some(Ok(v.to_string())),
        [v] => Some(Ok(v.strip_prefix('=').unwrap_or(v).to_string())),
        _ => Some(Err("usage: SET stats_addr = HOST:PORT (or off)".to_string())),
    }
}

/// Recognize `SET real_sites = on|off`: choose the socket transport for
/// distributed (`SET sites = N`) execution. Boolean-valued, so handled
/// apart from [`parse_set`].
fn parse_set_real_sites(sql: &str) -> Option<Result<bool, String>> {
    let mut words = sql.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("set") {
        return None;
    }
    if !words.next()?.eq_ignore_ascii_case("real_sites") {
        return None;
    }
    let rest: Vec<&str> = words.collect();
    let value = match rest.as_slice() {
        ["=", v] => v,
        [v] => v.strip_prefix('=').unwrap_or(v),
        _ => return Some(Err("usage: SET real_sites = on|off".to_string())),
    };
    if value.eq_ignore_ascii_case("on") || value.eq_ignore_ascii_case("true") {
        Some(Ok(true))
    } else if value.eq_ignore_ascii_case("off") || value.eq_ignore_ascii_case("false") {
        Some(Ok(false))
    } else {
        Some(Err(format!("real_sites must be on|off, got `{value}`")))
    }
}

impl Shell {
    fn set_stats_addr(&mut self, value: &str) {
        if value.eq_ignore_ascii_case("off") {
            match self.stats.take() {
                Some(server) => {
                    let addr = server.local_addr();
                    server.shutdown();
                    println!("  stats endpoint on {addr} stopped");
                }
                None => println!("  stats endpoint not running"),
            }
            return;
        }
        // Bind before replacing, so a bad address keeps any running
        // endpoint alive.
        match StatsServer::start(value) {
            Ok(server) => {
                println!(
                    "  stats endpoint: http://{}/metrics /queries /flight /sites /healthz",
                    server.local_addr()
                );
                self.stats = Some(server);
            }
            Err(e) => eprintln!("cannot bind stats endpoint on `{value}`: {e}"),
        }
    }

    fn run_sql(&mut self, sql: &str) {
        if let Some(parsed) = parse_set_stats_addr(sql) {
            match parsed {
                Ok(value) => self.set_stats_addr(&value),
                Err(e) => eprintln!("{e}"),
            }
            return;
        }
        if let Some(parsed) = parse_set_real_sites(sql) {
            match parsed {
                Ok(real) => {
                    self.policy = self.policy.with_real_sites(real);
                    if real {
                        println!("  real_sites = on (SET sites = N runs over socket-backed loopback sites; answers and gated counters are identical)");
                    } else {
                        println!("  real_sites = off (in-process site simulation)");
                    }
                }
                Err(e) => eprintln!("{e}"),
            }
            return;
        }
        if let Some(parsed) = parse_set(sql) {
            match parsed {
                // Mode switches keep the session's morsel-size and
                // real-sites overrides: they are properties of how scans
                // are scheduled / sites are reached, not of the mode
                // itself.
                Ok((SetVar::Threads, 1)) => {
                    self.policy = ExecPolicy::sequential()
                        .with_morsel_size(self.policy.morsel_size)
                        .with_real_sites(self.policy.real_sites);
                    println!("  threads = 1 (sequential)");
                }
                Ok((SetVar::Threads, n)) => {
                    self.policy = ExecPolicy::parallel(n)
                        .with_morsel_size(self.policy.morsel_size)
                        .with_real_sites(self.policy.real_sites);
                    println!("  threads = {n}");
                }
                Ok((SetVar::Sites, n)) => {
                    self.policy = ExecPolicy::distributed(n)
                        .with_morsel_size(self.policy.morsel_size)
                        .with_real_sites(self.policy.real_sites);
                    if self.policy.real_sites {
                        println!("  sites = {n} (distributed, socket transport)");
                    } else {
                        println!("  sites = {n} (distributed)");
                    }
                }
                Ok((SetVar::MorselSize, n)) => {
                    self.policy = self.policy.with_morsel_size(Some(n));
                    println!("  morsel_size = {n} rows (scheduling only; answers and counters are unaffected)");
                }
                Err(e) => eprintln!("{e}"),
            }
            return;
        }
        // The collecting sink feeds the `\timing` breakdown; the engine
        // emits `query.plan` / `query.execute` spans, the shell adds
        // `query.parse`.
        let sink = Arc::new(CollectingSink::new());
        let parse_span = Span::begin(sink.as_ref(), "query.parse");
        let query = match parse_query(sql) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("parse error: {e}");
                return;
            }
        };
        let parse_wall = parse_span.finish();
        match run_with_policy_traced(
            &query,
            &self.catalog,
            self.strategy,
            self.policy,
            sink.clone(),
        ) {
            Ok(result) => {
                const DISPLAY_CAP: usize = 50;
                if result.relation.len() > DISPLAY_CAP {
                    print!(
                        "{}",
                        gmdj_relation::ops::limit(&result.relation, DISPLAY_CAP)
                    );
                    println!(
                        "… {} more rows not shown (add LIMIT to the query)",
                        result.relation.len() - DISPLAY_CAP
                    );
                } else {
                    print!("{}", result.relation);
                }
                if self.timing {
                    let mut mode = match self.policy.mode {
                        ExecMode::Sequential => String::new(),
                        ExecMode::Parallel { threads } => format!(", {threads} threads"),
                        ExecMode::Distributed { sites } => format!(", {sites} sites"),
                    };
                    if let Some(m) = self.policy.morsel_size {
                        mode.push_str(&format!(", {m}-row morsels"));
                    }
                    println!(
                        "(parse {:.2} ms, plan {:.2} ms, execute {:.2} ms, {} work units, strategy {}{mode})",
                        parse_wall.as_secs_f64() * 1e3,
                        result.plan_wall.as_secs_f64() * 1e3,
                        result.wall.as_secs_f64() * 1e3,
                        result.stats.work(),
                        self.strategy.label()
                    );
                }
            }
            Err(e) => eprintln!("execution error: {e}"),
        }
    }

    /// `\analyze [json] SQL`: run the query and print the timed,
    /// counter-annotated plan tree (or its JSON form).
    fn analyze(&self, rest: &str) {
        // Meta lines arrive verbatim; tolerate a statement-style `;`.
        let rest = rest.trim_end_matches(';').trim();
        let (json, sql) = match rest.strip_prefix("json ") {
            Some(sql) => (true, sql.trim()),
            None => (false, rest),
        };
        let query = match parse_query(sql) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("parse error: {e}");
                return;
            }
        };
        match explain_analyze(
            &query,
            &self.catalog,
            self.strategy,
            self.policy,
            Arc::new(gmdj_core::trace::NullSink),
        ) {
            Ok(report) => {
                if json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render());
                }
            }
            Err(e) => eprintln!("execution error: {e}"),
        }
    }

    fn explain(&self, sql: &str) {
        match parse_query(sql) {
            Ok(q) => {
                println!("nested algebra:\n  {q}\n");
                match explain_gmdj(&q, &self.catalog, true) {
                    Ok(plan) => println!("optimized GMDJ plan:\n{plan}"),
                    Err(e) => eprintln!("translation error: {e}"),
                }
            }
            Err(e) => eprintln!("parse error: {e}"),
        }
    }

    fn compare(&self, sql: &str) {
        let query = match parse_query(sql) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("parse error: {e}");
                return;
            }
        };
        let mut baseline = None;
        for strategy in STRATEGIES {
            match run_with_policy(&query, &self.catalog, strategy, self.policy) {
                Ok(result) => {
                    let agree = match &baseline {
                        None => {
                            baseline = Some(result.relation.clone());
                            "  "
                        }
                        Some(b) if b.multiset_eq(&result.relation) => "  ",
                        Some(_) => "✗ DISAGREES",
                    };
                    println!(
                        "  {:<16} {:>10.2} ms {:>14} work units {:>8} rows {agree}",
                        strategy.label(),
                        result.wall.as_secs_f64() * 1e3,
                        result.stats.work(),
                        result.relation.len()
                    );
                }
                Err(e) => println!("  {:<16} error: {e}", strategy.label()),
            }
        }
    }

    fn meta(&mut self, line: &str) -> bool {
        let mut parts = line.splitn(2, ' ');
        let cmd = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match cmd {
            "\\q" | "\\quit" => return false,
            "\\tables" => {
                for name in self.catalog.table_names() {
                    let rows = self.catalog.table(name).map(|r| r.len()).unwrap_or(0);
                    println!("  {name:<16} {rows} rows");
                }
            }
            "\\strategy" => {
                if rest.is_empty() {
                    println!("  current: {}", self.strategy.label());
                    println!(
                        "  available: {}",
                        STRATEGIES.map(|s| s.label()).join(", ")
                    );
                } else {
                    match strategy_by_label(rest) {
                        Some(s) => {
                            self.strategy = s;
                            println!("  strategy set to {}", s.label());
                        }
                        None => eprintln!("unknown strategy `{rest}`"),
                    }
                }
            }
            "\\explain" => self.explain(rest),
            "\\analyze" => self.analyze(rest),
            // Both renderings iterate the registry's BTreeMaps and emit
            // one `# TYPE` line per family, so the output is key-sorted
            // and byte-stable for a given registry state — diffable
            // across runs and snapshot-testable.
            "\\metrics" => match rest {
                "json" => {
                    // The registry document plus a `queries` section
                    // from the progress registry: splice before the
                    // closing brace so the render stays one object.
                    let m = metrics::global().render_json();
                    let body = m.strip_suffix('}').unwrap_or(&m);
                    println!("{body},\"queries\":{}}}", progress::global().render_json());
                }
                _ => print!("{}", metrics::global().render_prometheus()),
            },
            "\\queries" => {
                if rest == "json" {
                    println!("{}", progress::global().render_json());
                } else {
                    let (active, totals) = progress::global().snapshot();
                    if active.is_empty() {
                        println!("  no active queries");
                    }
                    for q in &active {
                        let eta = if q.eta_ms > 0 {
                            format!(", eta {} ms", q.eta_ms)
                        } else {
                            String::new()
                        };
                        println!(
                            "  #{} [{} {} {} {}] {}/{} morsels, {} rows, {} ms{eta}  {}",
                            q.id,
                            q.strategy,
                            q.policy,
                            q.state,
                            q.phase,
                            q.morsels_done,
                            q.morsels_total,
                            q.rows_done,
                            q.elapsed_ms,
                            q.sql
                        );
                    }
                    println!(
                        "  totals: {} started, {} finished, {} morsels, {} rows",
                        totals.queries_started,
                        totals.queries_finished,
                        totals.morsels_done,
                        totals.rows_done
                    );
                }
            }
            "\\cache" => {
                if rest == "clear" {
                    gmdj_engine::plan_cache::clear();
                    println!("  plan cache cleared");
                } else {
                    let s = gmdj_engine::plan_cache::stats();
                    let total = s.hits + s.misses;
                    let rate = if total > 0 {
                        format!("{:.1}%", 100.0 * s.hits as f64 / total as f64)
                    } else {
                        "n/a".to_string()
                    };
                    println!(
                        "  plan cache: {}/{} plans, {} hits, {} misses (hit rate {rate})",
                        s.len, s.cap, s.hits, s.misses
                    );
                }
            }
            "\\flight" => println!("{}", trace::flight().dump_json()),
            "\\sites" => {
                if rest == "json" {
                    println!("{}", gmdj_core::distributed::sites_json());
                } else {
                    print!("{}", gmdj_core::distributed::sites_text());
                }
            }
            "\\dot" => match gmdj_sql::parse_query(rest) {
                Ok(q) => {
                    match gmdj_core::translate::subquery_to_gmdj(&q, &self.catalog) {
                        Ok(plan) => {
                            let optimized = gmdj_core::optimize::optimize(&plan);
                            println!("{}", optimized.to_dot());
                        }
                        Err(e) => eprintln!("translation error: {e}"),
                    }
                }
                Err(e) => eprintln!("parse error: {e}"),
            },
            "\\compare" => self.compare(rest),
            "\\timing" => {
                self.timing = rest != "off";
                println!("  timing {}", if self.timing { "on" } else { "off" });
            }
            other => eprintln!("unknown meta command `{other}` (try \\tables, \\strategy, \\explain, \\analyze, \\compare, \\metrics, \\queries, \\cache, \\flight, \\sites, \\timing, \\q)"),
        }
        true
    }
}

fn main() -> ExitCode {
    let mut catalog = MemoryCatalog::new();
    let mut strategy = Strategy::GmdjOptimized;
    let mut policy = ExecPolicy::sequential();
    let mut one_shot: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--csv" => {
                let Some(spec) = argv.next() else {
                    eprintln!("--csv needs name=path");
                    return ExitCode::FAILURE;
                };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--csv needs name=path, got `{spec}`");
                    return ExitCode::FAILURE;
                };
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot open {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut reader = std::io::BufReader::new(file);
                match gmdj_relation::csv::read_csv_infer(&mut reader, name) {
                    Ok(rel) => {
                        println!("loaded {name}: {} rows", rel.len());
                        catalog.register(name.to_string(), rel);
                    }
                    Err(e) => {
                        eprintln!("cannot parse {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--tpcr" => {
                let sf: f64 = argv.next().and_then(|v| v.parse().ok()).unwrap_or(0.01);
                let data = TpcrData::generate(&TpcrConfig::scale(sf, 42));
                for (name, rel) in [
                    ("customer", data.customer),
                    ("orders", data.orders),
                    ("lineitem", data.lineitem),
                    ("part", data.part),
                    ("supplier", data.supplier),
                    ("nation", data.nation),
                ] {
                    println!("generated {name}: {} rows", rel.len());
                    catalog.register(name, rel);
                }
            }
            "--netflow" => {
                let flows: usize = argv.next().and_then(|v| v.parse().ok()).unwrap_or(10_000);
                let data = NetflowData::generate(&NetflowConfig {
                    hours: 24,
                    flows,
                    users: 50,
                    source_ips: 64,
                    seed: 42,
                });
                for (name, rel) in [
                    ("Flow", data.flow),
                    ("Hours", data.hours),
                    ("User", data.user),
                ] {
                    println!("generated {name}: {} rows", rel.len());
                    catalog.register(name, rel);
                }
            }
            "--strategy" => {
                let Some(label) = argv.next() else {
                    eprintln!("--strategy needs a name");
                    return ExitCode::FAILURE;
                };
                match strategy_by_label(&label) {
                    Some(s) => strategy = s,
                    None => {
                        eprintln!("unknown strategy `{label}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                let Some(v) = argv.next() else {
                    eprintln!("--threads needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse::<usize>() {
                    Ok(0) => {
                        eprintln!("--threads must be at least 1");
                        return ExitCode::FAILURE;
                    }
                    Ok(1) => policy = ExecPolicy::sequential(),
                    Ok(n) => policy = ExecPolicy::parallel(n),
                    Err(_) => {
                        eprintln!("bad thread count `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--sites" => {
                let Some(v) = argv.next() else {
                    eprintln!("--sites needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse::<usize>() {
                    Ok(0) => {
                        eprintln!("--sites must be at least 1");
                        return ExitCode::FAILURE;
                    }
                    Ok(n) => policy = ExecPolicy::distributed(n),
                    Err(_) => {
                        eprintln!("bad site count `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--real-sites" => policy = policy.with_real_sites(true),
            "--morsel-size" => {
                let Some(v) = argv.next() else {
                    eprintln!("--morsel-size needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse::<usize>() {
                    Ok(0) => {
                        eprintln!("--morsel-size must be at least 1");
                        return ExitCode::FAILURE;
                    }
                    Ok(n) => policy = policy.with_morsel_size(Some(n)),
                    Err(_) => {
                        eprintln!("bad morsel size `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-e" => {
                let Some(sql) = argv.next() else {
                    eprintln!("-e needs an SQL string");
                    return ExitCode::FAILURE;
                };
                one_shot.push(sql);
            }
            "--help" | "-h" => {
                println!(
                    "gmdj-sql-shell — SQL over the GMDJ subquery engine\n\n\
                     --csv name=path   load a CSV file as table `name`\n\
                     --tpcr SF         generate TPC-R-style tables at scale factor SF\n\
                     --netflow N       generate the IP-flow warehouse with N flows\n\
                     --strategy S      evaluation strategy (default gmdj-opt)\n\
                     --threads N       evaluate GMDJs with N worker threads\n\
                     --sites N         evaluate GMDJs distributed across N sites\n\
                     --real-sites      distributed sites speak the socket protocol\n\
                     --morsel-size N   rows per morsel of the parallel detail scan\n\
                     -e SQL            run one query and exit (repeatable)\n\n\
                     `SET threads = N;` / `SET sites = N;` / `SET morsel_size = N;`\n\
                     / `SET real_sites = on|off;` change the policy mid-session;\n\
                     `SET stats_addr = HOST:PORT;` starts the HTTP stats endpoint\n\
                     (`off` stops it)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut shell = Shell {
        catalog,
        strategy,
        policy,
        timing: true,
        stats: None,
    };
    if !one_shot.is_empty() {
        for sql in one_shot {
            shell.run_sql(&sql);
        }
        return ExitCode::SUCCESS;
    }

    println!("gmdj-sql-shell — \\q to quit, \\tables, \\strategy, \\explain, \\analyze, \\dot, \\compare, \\metrics, \\queries, \\cache, \\flight, \\sites");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("gmdj> ");
        } else {
            print!("   -> ");
        }
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !shell.meta(trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(trimmed);
        buffer.push(' ');
        // Statements end with `;`.
        if trimmed.ends_with(';') {
            let sql = buffer.trim_end().trim_end_matches(';').to_string();
            buffer.clear();
            shell.run_sql(&sql);
        }
    }
    ExitCode::SUCCESS
}
