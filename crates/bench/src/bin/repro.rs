//! Regenerate the paper's figures, or fuzz the pipeline differentially.
//!
//! ```text
//! repro [--figure 2|3|4|5] [--scale F] [--seed N] [--threads N] [--full]
//!       [--real-sites N] [--morsel-size N] [--profile-json PATH]
//!       [--check-profile PATH] [--stats-addr HOST:PORT]
//!       [--flight-dump PATH] [--no-flight]
//! repro fuzz --seed S --cases N [--replay FILE|DIR] [--corpus-dir DIR]
//! repro bench [--quick] [--scale F] [--seed N] [--reps N] [--warmup N]
//!             [--out DIR] [--baseline PATH] [--check-baseline] [--bless]
//!             [--wall-tolerance F] [--no-ablations] [--no-vectorized]
//!             [--real-sites] [--morsel-size N] [--no-flight]
//!             [--compare A.json B.json]
//! ```
//!
//! The `fuzz` subcommand (see `gmdj_fuzz::cli`) runs seeded random nested
//! queries through every strategy × every execution policy and diffs the
//! answers against tuple-iteration semantics, shrinking and writing a
//! self-contained repro for any divergence.
//!
//! The `bench` subcommand (see `gmdj_bench::telemetry`) records a
//! deterministic performance trajectory — trimmed-mean wall-clock plus
//! exact evaluator/network/scan counters per (workload, size, strategy,
//! policy) cell — to `BENCH_<run>.json`, and `--check-baseline` gates it
//! against `bench/baseline.json`: counter drift hard-fails with a
//! per-plan-node diff, wall-clock regressions only warn.
//!
//! Prints, per figure, the measurement table (one row per size point, one
//! column per strategy — milliseconds and work units) followed by the
//! shape checks encoding Section 5's claims. `--scale 1.0` (or `--full`)
//! uses the paper's exact row counts; the default 0.05 finishes in a few
//! minutes on a laptop while preserving every shape. `--threads N` runs
//! the GMDJ strategies under `ExecPolicy::Parallel` — answers are
//! bit-identical, only wall-clock changes.
//!
//! `--profile-json PATH` additionally writes a machine-readable profile
//! (wall-clock, work counters, and the timed per-node plan trees) in the
//! format of `schemas/profile.schema.json`; `--check-profile PATH`
//! parses + validates an existing profile and exits, for CI.
//!
//! Observability: `--stats-addr HOST:PORT` serves the live HTTP stats
//! endpoint (`/metrics`, `/queries`, `/flight`, `/sites`, `/healthz` — see
//! `gmdj_core::serve`) for the duration of the run; `--flight-dump PATH`
//! writes the flight recorder's retained trace tail as JSON on exit;
//! `--no-flight` disables the always-on flight recorder (the overhead
//! ablation of EXPERIMENTS.md).

use std::process::ExitCode;

use gmdj_bench::{profile, render_table, run_figure_with, shape, FigureId};
use gmdj_core::runtime::ExecPolicy;
use gmdj_core::serve::StatsServer;
use gmdj_core::trace;

struct Args {
    figures: Vec<FigureId>,
    scale: f64,
    seed: u64,
    threads: usize,
    real_sites: usize,
    morsel_size: Option<usize>,
    csv_dir: Option<String>,
    profile_json: Option<String>,
    check_profile: Option<String>,
    stats_addr: Option<String>,
    flight_dump: Option<String>,
    no_flight: bool,
}

impl Args {
    fn policy(&self) -> ExecPolicy {
        let p = if self.real_sites > 0 {
            ExecPolicy::distributed(self.real_sites).with_real_sites(true)
        } else if self.threads > 1 {
            ExecPolicy::parallel(self.threads)
        } else {
            ExecPolicy::sequential()
        };
        p.with_morsel_size(self.morsel_size)
    }
}

fn parse_args() -> Result<Args, String> {
    let mut figures: Vec<FigureId> = Vec::new();
    let mut scale = 0.05;
    let mut seed = 42;
    let mut threads = 1;
    let mut real_sites = 0usize;
    let mut morsel_size: Option<usize> = None;
    let mut csv_dir: Option<String> = None;
    let mut profile_json: Option<String> = None;
    let mut check_profile: Option<String> = None;
    let mut stats_addr: Option<String> = None;
    let mut flight_dump: Option<String> = None;
    let mut no_flight = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                let v = argv.next().ok_or("--figure needs a value (2..5)")?;
                figures.push(FigureId::parse(&v).ok_or(format!("unknown figure `{v}`"))?);
            }
            "--scale" | "-s" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--threads" | "-t" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--real-sites" => {
                let v = argv.next().ok_or("--real-sites needs a site count")?;
                real_sites = v.parse().map_err(|_| format!("bad site count `{v}`"))?;
                if real_sites == 0 {
                    return Err("--real-sites must be at least 1".into());
                }
            }
            "--morsel-size" => {
                let v = argv.next().ok_or("--morsel-size needs a value")?;
                let rows: usize = v.parse().map_err(|_| format!("bad morsel size `{v}`"))?;
                if rows == 0 {
                    return Err("--morsel-size must be at least 1".into());
                }
                morsel_size = Some(rows);
            }
            "--full" => scale = 1.0,
            "--csv" => {
                csv_dir = Some(argv.next().ok_or("--csv needs a directory")?);
            }
            "--profile-json" => {
                profile_json = Some(argv.next().ok_or("--profile-json needs a path")?);
            }
            "--check-profile" => {
                check_profile = Some(argv.next().ok_or("--check-profile needs a path")?);
            }
            "--stats-addr" => {
                stats_addr = Some(argv.next().ok_or("--stats-addr needs HOST:PORT")?);
            }
            "--flight-dump" => {
                flight_dump = Some(argv.next().ok_or("--flight-dump needs a path")?);
            }
            "--no-flight" => no_flight = true,
            "--help" | "-h" => {
                println!(
                    "repro — regenerate the figures of 'Efficient Computation of \
                     Subqueries in Complex OLAP' (ICDE 2003)\n\n\
                     options:\n  \
                     --figure N   regenerate only figure N (2..5; repeatable)\n  \
                     --scale F    multiply the paper's row counts by F (default 0.05)\n  \
                     --full       shorthand for --scale 1.0 (the paper's sizes)\n  \
                     --seed N     data generation seed (default 42)\n  \
                     --threads N  evaluate GMDJ strategies with N worker threads\n  \
                     --real-sites N   evaluate GMDJ strategies distributed over N\n               \
                     socket-backed loopback sites (answers and gated\n               \
                     counters identical to the in-process simulation)\n  \
                     --morsel-size N  rows per morsel pulled from the parallel scan\n               \
                     queue (pure scheduling; counters are unaffected)\n  \
                     --csv DIR    also write the measurement grid as DIR/figN.csv\n  \
                     --profile-json PATH   write a machine-readable profile (timed\n                        \
                     plan trees + counters; see schemas/profile.schema.json)\n  \
                     --check-profile PATH  validate an existing profile and exit\n  \
                     --stats-addr H:P      serve live /metrics /queries /flight /sites /healthz\n                        \
                     over HTTP for the duration of the run\n  \
                     --flight-dump PATH    write the flight recorder's trace tail on exit\n  \
                     --no-flight           disable the always-on flight recorder\n\n\
                     subcommands:\n  \
                     fuzz         differential fuzzing of the subquery pipeline\n               \
                     (repro fuzz --help for its options)\n  \
                     bench        record a deterministic perf trajectory and gate it\n               \
                     against bench/baseline.json (repro bench --help)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if figures.is_empty() {
        figures = FigureId::all().to_vec();
    }
    Ok(Args {
        figures,
        scale,
        seed,
        threads,
        real_sites,
        morsel_size,
        csv_dir,
        profile_json,
        check_profile,
        stats_addr,
        flight_dump,
        no_flight,
    })
}

/// `--check-profile`: parse + validate a profile document, exit code only.
fn check_profile_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match profile::parse_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match profile::validate_profile(&doc) {
        Ok(()) => {
            println!(
                "{path}: valid profile (version {})",
                profile::PROFILE_VERSION
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path} violates the profile schema: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Write one figure's measurements as CSV (for external plotting).
fn write_csv(dir: &str, fig: FigureId, figure: &gmdj_bench::Figure) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let n = match fig {
        FigureId::Fig2 => 2,
        FigureId::Fig3 => 3,
        FigureId::Fig4 => 4,
        FigureId::Fig5 => 5,
    };
    let path = format!("{dir}/fig{n}.csv");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "size,outer,inner,strategy,wall_ms,work,rows")?;
    for p in &figure.points {
        for m in &p.measurements {
            writeln!(
                f,
                "{},{},{},{},{:.3},{},{}",
                p.label,
                p.outer,
                p.inner,
                m.strategy.label(),
                m.wall.as_secs_f64() * 1e3,
                m.work,
                m.rows
            )?;
        }
    }
    eprintln!("wrote {path}");
    Ok(())
}

/// `repro bench`: record a deterministic perf trajectory, optionally
/// blessing it as the baseline or gating it against the recorded one.
fn bench_cmd(argv: &[String]) -> ExitCode {
    let mut cfg = gmdj_bench::telemetry::BenchConfig::full(42);
    let mut out_dir = String::from(".");
    let mut baseline_path = String::from("bench/baseline.json");
    let mut check_baseline = false;
    let mut bless = false;
    let mut vectorized = true;
    let mut compare: Option<(String, String)> = None;
    let mut wall_tolerance = 0.25f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let parsed = (|| -> Result<(), String> {
            match arg.as_str() {
                "--quick" => {
                    cfg = gmdj_bench::telemetry::BenchConfig::quick(cfg.seed);
                }
                "--scale" => {
                    cfg.scale = next("--scale")?.parse().map_err(|_| "bad --scale")?;
                }
                "--seed" => cfg.seed = next("--seed")?.parse().map_err(|_| "bad --seed")?,
                "--reps" => cfg.reps = next("--reps")?.parse().map_err(|_| "bad --reps")?,
                "--warmup" => {
                    cfg.warmup = next("--warmup")?.parse().map_err(|_| "bad --warmup")?;
                }
                "--out" => out_dir = next("--out")?,
                "--baseline" => baseline_path = next("--baseline")?,
                "--check-baseline" => check_baseline = true,
                "--bless" => bless = true,
                "--wall-tolerance" => {
                    wall_tolerance = next("--wall-tolerance")?
                        .parse()
                        .map_err(|_| "bad --wall-tolerance")?;
                }
                "--no-ablations" => cfg.ablations = false,
                "--concurrent" => cfg.concurrent = Some(8),
                other if other.starts_with("--concurrent=") => {
                    let n: usize = other["--concurrent=".len()..]
                        .parse()
                        .map_err(|_| "bad --concurrent=N")?;
                    if n == 0 {
                        return Err("--concurrent=N needs at least 1 query".into());
                    }
                    cfg.concurrent = Some(n);
                }
                "--no-vectorized" => vectorized = false,
                "--real-sites" => cfg.real_sites = true,
                "--no-flight" => trace::flight().set_enabled(false),
                "--morsel-size" => {
                    let rows: usize = next("--morsel-size")?
                        .parse()
                        .map_err(|_| "bad --morsel-size")?;
                    if rows == 0 {
                        return Err("--morsel-size must be at least 1".into());
                    }
                    cfg.morsel_size = Some(rows);
                }
                "--compare" => {
                    let a = next("--compare")?;
                    let b = next("--compare")?;
                    compare = Some((a, b));
                }
                "--help" | "-h" => {
                    println!(
                        "repro bench — deterministic benchmark telemetry\n\n\
                         Runs the Figure 2-5 workloads and the ablation grid at a fixed\n\
                         seed/scale under the execution policies, recording trimmed-mean\n\
                         wall-clock and exact counters to BENCH_<run>.json\n\
                         (schemas/bench.schema.json).\n\n\
                         options:\n  \
                         --quick              CI configuration (small scale, 3 reps) —\n                       \
                         the configuration bench/baseline.json is recorded with\n  \
                         --scale F            override the size multiplier\n  \
                         --seed N             data generation seed (default 42)\n  \
                         --reps N             measured repetitions per cell\n  \
                         --warmup N           unmeasured warmup runs per cell\n  \
                         --out DIR            where to write BENCH_<run>.json (default .)\n  \
                         --baseline PATH      baseline document (default bench/baseline.json)\n  \
                         --check-baseline     gate this run against the baseline: counter\n                       \
                         drift fails (exit 1), wall-clock only warns\n  \
                         --bless              overwrite the baseline with this run\n  \
                         --wall-tolerance F   warn threshold on trimmed-mean wall-clock\n                       \
                         (fraction, default 0.25 = +25%)\n  \
                         --no-ablations       skip the ablation grid\n  \
                         --concurrent[=N]     additionally run the concurrent-load group:\n                       \
                         N (default 8) identical GMDJs submitted serially\n                       \
                         vs concurrently through a shared-scan pool,\n                       \
                         recording latency quantiles, queries/sec and the\n                       \
                         shared-scan pass counters (own blessed section;\n                       \
                         grid entries and their baseline are untouched)\n  \
                         --no-vectorized      force the row-path detail scan (the\n                       \
                         counters are identical either way — same baseline)\n  \
                         --real-sites         run distributed-policy cells over real\n                       \
                         socket-backed loopback sites (gated counters\n                       \
                         identical — same baseline, _realsites run id)\n  \
                         --no-flight          disable the always-on flight recorder\n                       \
                         (the overhead ablation of EXPERIMENTS.md; gated\n                       \
                         counters are identical either way)\n  \
                         --morsel-size N      rows per morsel on the grid's parallel\n                       \
                         policies (pure scheduling; counters identical, but\n                       \
                         the +mN label keys a separate trajectory)\n  \
                         --compare A B        compare the wall-clock of two recorded\n                       \
                         BENCH documents entry by entry and exit"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some((a_path, b_path)) = compare {
        let load = |path: &str| -> Result<profile::Json, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let doc = profile::parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
            gmdj_bench::telemetry::validate_bench(&doc).map_err(|e| format!("{path}: {e}"))?;
            Ok(doc)
        };
        let result = load(&a_path)
            .and_then(|a| load(&b_path).map(|b| (a, b)))
            .and_then(|(a, b)| gmdj_bench::telemetry::compare_wall_clock(&a, &b));
        return match result {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    cfg.vectorized = vectorized;
    let report = match gmdj_bench::telemetry::run_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: bench run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    // Self-check before writing: the emitted document must satisfy its
    // own schema, so CI failures point at the generator.
    let doc = match profile::parse_json(&json)
        .and_then(|d| gmdj_bench::telemetry::validate_bench(&d).map(|()| d))
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("internal error: generated bench report is invalid: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = format!("{out_dir}/BENCH_{}.json", report.config.run_id());
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&out_path, &json))
    {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out_path} ({} entries, {} gated)",
        report.entries.len(),
        report.entries.iter().filter(|e| e.gated).count()
    );

    if bless {
        if let Some(parent) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        // A concurrent run blessed over an existing baseline splices only
        // its concurrent section in, keeping every recorded grid entry
        // byte-identical: wall stats are machine-dependent, so rewriting
        // the whole file would churn 94 entries for an orthogonal
        // addition.
        let blessed = match (&report.concurrent, std::fs::read_to_string(&baseline_path)) {
            (Some(conc), Ok(existing)) => {
                match gmdj_bench::telemetry::splice_concurrent(&existing, &conc.to_json()) {
                    Some(spliced) => spliced,
                    None => {
                        eprintln!("error: baseline {baseline_path} is not a spliceable document");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => json.clone(),
        };
        if let Err(e) =
            profile::parse_json(&blessed).and_then(|d| gmdj_bench::telemetry::validate_bench(&d))
        {
            eprintln!("internal error: blessed baseline would be invalid: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&baseline_path, &blessed) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("blessed {baseline_path}");
    }

    if check_baseline {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match profile::parse_json(&text)
            .and_then(|d| gmdj_bench::telemetry::validate_bench(&d).map(|()| d))
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: baseline {baseline_path} is invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        match gmdj_bench::telemetry::compare_reports(&doc, &baseline, wall_tolerance) {
            Ok(cmp) => {
                print!("{}", cmp.render());
                if cmp.gate_failed() {
                    eprintln!("baseline gate FAILED: deterministic counters drifted");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: baseline comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("fuzz") {
        return gmdj_fuzz::cli::run(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bench") {
        return bench_cmd(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.check_profile {
        return check_profile_file(path);
    }
    if args.no_flight {
        trace::flight().set_enabled(false);
    }
    // Held for the duration of the run; dropped (and joined) on exit.
    let _stats = match &args.stats_addr {
        Some(addr) => match StatsServer::start(addr) {
            Ok(server) => {
                eprintln!(
                    "stats endpoint: http://{}/metrics /queries /flight /sites /healthz",
                    server.local_addr()
                );
                Some(server)
            }
            Err(e) => {
                eprintln!("error: cannot bind stats endpoint on `{addr}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if args.real_sites > 0 {
        println!(
            "Reproducing Akinde & Böhlen (ICDE 2003), scale {} of the paper's sizes, seed {}, {} socket site(s)\n",
            args.scale, args.seed, args.real_sites
        );
    } else {
        println!(
            "Reproducing Akinde & Böhlen (ICDE 2003), scale {} of the paper's sizes, seed {}, {} thread(s)\n",
            args.scale, args.seed, args.threads
        );
    }
    let policy = args.policy();
    let mut all_passed = true;
    let mut figures = Vec::new();
    for fig in &args.figures {
        let figure = match run_figure_with(*fig, args.scale, args.seed, policy) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error while running {fig:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", render_table(&figure));
        if let Some(dir) = &args.csv_dir {
            if let Err(e) = write_csv(dir, *fig, &figure) {
                eprintln!("csv write failed: {e}");
            }
        }
        let checks = shape::check(*fig, &figure);
        println!("{}", shape::render(&checks));
        all_passed &= checks.iter().all(|c| c.passed);
        figures.push(figure);
    }
    if let Some(path) = &args.profile_json {
        let doc = profile::render_profile(&figures, &policy, args.scale, args.seed);
        // Self-check before writing: the emitted document must satisfy
        // its own schema, so CI failures point at the generator.
        if let Err(e) = profile::parse_json(&doc).and_then(|d| profile::validate_profile(&d)) {
            eprintln!("internal error: generated profile is invalid: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("profile write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.flight_dump {
        if let Err(e) = std::fs::write(path, trace::flight().dump_json()) {
            eprintln!("flight dump failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if all_passed {
        println!("All shape checks passed.");
        ExitCode::SUCCESS
    } else {
        println!("Some shape checks FAILED — see above.");
        ExitCode::FAILURE
    }
}
