//! Machine-readable profiles: the `repro --profile-json` output.
//!
//! A profile is one JSON document carrying, per figure / size point /
//! strategy, the query wall-clock, work counters, and the full timed
//! [`PlanNodeStats`] tree. The format is documented by the checked-in
//! schema at `schemas/profile.schema.json`; [`validate_profile`]
//! implements exactly that schema (no serde in-tree, so validation runs
//! on the hand-rolled [`Json`] parser below — CI regenerates a profile
//! and validates it on every push).

use gmdj_core::progress::{self, QUERIES_VERSION};
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats};
use gmdj_core::trace::json_escape;

use crate::{Figure, Measurement};

/// Schema version written to and required from profile documents.
/// Version 2 added the page-accounting counters (`col_chunk_reads`,
/// `row_page_reads`) to every plan node's `eval` block and `morsels` to
/// its `kernel` block. Version 3 added the top-level `progress` object
/// (the cumulative totals of [`gmdj_core::progress`]'s query registry).
/// Version 4 added the measured wire-byte counters (`bytes_sent`,
/// `bytes_received`) to every plan node's `network` block — zero except
/// under the socket site transport (`ExecPolicy::real_sites`).
/// Version 5 added the optional per-node `sites` array: the distributed
/// coordinator's per-site breakdown (round-trip / site wall / merge
/// durations, rows, fragment size, attempts, wire bytes), present
/// exactly on nodes that ran `ExecMode::Distributed`.
pub const PROFILE_VERSION: u64 = 5;

/// Render a full profile document for a set of regenerated figures.
pub fn render_profile(figures: &[Figure], policy: &ExecPolicy, scale: f64, seed: u64) -> String {
    // Cumulative progress-registry totals for every query this process
    // ran (the figures' runs all report into the global registry).
    let (_, totals) = progress::global().snapshot();
    let mut out = format!(
        "{{\"version\":{},\"policy\":\"{}\",\"scale\":{},\"seed\":{},\
         \"progress\":{{\"queries_started\":{},\"queries_finished\":{},\
         \"rows_done\":{},\"morsels_done\":{},\"morsels_total\":{}}},\"figures\":[",
        PROFILE_VERSION,
        json_escape(&format!("{:?}", policy.mode)),
        scale,
        seed,
        totals.queries_started,
        totals.queries_finished,
        totals.rows_done,
        totals.morsels_done,
        totals.morsels_total
    );
    for (i, fig) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"description\":\"{}\",\"points\":[",
            json_escape(fig.name),
            json_escape(fig.description)
        ));
        for (j, p) in fig.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"outer\":{},\"inner\":{},\"measurements\":[",
                json_escape(&p.label),
                p.outer,
                p.inner
            ));
            for (k, m) in p.measurements.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&measurement_json(m));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn measurement_json(m: &Measurement) -> String {
    let plan = match &m.plan {
        Some(tree) => tree.to_json(),
        None => "null".to_string(),
    };
    format!(
        "{{\"strategy\":\"{}\",\"wall_us\":{},\"plan_us\":{},\"work\":{},\"rows\":{},\"plan\":{}}}",
        json_escape(m.strategy.label()),
        m.wall.as_micros(),
        m.plan_wall.as_micros(),
        m.work,
        m.rows,
        plan
    )
}

/// A parsed JSON value — the minimal tree the validator needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for profiles: no comments, no
/// trailing commas; `\uXXXX` escapes decode, surrogate pairs excluded).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// The twelve evaluator counters every plan node carries.
const EVAL_COUNTERS: [&str; 12] = [
    "detail_scanned",
    "probe_candidates",
    "theta_evals",
    "agg_updates",
    "base_rows",
    "dead_early",
    "done_early",
    "index_builds",
    "partitions",
    "completion_fallbacks",
    "col_chunk_reads",
    "row_page_reads",
];

/// The numeric fields of one per-site breakdown entry (plus a string
/// `label`).
const SITE_COUNTERS: [&str; 10] = [
    "site",
    "roundtrips",
    "attempts",
    "roundtrip_ns",
    "site_wall_ns",
    "merge_ns",
    "rows_scanned",
    "fragment_rows",
    "bytes_sent",
    "bytes_received",
];

/// The cumulative totals a `progress` / `totals` object carries.
const PROGRESS_TOTALS: [&str; 5] = [
    "queries_started",
    "queries_finished",
    "rows_done",
    "morsels_done",
    "morsels_total",
];

fn require_num(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    obj.get(key)
        .and_then(Json::as_num)
        .map(|_| ())
        .ok_or_else(|| format!("{at}: missing numeric `{key}`"))
}

fn require_str(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(|_| ())
        .ok_or_else(|| format!("{at}: missing string `{key}`"))
}

/// Validate a plan-node object against the schema (recursively).
fn validate_plan(node: &Json, at: &str) -> Result<(), String> {
    require_str(node, "label", at)?;
    for key in [
        "rows_out",
        "scanned_rows",
        "elapsed_ns",
        "self_ns",
        "invocations",
        "worker_wall_max_ns",
        "worker_wall_sum_ns",
    ] {
        require_num(node, key, at)?;
    }
    let eval = node
        .get("eval")
        .ok_or_else(|| format!("{at}: missing `eval`"))?;
    for key in EVAL_COUNTERS {
        require_num(eval, key, &format!("{at}.eval"))?;
    }
    let network = node
        .get("network")
        .ok_or_else(|| format!("{at}: missing `network`"))?;
    for key in [
        "broadcast_values",
        "bytes_received",
        "bytes_sent",
        "collected_states",
        "messages",
    ] {
        require_num(network, key, &format!("{at}.network"))?;
    }
    let ops = node
        .get("ops")
        .ok_or_else(|| format!("{at}: missing `ops`"))?;
    for key in ["rows_in", "rows_out"] {
        require_num(ops, key, &format!("{at}.ops"))?;
    }
    // `sites` is optional (present exactly on distributed nodes) but
    // must be complete when present — same stance as `kernel`.
    if let Some(sites) = node.get("sites") {
        let sites = sites
            .as_arr()
            .ok_or_else(|| format!("{at}: `sites` must be an array"))?;
        for (i, s) in sites.iter().enumerate() {
            let at = format!("{at}.sites[{i}]");
            require_str(s, "label", &at)?;
            for key in SITE_COUNTERS {
                require_num(s, key, &at)?;
            }
        }
    }
    let children = node
        .get("children")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{at}: missing `children` array"))?;
    for (i, c) in children.iter().enumerate() {
        validate_plan(c, &format!("{at}.children[{i}]"))?;
    }
    Ok(())
}

/// Validate a parsed profile document against the checked-in schema
/// (`schemas/profile.schema.json`). Returns the first violation.
pub fn validate_profile(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `version`")?;
    if version != PROFILE_VERSION as f64 {
        return Err(format!("unsupported profile version {version}"));
    }
    require_str(doc, "policy", "profile")?;
    require_num(doc, "scale", "profile")?;
    require_num(doc, "seed", "profile")?;
    let progress = doc
        .get("progress")
        .ok_or("missing `progress` object (added in version 3)")?;
    for key in PROGRESS_TOTALS {
        require_num(progress, key, "profile.progress")?;
    }
    let figures = doc
        .get("figures")
        .and_then(Json::as_arr)
        .ok_or("missing `figures` array")?;
    if figures.is_empty() {
        return Err("`figures` is empty".into());
    }
    for (i, fig) in figures.iter().enumerate() {
        let at = format!("figures[{i}]");
        require_str(fig, "name", &at)?;
        require_str(fig, "description", &at)?;
        let points = fig
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}: missing `points` array"))?;
        for (j, p) in points.iter().enumerate() {
            let at = format!("{at}.points[{j}]");
            require_str(p, "label", &at)?;
            require_num(p, "outer", &at)?;
            require_num(p, "inner", &at)?;
            let measurements = p
                .get("measurements")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{at}: missing `measurements` array"))?;
            for (k, m) in measurements.iter().enumerate() {
                let at = format!("{at}.measurements[{k}]");
                require_str(m, "strategy", &at)?;
                for key in ["wall_us", "plan_us", "work", "rows"] {
                    require_num(m, key, &at)?;
                }
                match m.get("plan") {
                    Some(Json::Null) => {}
                    Some(plan @ Json::Obj(_)) => validate_plan(plan, &format!("{at}.plan"))?,
                    _ => return Err(format!("{at}: `plan` must be an object or null")),
                }
            }
        }
    }
    Ok(())
}

/// Validate a queries/progress document (the shell's `\queries json`,
/// the HTTP `/queries` endpoint, `schemas/queries.schema.json`).
/// Checks the field inventory and the live progress invariant
/// `morsels_done ≤ morsels_total` on every active entry.
pub fn validate_queries(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `version`")?;
    if version != QUERIES_VERSION as f64 {
        return Err(format!("unsupported queries version {version}"));
    }
    let active = doc
        .get("active")
        .and_then(Json::as_arr)
        .ok_or("missing `active` array")?;
    for (i, q) in active.iter().enumerate() {
        let at = format!("active[{i}]");
        for key in ["sql", "strategy", "policy", "state", "phase"] {
            require_str(q, key, &at)?;
        }
        for key in [
            "id",
            "elapsed_ms",
            "rows_done",
            "morsels_done",
            "morsels_total",
            "eta_ms",
            "predicted_cost",
            "eta_cost_ms",
        ] {
            require_num(q, key, &at)?;
        }
        let done = q.get("morsels_done").and_then(Json::as_num).unwrap_or(0.0);
        let total = q.get("morsels_total").and_then(Json::as_num).unwrap_or(0.0);
        if done > total {
            return Err(format!(
                "{at}: morsels_done {done} exceeds morsels_total {total}"
            ));
        }
    }
    let totals = doc.get("totals").ok_or("missing `totals` object")?;
    for key in PROGRESS_TOTALS {
        require_num(totals, key, "totals")?;
    }
    Ok(())
}

/// Reconstruct a [`PlanNodeStats`] tree from its `to_json` form — used by
/// the round-trip tests to assert the JSON loses nothing the profile
/// consumers need.
pub fn plan_from_json(node: &Json) -> Result<PlanNodeStats, String> {
    let num = |key: &str| -> Result<u64, String> {
        node.get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let mut out = PlanNodeStats::new(
        node.get("label")
            .and_then(Json::as_str)
            .ok_or("missing `label`")?,
    );
    out.rows_out = num("rows_out")?;
    out.scanned_rows = num("scanned_rows")?;
    out.elapsed_ns = num("elapsed_ns")?;
    out.invocations = num("invocations")?;
    out.worker_wall_max_ns = num("worker_wall_max_ns")?;
    out.worker_wall_sum_ns = num("worker_wall_sum_ns")?;
    let ops = node.get("ops").ok_or("missing `ops`")?;
    let ops_num = |key: &str| -> Result<u64, String> {
        ops.get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("missing ops.`{key}`"))
    };
    out.ops.rows_in = ops_num("rows_in")?;
    out.ops.rows_out = ops_num("rows_out")?;
    let eval = node.get("eval").ok_or("missing `eval`")?;
    let eval_num = |key: &str| -> Result<u64, String> {
        eval.get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("missing eval.`{key}`"))
    };
    out.eval.detail_scanned = eval_num("detail_scanned")?;
    out.eval.probe_candidates = eval_num("probe_candidates")?;
    out.eval.theta_evals = eval_num("theta_evals")?;
    out.eval.agg_updates = eval_num("agg_updates")?;
    out.eval.base_rows = eval_num("base_rows")?;
    out.eval.dead_early = eval_num("dead_early")?;
    out.eval.done_early = eval_num("done_early")?;
    out.eval.index_builds = eval_num("index_builds")?;
    out.eval.partitions = eval_num("partitions")?;
    out.eval.completion_fallbacks = eval_num("completion_fallbacks")?;
    out.eval.col_chunk_reads = eval_num("col_chunk_reads")?;
    out.eval.row_page_reads = eval_num("row_page_reads")?;
    // Older persisted profiles predate the kernel-dispatch counters;
    // absent means zero, present must be complete.
    if let Some(kernel) = node.get("kernel") {
        let k_num = |key: &str| -> Result<u64, String> {
            kernel
                .get(key)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing kernel.`{key}`"))
        };
        out.kernel.batches = k_num("batches")?;
        out.kernel.morsels = k_num("morsels")?;
        out.kernel.rows_vectorized = k_num("rows_vectorized")?;
        out.kernel.rows_row_path = k_num("rows_row_path")?;
    }
    let network = node.get("network").ok_or("missing `network`")?;
    let net_num = |key: &str| -> Result<u64, String> {
        network
            .get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("missing network.`{key}`"))
    };
    out.network.broadcast_values = net_num("broadcast_values")?;
    out.network.bytes_received = net_num("bytes_received")?;
    out.network.bytes_sent = net_num("bytes_sent")?;
    out.network.collected_states = net_num("collected_states")?;
    out.network.messages = net_num("messages")?;
    // Pre-v5 profiles have no per-site breakdown; absent means empty,
    // present must be complete.
    if let Some(sites) = node.get("sites") {
        for (i, s) in sites
            .as_arr()
            .ok_or("`sites` must be an array")?
            .iter()
            .enumerate()
        {
            let s_num = |key: &str| -> Result<u64, String> {
                s.get(key)
                    .and_then(Json::as_num)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("missing sites[{i}].`{key}`"))
            };
            out.sites.push(gmdj_core::runtime::SiteBreakdown {
                site: s_num("site")?,
                label: s
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("missing sites[{i}].`label`"))?
                    .to_string(),
                roundtrips: s_num("roundtrips")?,
                attempts: s_num("attempts")?,
                roundtrip_ns: s_num("roundtrip_ns")?,
                site_wall_ns: s_num("site_wall_ns")?,
                merge_ns: s_num("merge_ns")?,
                rows_scanned: s_num("rows_scanned")?,
                fragment_rows: s_num("fragment_rows")?,
                bytes_sent: s_num("bytes_sent")?,
                bytes_received: s_num("bytes_received")?,
            });
        }
    }
    for c in node
        .get("children")
        .and_then(Json::as_arr)
        .ok_or("missing `children`")?
    {
        out.children.push(plan_from_json(c)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_profile_shapes() {
        let doc = parse_json(r#"{"a":[1,2.5,-3],"b":"x\"yA","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "x\"yA");
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn plan_json_round_trips() {
        let mut node = PlanNodeStats::new("GMDJ");
        node.rows_out = 7;
        node.elapsed_ns = 1234;
        node.invocations = 1;
        node.eval.detail_scanned = 99;
        node.eval.partitions = 2;
        node.network.messages = 4;
        node.worker_wall_sum_ns = 55;
        node.sites.push(gmdj_core::runtime::SiteBreakdown {
            site: 0,
            label: "site0@127.0.0.1:9".to_string(),
            roundtrips: 2,
            attempts: 3,
            roundtrip_ns: 500,
            site_wall_ns: 300,
            merge_ns: 20,
            rows_scanned: 50,
            fragment_rows: 25,
            bytes_sent: 1024,
            bytes_received: 2048,
        });
        let mut child = PlanNodeStats::new("Table(x)");
        child.scanned_rows = 10;
        node.children.push(child);

        let json = parse_json(&node.to_json()).unwrap();
        validate_plan(&json, "plan").unwrap();
        let back = plan_from_json(&json).unwrap();
        assert_eq!(back.label, "GMDJ");
        assert_eq!(back.rows_out, 7);
        assert_eq!(back.eval.detail_scanned, 99);
        assert_eq!(back.network.messages, 4);
        assert_eq!(back.sites, node.sites);
        assert_eq!(back.children[0].scanned_rows, 10);
        // Non-distributed nodes carry no `sites` key at all.
        assert!(!back.children[0].to_json().contains("\"sites\""));
    }

    const PROGRESS: &str = r#""progress":{"queries_started":4,"queries_finished":4,
        "rows_done":100,"morsels_done":8,"morsels_total":8}"#;

    #[test]
    fn validation_rejects_missing_counters() {
        let doc = parse_json(&format!(
            r#"{{"version":5,"policy":"Sequential","scale":0.01,"seed":1,{PROGRESS},"figures":[
                {{"name":"f","description":"d","points":[
                    {{"label":"l","outer":1,"inner":1,"measurements":[
                        {{"strategy":"s","wall_us":1,"plan_us":0,"work":1,"rows":1,"plan":null}}
                    ]}}]}}]}}"#,
        ))
        .unwrap();
        validate_profile(&doc).unwrap();

        // Version ≤2 profiles predate the `progress` section, version 3
        // the network byte counters.
        for stale_version in [1, 2, 3, 4] {
            let stale = parse_json(&format!(
                r#"{{"version":{stale_version},"policy":"x","scale":1,"seed":1,"figures":[{{}}]}}"#
            ))
            .unwrap();
            assert!(validate_profile(&stale)
                .unwrap_err()
                .contains("unsupported"));
        }
        let no_progress =
            parse_json(r#"{"version":5,"policy":"x","scale":1,"seed":1,"figures":[{}]}"#).unwrap();
        assert!(validate_profile(&no_progress)
            .unwrap_err()
            .contains("progress"));
        let bad = parse_json(&format!(
            r#"{{"version":5,"policy":"x","scale":1,"seed":1,{PROGRESS},"figures":[{{}}]}}"#
        ))
        .unwrap();
        assert!(validate_profile(&bad).is_err());
        let empty = parse_json(&format!(
            r#"{{"version":5,"policy":"x","scale":1,"seed":1,{PROGRESS},"figures":[]}}"#
        ))
        .unwrap();
        assert!(validate_profile(&empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn queries_document_validates_and_corruption_is_caught() {
        // The live render of the global registry is always valid.
        let doc = parse_json(&progress::global().render_json()).unwrap();
        validate_queries(&doc).unwrap();

        let ok = parse_json(
            r#"{"version":2,"active":[{"id":1,"sql":"q","strategy":"gmdj-opt",
                "policy":"par4","state":"running","phase":"GMDJ","elapsed_ms":10,"rows_done":5,
                "morsels_done":2,"morsels_total":4,"eta_ms":10,
                "predicted_cost":100,"eta_cost_ms":12}],
                "totals":{"queries_started":1,"queries_finished":0,
                "rows_done":5,"morsels_done":2,"morsels_total":4}}"#,
        )
        .unwrap();
        validate_queries(&ok).unwrap();

        // morsels_done > morsels_total violates the progress invariant.
        let over = parse_json(
            r#"{"version":2,"active":[{"id":1,"sql":"q","strategy":"s",
                "policy":"p","state":"queued","phase":"","elapsed_ms":0,"rows_done":0,
                "morsels_done":9,"morsels_total":4,"eta_ms":0,
                "predicted_cost":0,"eta_cost_ms":0}],
                "totals":{"queries_started":1,"queries_finished":0,
                "rows_done":0,"morsels_done":9,"morsels_total":4}}"#,
        )
        .unwrap();
        assert!(validate_queries(&over).unwrap_err().contains("exceeds"));

        let stale = parse_json(r#"{"version":99,"active":[],"totals":{}}"#).unwrap();
        assert!(validate_queries(&stale)
            .unwrap_err()
            .contains("unsupported"));
        let no_totals = parse_json(r#"{"version":2,"active":[]}"#).unwrap();
        assert!(validate_queries(&no_totals).unwrap_err().contains("totals"));
    }
}
