//! Figure 4 — quantified comparison predicate ALL with a `<>` correlation
//! on key attributes.
//!
//! Paper sweep: inner = outer = 40k–160k; the paper's join unnesting took
//! more than 7 hours at 20k rows, so the materializing baseline is
//! benchmarked only at the smallest size here (mirroring the paper, which
//! also reports it only as an anecdote).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdj_bench::{bench_instance, FigureId};
use gmdj_engine::strategy::{run, Strategy};

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_all");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for rows in [600usize, 1200, 1800, 2400] {
        let (catalog, query) = bench_instance(FigureId::Fig4, rows, rows, 42);
        let mut strategies = vec![
            Strategy::NativeSmart,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ];
        if rows <= 600 {
            // The materializing join + set-difference baseline is ~10^3×
            // slower than completed GMDJ already here; larger sizes are
            // measured once by `repro`, not statistically by criterion.
            strategies.push(Strategy::JoinUnnest);
        }
        for strat in strategies {
            group.bench_with_input(BenchmarkId::new(strat.label(), rows), &rows, |b, _| {
                b.iter(|| run(&query, &catalog, strat).unwrap().relation.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
