//! Figure 5 — two tree-nested EXISTS predicates with disjoint conditions.
//!
//! Paper sweep: outer 1000 rows, inner 300k–1.2M; series native and join
//! unnesting with and without indexes, plus basic and
//! coalesced/completed GMDJ. The unindexed baselines are quadratic, so
//! Criterion measures them at the smallest size only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdj_bench::{bench_instance, FigureId};
use gmdj_engine::strategy::{run, Strategy};

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_tree_exists");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (outer, inner) in [(100, 30_000), (100, 60_000), (100, 90_000), (100, 120_000)] {
        let (catalog, query) = bench_instance(FigureId::Fig5, outer, inner, 42);
        let mut strategies = vec![
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ];
        if inner <= 30_000 {
            strategies.push(Strategy::NativeSmartNoIndex);
            strategies.push(Strategy::JoinUnnestNoIndex);
        }
        for strat in strategies {
            group.bench_with_input(
                BenchmarkId::new(strat.label(), format!("{outer}x{inner}")),
                &inner,
                |b, _| b.iter(|| run(&query, &catalog, strat).unwrap().relation.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
