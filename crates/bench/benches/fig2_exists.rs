//! Figure 2 — query evaluation time for an EXISTS subquery.
//!
//! Paper sweep: outer 1000 rows, inner 300k–1.2M; series Native,
//! Unnesting, GMDJ. Criterion runs a 1/10-scale sweep; the `repro` binary
//! runs the full sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdj_bench::{bench_instance, FigureId};
use gmdj_engine::strategy::{run, Strategy};

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_exists");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (outer, inner) in [(100, 30_000), (100, 60_000), (100, 90_000), (100, 120_000)] {
        let (catalog, query) = bench_instance(FigureId::Fig2, outer, inner, 42);
        for strat in [
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strat.label(), format!("{outer}x{inner}")),
                &inner,
                |b, _| b.iter(|| run(&query, &catalog, strat).unwrap().relation.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
