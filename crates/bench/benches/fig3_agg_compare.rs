//! Figure 3 — comparison predicate over an aggregate subquery.
//!
//! Paper sweep: outer 500–2000 rows, inner 300k–1.2M; series Native
//! (simple nested loop), Optimized GMDJ, Unnesting (aggregate + outer
//! join). Criterion runs a reduced sweep so the quadratic native baseline
//! stays measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdj_bench::{bench_instance, FigureId};
use gmdj_engine::strategy::{run, Strategy};

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_agg_compare");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (outer, inner) in [(50, 15_000), (100, 30_000), (150, 45_000), (200, 60_000)] {
        let (catalog, query) = bench_instance(FigureId::Fig3, outer, inner, 42);
        for strat in [
            Strategy::NaiveNestedLoop,
            Strategy::GmdjOptimized,
            Strategy::JoinUnnest,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strat.label(), format!("{outer}x{inner}")),
                &inner,
                |b, _| b.iter(|| run(&query, &catalog, strat).unwrap().relation.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
