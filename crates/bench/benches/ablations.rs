//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **coalescing** (Prop. 4.1) vs chained GMDJs, on the Figure 5 query;
//! * **base-tuple completion** (Theorems 4.1/4.2) vs plain filtered
//!   evaluation, on the Figure 4 query;
//! * **intrinsic probe indexing** (hash/interval) vs scanning the active
//!   base tuples, on the Figure 2 query;
//! * **memory-partitioned evaluation**: the single-scan in-memory GMDJ vs
//!   2/4/8 base partitions (one detail scan each);
//! * **threads**: `ExecPolicy::Parallel` with 1/2/4/8 workers over the
//!   detail scan (answers are identical; only wall-clock moves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdj_bench::{bench_instance, FigureId};
use gmdj_core::eval::{GmdjOptions, ProbeStrategy};
use gmdj_core::exec::{execute, ExecContext};
use gmdj_core::optimize::{optimize_with, OptFlags};
use gmdj_core::runtime::ExecPolicy;
use gmdj_core::translate::subquery_to_gmdj;
use gmdj_engine::strategy::{run, Strategy};

fn coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coalescing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (catalog, query) = bench_instance(FigureId::Fig5, 100, 60_000, 42);
    let base_plan = subquery_to_gmdj(&query, &catalog).unwrap();
    let variants = [
        (
            "chained",
            OptFlags {
                hoist: false,
                coalesce: false,
                completion: false,
            },
        ),
        (
            "hoisted",
            OptFlags {
                hoist: true,
                coalesce: false,
                completion: false,
            },
        ),
        (
            "coalesced",
            OptFlags {
                hoist: true,
                coalesce: true,
                completion: false,
            },
        ),
        (
            "coalesced+completion",
            OptFlags {
                hoist: true,
                coalesce: true,
                completion: true,
            },
        ),
    ];
    for (name, flags) in variants {
        let plan = optimize_with(&base_plan, &flags);
        group.bench_function(BenchmarkId::new(name, "fig5@100x60k"), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new();
                execute(&plan, &catalog, &mut ctx).unwrap().len()
            })
        });
    }
    group.finish();
}

fn completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_completion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (catalog, query) = bench_instance(FigureId::Fig4, 1500, 1500, 42);
    for (name, strat) in [
        ("without-completion", Strategy::GmdjBasic),
        ("with-completion", Strategy::GmdjOptimized),
    ] {
        group.bench_function(BenchmarkId::new(name, "fig4@1500"), |b| {
            b.iter(|| run(&query, &catalog, strat).unwrap().relation.len())
        });
    }
    group.finish();
}

fn probe_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_probe_index");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (catalog, query) = bench_instance(FigureId::Fig2, 200, 60_000, 42);
    for (name, strat) in [
        ("hash-probe", Strategy::GmdjBasic),
        ("active-scan", Strategy::GmdjBasicNoProbeIndex),
    ] {
        group.bench_function(BenchmarkId::new(name, "fig2@200x60k"), |b| {
            b.iter(|| run(&query, &catalog, strat).unwrap().relation.len())
        });
    }
    group.finish();
}

fn memory_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memory_partitioning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (catalog, query) = bench_instance(FigureId::Fig2, 400, 60_000, 42);
    let plan = subquery_to_gmdj(&query, &catalog).unwrap();
    for partitions in [1usize, 2, 4, 8] {
        let rows = 400usize.div_ceil(partitions);
        group.bench_function(BenchmarkId::new("partitions", partitions), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::with_opts(GmdjOptions {
                    probe: ProbeStrategy::Auto,
                    partition_rows: Some(rows),
                    ..GmdjOptions::default()
                });
                execute(&plan, &catalog, &mut ctx).unwrap().len()
            })
        });
    }
    group.finish();
}

fn threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (catalog, query) = bench_instance(FigureId::Fig2, 400, 60_000, 42);
    let plan = subquery_to_gmdj(&query, &catalog).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let policy = if threads == 1 {
            ExecPolicy::sequential()
        } else {
            ExecPolicy::parallel(threads)
        };
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::with_policy(policy);
                execute(&plan, &catalog, &mut ctx).unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    coalescing,
    completion,
    probe_index,
    memory_partitioning,
    threads
);
criterion_main!(benches);
