//! Property tests: cross-query shared detail scans are observationally
//! invisible. Whatever the query shape, N concurrent clones coalesced
//! through a [`SharedScanPool`] — which merges them into shared passes
//! and deduplicates identical members — and mixes of *distinct* queries
//! over one detail table must each produce the multiset (and the gated
//! counters) of a standalone run. The fuzz driver runs the same twin
//! check per generated case (`gmdj_fuzz::driver`); this suite sweeps it
//! explicitly across clone counts and the policy-consuming strategies.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use gmdj_algebra::ast::{exists, QueryExpr};
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::ExecPolicy;
use gmdj_core::shared::{SharedScanConfig, SharedScanPool};
use gmdj_engine::strategy::{
    run_with_policy, run_with_policy_pooled, RunResult, Strategy as EvalStrategy,
};
use gmdj_fuzz::driver::{default_strategies, uses_policy};
use gmdj_fuzz::gen::{generate_case, GenConfig};
use gmdj_relation::error::Result;
use gmdj_relation::expr::{col, lit, CmpOp, ScalarExpr};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::Value;

/// A pool tuned so every test wave coalesces: the window is generous and
/// released as soon as `target` queries are queued, and the tiny morsel
/// size makes the shared pass hand out many windows per worker.
fn pool(target: usize) -> Arc<SharedScanPool> {
    Arc::new(SharedScanPool::new(SharedScanConfig {
        window: Duration::from_millis(500),
        target_batch: target,
        threads: 2,
        morsel_rows: 7,
    }))
}

/// Submit `queries[i]` from its own thread through one shared pool and
/// hand back the per-client outcomes in submission order.
fn pooled_wave(
    queries: &[&QueryExpr],
    catalog: &MemoryCatalog,
    strategy: EvalStrategy,
    policy: ExecPolicy,
) -> Vec<Result<RunResult>> {
    let p = pool(queries.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|query| {
                let (p, query) = (p.clone(), *query);
                scope.spawn(move || run_with_policy_pooled(query, catalog, strategy, policy, p))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pooled submitter panicked"))
            .collect()
    })
}

/// One client's pooled outcome must be indistinguishable from the
/// standalone outcome: same multiset, same gated counters, same error.
fn assert_matches_standalone(
    standalone: &Result<RunResult>,
    pooled: &Result<RunResult>,
    context: &str,
) -> std::result::Result<(), TestCaseError> {
    match (standalone, pooled) {
        (Ok(a), Ok(b)) => {
            prop_assert!(
                a.relation.multiset_eq(&b.relation),
                "{context}: multiset drift\nstandalone ({} rows):\n{}\npooled ({} rows):\n{}",
                a.relation.len(),
                a.relation,
                b.relation.len(),
                b.relation
            );
            if let (Some(sa), Some(sb)) = (&a.plan_stats, &b.plan_stats) {
                prop_assert_eq!(
                    sa.total_eval(),
                    sb.total_eval(),
                    "{}: gated counters drift",
                    context
                );
            }
        }
        (Ok(_), Err(e)) => {
            return Err(TestCaseError::fail(format!(
                "{context}: pooled errored while standalone succeeded: {e}"
            )))
        }
        (Err(e), Ok(_)) => {
            return Err(TestCaseError::fail(format!(
                "{context}: standalone errored while pooled succeeded: {e}"
            )))
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(a.to_string(), b.to_string(), "{}: error drift", context);
        }
    }
    Ok(())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..5).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation(qualifier: &'static str, max_rows: usize) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("k", DataType::Int), ("v", DataType::Int)]);
    proptest::collection::vec((value(), value()), 1..max_rows).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(k, v)| vec![k, v].into_boxed_slice())
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// N ∈ 2..=4 identical clones of a generated subquery, submitted
    /// concurrently through a coalescing pool, for every strategy that
    /// routes through the GMDJ runtime.
    #[test]
    fn concurrent_clones_match_standalone(seed in any::<u64>(), n in 2usize..=4) {
        let case = generate_case(seed, &GenConfig::default());
        let query = gmdj_sql::parse_query(&case.sql)
            .map_err(|e| TestCaseError::fail(format!("generated SQL failed to parse: {e}")))?;
        let catalog = case.catalog();
        let policy = ExecPolicy::parallel(2);
        for strategy in default_strategies().into_iter().filter(|&s| uses_policy(s)) {
            let standalone = run_with_policy(&query, &catalog, strategy, policy);
            let clones: Vec<&QueryExpr> = vec![&query; n];
            for (client, pooled) in pooled_wave(&clones, &catalog, strategy, policy)
                .iter()
                .enumerate()
            {
                assert_matches_standalone(
                    &standalone,
                    pooled,
                    &format!("{} clone {client}/{n} (seed {seed})", strategy.label()),
                )?;
            }
        }
    }

    /// Distinct queries over the same detail table coalesce into one
    /// pass yet demultiplex each client's own answer.
    #[test]
    fn distinct_queries_demultiplex_standalone_answers(
        b in relation("B", 8),
        r in relation("R", 12),
        n in 2usize..=4,
        threshold in 0i64..5,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        // Query i: EXISTS over the shared detail table R with a
        // per-client comparison operator, so every client's GMDJ spec is
        // structurally distinct — no dedup, pure multi-query sharing.
        let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt, CmpOp::Ne];
        let queries: Vec<QueryExpr> = (0..n)
            .map(|i| {
                let sub = QueryExpr::table("R", "RS").select_flat(
                    ScalarExpr::Column(ColumnRef::qualified("RS", "k"))
                        .cmp_with(ops[i], col("B.k"))
                        .and(col("RS.v").ge(lit(threshold))),
                );
                QueryExpr::table("B", "B").select(exists(sub))
            })
            .collect();
        let policy = ExecPolicy::parallel(2);
        for strategy in [EvalStrategy::GmdjBasic, EvalStrategy::GmdjOptimized] {
            let standalone: Vec<Result<RunResult>> = queries
                .iter()
                .map(|q| run_with_policy(q, &catalog, strategy, policy))
                .collect();
            let refs: Vec<&QueryExpr> = queries.iter().collect();
            for (client, pooled) in pooled_wave(&refs, &catalog, strategy, policy)
                .iter()
                .enumerate()
            {
                assert_matches_standalone(
                    &standalone[client],
                    pooled,
                    &format!("{} distinct client {client}/{n}", strategy.label()),
                )?;
            }
        }
    }
}
