//! # gmdj-sql
//!
//! An SQL front end for the nested query algebra: "the nested algebra …
//! directly maps to the subquery constructs of an SQL-like OLAP query
//! language" (Section 2.1). The supported subset is exactly the query
//! class the paper's algorithm covers:
//!
//! ```sql
//! SELECT [DISTINCT] cols | agg(expr) | *
//! FROM table [AS alias] [, table [AS alias] ...]
//! WHERE predicate
//! ```
//!
//! where `predicate` is built from comparisons, arithmetic, `AND`/`OR`/
//! `NOT`, `IS [NOT] NULL`, and the SQL subquery constructs:
//! `EXISTS (…)`, `NOT EXISTS (…)`, `x IN (…)`, `x NOT IN (…)`,
//! `x op ANY/SOME (…)`, `x op ALL (…)`, and scalar `x op (…)` —
//! arbitrarily nested.
//!
//! [`parse_query`] produces a [`gmdj_algebra::ast::QueryExpr`] ready for
//! any evaluation strategy in `gmdj-engine`, including the
//! SubqueryToGMDJ translation.

pub mod lexer;
pub mod lower;
pub mod parser;

pub use lower::parse_query;
pub use parser::{parse_statement, SelectItem, SelectStmt, SqlExpr};
