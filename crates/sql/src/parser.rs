//! Recursive-descent parser for the supported SQL subset.

use gmdj_relation::error::{Error, Result};

use crate::lexer::{tokenize, Token};

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// `(table, alias)` pairs; the alias defaults to the table name.
    pub from: Vec<(String, String)>,
    /// `ON` conditions of explicit `JOIN` syntax (conjoined with WHERE
    /// during lowering — the engine re-derives equi-joins from conjuncts).
    pub join_conditions: Vec<SqlExpr>,
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate (requires GROUP BY).
    pub having: Option<SqlExpr>,
    /// ORDER BY `(expr, ascending)` keys.
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// One entry of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional `AS` alias.
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

/// Quantifier of a quantified comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlQuantifier {
    Any,
    All,
}

/// Aggregate functions in select lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlAggFunc {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

/// SQL expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Number(f64),
    Str(String),
    Null,
    Bool(bool),
    /// Arithmetic: `+ - * /`.
    Arith {
        op: char,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    /// Comparison: `= <> < <= > >=`, possibly against a scalar subquery
    /// operand.
    Cmp {
        op: String,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    /// `EXISTS (SELECT …)` / `NOT EXISTS (…)`.
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `x [NOT] IN (SELECT …)`.
    InSubquery {
        expr: Box<SqlExpr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `x op ANY/SOME/ALL (SELECT …)`.
    QuantCmp {
        left: Box<SqlExpr>,
        op: String,
        quantifier: SqlQuantifier,
        query: Box<SelectStmt>,
    },
    /// `(SELECT …)` as a scalar operand.
    ScalarSubquery(Box<SelectStmt>),
    /// Aggregate call (select lists of subqueries / single-agg queries).
    Agg {
        func: SqlAggFunc,
        arg: Option<Box<SqlExpr>>,
    },
    /// `CASE WHEN p THEN e [...] [ELSE e] END`.
    Case {
        branches: Vec<(SqlExpr, SqlExpr)>,
        otherwise: Option<Box<SqlExpr>>,
    },
}

/// Parse one SELECT statement from SQL text.
pub fn parse_statement(input: &str) -> Result<SelectStmt> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "expected {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek() == t {
            self.next();
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "expected {t}, found {}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(Error::invalid(format!("trailing input at {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(Error::invalid(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Token::Comma) {
            self.next();
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut join_conditions = Vec::new();
        loop {
            if matches!(self.peek(), Token::Comma) {
                self.next();
                from.push(self.table_ref()?);
            } else if matches!(self.peek(), Token::Keyword(k) if k == "JOIN" || k == "INNER") {
                self.eat_keyword("INNER");
                self.expect_keyword("JOIN")?;
                from.push(self.table_ref()?);
                self.expect_keyword("ON")?;
                join_conditions.push(self.expr()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while matches!(self.peek(), Token::Comma) {
                self.next();
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push((e, asc));
                if matches!(self.peek(), Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Token::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return Err(Error::invalid(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            join_conditions,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), Token::Star) {
            self.next();
            return Ok(SelectItem::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // Bare alias after an expression.
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<(String, String)> {
        let table = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            self.ident()?
        } else if let Token::Ident(_) = self.peek() {
            self.ident()?
        } else {
            table.clone()
        };
        Ok((table, alias))
    }

    // Precedence: OR < AND < NOT < predicate < additive < multiplicative
    // < unary < primary.
    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_keyword("NOT") {
            // NOT EXISTS folds directly.
            if matches!(self.peek(), Token::Keyword(k) if k == "EXISTS") {
                self.next();
                let query = self.parenthesized_select()?;
                return Ok(SqlExpr::Exists {
                    query: Box::new(query),
                    negated: true,
                });
            }
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr> {
        if matches!(self.peek(), Token::Keyword(k) if k == "EXISTS") {
            self.next();
            let query = self.parenthesized_select()?;
            return Ok(SqlExpr::Exists {
                query: Box::new(query),
                negated: false,
            });
        }
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (SELECT …)
        let not_in = matches!(self.peek(), Token::Keyword(k) if k == "NOT")
            && matches!(self.peek2(), Token::Keyword(k) if k == "IN");
        if not_in {
            self.next();
        }
        if self.eat_keyword("IN") {
            let query = self.parenthesized_select()?;
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(left),
                query: Box::new(query),
                negated: not_in,
            });
        }
        // BETWEEN a AND b — sugar for two comparisons.
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            let ge = SqlExpr::Cmp {
                op: ">=".into(),
                left: Box::new(left.clone()),
                right: Box::new(lo),
            };
            let le = SqlExpr::Cmp {
                op: "<=".into(),
                left: Box::new(left),
                right: Box::new(hi),
            };
            return Ok(SqlExpr::And(Box::new(ge), Box::new(le)));
        }
        // Comparison, possibly quantified.
        if let Token::Op(op) = self.peek().clone() {
            if matches!(op.as_str(), "=" | "<>" | "<" | "<=" | ">" | ">=") {
                self.next();
                // ANY / SOME / ALL (SELECT …)
                if matches!(self.peek(), Token::Keyword(k) if k == "ANY" || k == "SOME") {
                    self.next();
                    let query = self.parenthesized_select()?;
                    return Ok(SqlExpr::QuantCmp {
                        left: Box::new(left),
                        op,
                        quantifier: SqlQuantifier::Any,
                        query: Box::new(query),
                    });
                }
                if self.eat_keyword("ALL") {
                    let query = self.parenthesized_select()?;
                    return Ok(SqlExpr::QuantCmp {
                        left: Box::new(left),
                        op,
                        quantifier: SqlQuantifier::All,
                        query: Box::new(query),
                    });
                }
                let right = self.additive()?;
                return Ok(SqlExpr::Cmp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                });
            }
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            match self.peek() {
                Token::Op(o) if o == "+" || o == "-" => {
                    let op = o.chars().next().unwrap();
                    self.next();
                    let right = self.multiplicative()?;
                    left = SqlExpr::Arith {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            match self.peek() {
                Token::Star => {
                    self.next();
                    let right = self.unary()?;
                    left = SqlExpr::Arith {
                        op: '*',
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                }
                Token::Op(o) if o == "/" => {
                    self.next();
                    let right = self.unary()?;
                    left = SqlExpr::Arith {
                        op: '/',
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        if matches!(self.peek(), Token::Op(o) if o == "-") {
            self.next();
            let inner = self.unary()?;
            return Ok(SqlExpr::Arith {
                op: '-',
                left: Box::new(SqlExpr::Number(0.0)),
                right: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.next() {
            Token::Number(n) => Ok(SqlExpr::Number(n)),
            Token::Str(s) => Ok(SqlExpr::Str(s)),
            Token::Keyword(k) if k == "NULL" => Ok(SqlExpr::Null),
            Token::Keyword(k) if k == "TRUE" => Ok(SqlExpr::Bool(true)),
            Token::Keyword(k) if k == "FALSE" => Ok(SqlExpr::Bool(false)),
            Token::Keyword(k) if matches!(k.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") => {
                self.expect(&Token::LParen)?;
                if k == "COUNT" && matches!(self.peek(), Token::Star) {
                    self.next();
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::Agg {
                        func: SqlAggFunc::CountStar,
                        arg: None,
                    });
                }
                let count_distinct = k == "COUNT" && self.eat_keyword("DISTINCT");
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                let func = match k.as_str() {
                    "COUNT" if count_distinct => SqlAggFunc::CountDistinct,
                    "COUNT" => SqlAggFunc::Count,
                    "SUM" => SqlAggFunc::Sum,
                    "MIN" => SqlAggFunc::Min,
                    "MAX" => SqlAggFunc::Max,
                    "AVG" => SqlAggFunc::Avg,
                    _ => unreachable!(),
                };
                Ok(SqlExpr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                })
            }
            Token::Keyword(k) if k == "CASE" => {
                let mut branches = Vec::new();
                while self.eat_keyword("WHEN") {
                    let cond = self.expr()?;
                    self.expect_keyword("THEN")?;
                    let then = self.expr()?;
                    branches.push((cond, then));
                }
                if branches.is_empty() {
                    return Err(Error::invalid("CASE needs at least one WHEN branch"));
                }
                let otherwise = if self.eat_keyword("ELSE") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_keyword("END")?;
                Ok(SqlExpr::Case {
                    branches,
                    otherwise,
                })
            }
            Token::LParen => {
                if matches!(self.peek(), Token::Keyword(k) if k == "SELECT") {
                    let stmt = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::ScalarSubquery(Box::new(stmt)));
                }
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(first) => {
                if matches!(self.peek(), Token::Dot) {
                    self.next();
                    let name = self.ident()?;
                    Ok(SqlExpr::Column {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(SqlExpr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => Err(Error::invalid(format!("unexpected token {other}"))),
        }
    }

    fn parenthesized_select(&mut self) -> Result<SelectStmt> {
        self.expect(&Token::LParen)?;
        let stmt = self.select_stmt()?;
        self.expect(&Token::RParen)?;
        Ok(stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_statement("SELECT c.name, c.bal FROM customer c WHERE c.bal > 10").unwrap();
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from, vec![("customer".to_string(), "c".to_string())]);
        assert!(s.where_clause.is_some());
        assert!(!s.distinct);
    }

    #[test]
    fn parses_distinct_star_and_aliases() {
        let s = parse_statement("SELECT DISTINCT * FROM orders AS o, lineitem l").unwrap();
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Star]);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1], ("lineitem".to_string(), "l".to_string()));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let s = parse_statement(
            "SELECT * FROM customer c WHERE EXISTS (SELECT * FROM orders o WHERE o.ck = c.ck) \
             AND NOT EXISTS (SELECT * FROM orders o2 WHERE o2.ck = c.ck AND o2.p > 5)",
        )
        .unwrap();
        let Some(SqlExpr::And(a, b)) = s.where_clause else {
            panic!()
        };
        assert!(matches!(*a, SqlExpr::Exists { negated: false, .. }));
        assert!(matches!(*b, SqlExpr::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_quantified_and_in() {
        let s = parse_statement(
            "SELECT * FROM p WHERE p.x >= ALL (SELECT q.y FROM q) \
             AND p.z IN (SELECT r.w FROM r) AND p.v NOT IN (SELECT t.u FROM t)",
        )
        .unwrap();
        let text = format!("{:?}", s.where_clause);
        assert!(text.contains("QuantCmp"));
        assert!(text.contains("All"));
        assert!(text.contains("InSubquery"));
        assert!(text.contains("negated: true"));
    }

    #[test]
    fn parses_scalar_subquery_comparison() {
        let s = parse_statement(
            "SELECT * FROM c WHERE c.bal < (SELECT AVG(o.total) FROM o WHERE o.ck = c.ck)",
        )
        .unwrap();
        let Some(SqlExpr::Cmp { right, .. }) = s.where_clause else {
            panic!()
        };
        assert!(matches!(*right, SqlExpr::ScalarSubquery(_)));
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let s = parse_statement("SELECT * FROM t WHERE t.a + t.b * 2 > 10").unwrap();
        let Some(SqlExpr::Cmp { left, .. }) = s.where_clause else {
            panic!()
        };
        // a + (b * 2), not (a + b) * 2.
        let SqlExpr::Arith { op: '+', right, .. } = *left else {
            panic!("{left:?}")
        };
        assert!(matches!(*right, SqlExpr::Arith { op: '*', .. }));
    }

    #[test]
    fn parses_between_and_is_null() {
        let s = parse_statement("SELECT * FROM t WHERE t.a BETWEEN 1 AND 5 AND t.b IS NOT NULL")
            .unwrap();
        let text = format!("{:?}", s.where_clause);
        assert!(text.contains(">="));
        assert!(text.contains("<="));
        assert!(text.contains("IsNull"));
    }

    #[test]
    fn rejects_trailing_tokens_and_missing_from() {
        assert!(parse_statement("SELECT * FROM t WHERE 1 = 1 extra garbage (").is_err());
        assert!(parse_statement("SELECT *").is_err());
    }

    #[test]
    fn count_star_parses() {
        let s = parse_statement("SELECT COUNT(*) FROM t").unwrap();
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: SqlExpr::Agg {
                    func: SqlAggFunc::CountStar,
                    ..
                },
                ..
            }
        ));
    }
}
