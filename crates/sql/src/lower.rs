//! Lowering parsed SQL onto the nested query algebra.

use gmdj_algebra::ast::{NestedPredicate, Quantifier, QueryExpr, SubqueryPred};
use gmdj_relation::agg::{AggFunc, NamedAgg};
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{CmpOp, Predicate, ScalarExpr};
use gmdj_relation::schema::ColumnRef;
use gmdj_relation::value::{Truth, Value};

use crate::parser::{parse_statement, SelectItem, SelectStmt, SqlAggFunc, SqlExpr, SqlQuantifier};

/// Parse SQL text and lower it to a nested query expression.
pub fn parse_query(sql: &str) -> Result<QueryExpr> {
    lower_select(&parse_statement(sql)?)
}

/// Lower one SELECT statement.
pub fn lower_select(stmt: &SelectStmt) -> Result<QueryExpr> {
    // FROM: fold into cross joins (selections recover the join
    // conditions; the optimizers re-derive equi-joins from conjuncts).
    let mut from_iter = stmt.from.iter();
    let Some((t0, a0)) = from_iter.next() else {
        return Err(Error::invalid("FROM clause is empty"));
    };
    let mut source = QueryExpr::table(t0, a0);
    for (t, a) in from_iter {
        source = source.join(QueryExpr::table(t, a), Predicate::true_());
    }

    // WHERE (with explicit JOIN ON conditions conjoined in — the FROM is
    // lowered as a cross join and the optimizers re-derive equi-joins).
    let mut predicate: Option<NestedPredicate> = None;
    for on in &stmt.join_conditions {
        let p = lower_pred(on)?;
        predicate = Some(match predicate {
            Some(acc) => acc.and(p),
            None => p,
        });
    }
    if let Some(w) = &stmt.where_clause {
        let p = lower_pred(w)?;
        predicate = Some(match predicate {
            Some(acc) => acc.and(p),
            None => p,
        });
    }
    let with_where = match predicate {
        Some(p) => source.select(p),
        None => source,
    };

    // GROUP BY / aggregate select lists.
    let projected = lower_projection(stmt, with_where)?;

    // ORDER BY (columns or aggregate aliases, which are unqualified
    // computed columns after grouping).
    let mut result = projected;
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|(e, asc)| match e {
                SqlExpr::Column { qualifier, name } => Ok((
                    ColumnRef {
                        qualifier: qualifier.clone(),
                        name: name.clone(),
                    },
                    *asc,
                )),
                other => Err(Error::invalid(format!(
                    "ORDER BY supports column references only, found {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        result = result.order_by(keys);
    }
    if let Some(n) = stmt.limit {
        result = result.limit(n);
    }
    Ok(result)
}

/// Lower the select list (and GROUP BY / HAVING) of a statement over the
/// already-filtered input.
fn lower_projection(stmt: &SelectStmt, input: QueryExpr) -> Result<QueryExpr> {
    // Grouped (or globally aggregated multi-item) queries.
    let has_aggs = stmt.items.iter().any(|i| {
        matches!(
            i,
            SelectItem::Expr {
                expr: SqlExpr::Agg { .. },
                ..
            }
        )
    });
    if !stmt.group_by.is_empty() || (has_aggs && stmt.items.len() > 1) {
        let keys = stmt
            .group_by
            .iter()
            .map(|e| match e {
                SqlExpr::Column { qualifier, name } => Ok(ColumnRef {
                    qualifier: qualifier.clone(),
                    name: name.clone(),
                }),
                other => Err(Error::invalid(format!(
                    "GROUP BY supports column references only, found {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        // The select list must consist of group keys and aggregates.
        let mut aggs = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Expr {
                    expr: SqlExpr::Agg { func, arg },
                    alias,
                } => {
                    let output = alias.clone().unwrap_or_else(|| default_agg_name(*func));
                    aggs.push(lower_agg(*func, arg.as_deref(), output)?);
                }
                SelectItem::Expr {
                    expr: SqlExpr::Column { qualifier, name },
                    ..
                } => {
                    let c = ColumnRef {
                        qualifier: qualifier.clone(),
                        name: name.clone(),
                    };
                    if !keys.contains(&c) {
                        return Err(Error::invalid(format!(
                            "column {c} in the select list must appear in GROUP BY"
                        )));
                    }
                }
                other => {
                    return Err(Error::invalid(format!(
                        "grouped select lists contain group keys and aggregates, found {other:?}"
                    )))
                }
            }
        }
        let mut grouped = input.group_by(keys, aggs);
        if let Some(h) = &stmt.having {
            grouped = grouped.select(lower_pred(h)?);
        }
        return Ok(grouped);
    }
    if stmt.having.is_some() {
        return Err(Error::invalid("HAVING requires GROUP BY in this subset"));
    }

    // Ungrouped select lists.
    if stmt.items.len() == 1 {
        match &stmt.items[0] {
            SelectItem::Star => {
                if stmt.distinct {
                    return Err(Error::invalid("SELECT DISTINCT * is not supported"));
                }
                return Ok(input);
            }
            SelectItem::Expr {
                expr: SqlExpr::Agg { func, arg },
                alias,
            } => {
                let output = alias.clone().unwrap_or_else(|| default_agg_name(*func));
                let agg = lower_agg(*func, arg.as_deref(), output)?;
                return Ok(input.agg_project(agg));
            }
            _ => {}
        }
    }
    // Column projection.
    let mut columns = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        match item {
            SelectItem::Star => return Err(Error::invalid("mixing * with other select items")),
            SelectItem::Expr {
                expr: SqlExpr::Column { qualifier, name },
                alias,
            } => {
                if alias.is_some() {
                    return Err(Error::invalid(
                        "column aliases in select lists are not supported in this subset",
                    ));
                }
                columns.push(ColumnRef {
                    qualifier: qualifier.clone(),
                    name: name.clone(),
                });
            }
            SelectItem::Expr { expr, .. } => {
                return Err(Error::invalid(format!(
                    "unsupported select item {expr:?}: this subset projects columns or a \
                     single aggregate"
                )))
            }
        }
    }
    Ok(if stmt.distinct {
        input.project_distinct(columns)
    } else {
        input.project(columns)
    })
}

fn default_agg_name(func: SqlAggFunc) -> String {
    match func {
        SqlAggFunc::CountStar | SqlAggFunc::Count => "count".into(),
        SqlAggFunc::CountDistinct => "count_distinct".into(),
        SqlAggFunc::Sum => "sum".into(),
        SqlAggFunc::Min => "min".into(),
        SqlAggFunc::Max => "max".into(),
        SqlAggFunc::Avg => "avg".into(),
    }
}

fn lower_agg(func: SqlAggFunc, arg: Option<&SqlExpr>, output: String) -> Result<NamedAgg> {
    let f = match func {
        SqlAggFunc::CountStar => return Ok(NamedAgg::count_star(output)),
        SqlAggFunc::Count => AggFunc::Count,
        SqlAggFunc::CountDistinct => AggFunc::CountDistinct,
        SqlAggFunc::Sum => AggFunc::Sum,
        SqlAggFunc::Min => AggFunc::Min,
        SqlAggFunc::Max => AggFunc::Max,
        SqlAggFunc::Avg => AggFunc::Avg,
    };
    let arg = arg.ok_or_else(|| Error::invalid("aggregate function needs an argument"))?;
    Ok(NamedAgg::new(f, lower_scalar(arg)?, output))
}

fn cmp_op(op: &str) -> Result<CmpOp> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "<>" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => {
            return Err(Error::invalid(format!(
                "unknown comparison operator {other}"
            )))
        }
    })
}

/// Lower a WHERE expression to a nested predicate.
pub fn lower_pred(e: &SqlExpr) -> Result<NestedPredicate> {
    match e {
        SqlExpr::And(a, b) => Ok(lower_pred(a)?.and(lower_pred(b)?)),
        SqlExpr::Or(a, b) => Ok(lower_pred(a)?.or(lower_pred(b)?)),
        SqlExpr::Not(inner) => Ok(lower_pred(inner)?.not()),
        SqlExpr::Bool(b) => Ok(NestedPredicate::Atom(Predicate::Literal(if *b {
            Truth::True
        } else {
            Truth::False
        }))),
        SqlExpr::IsNull { expr, negated } => {
            let scalar = lower_scalar(expr)?;
            Ok(NestedPredicate::Atom(if *negated {
                Predicate::IsNotNull(scalar)
            } else {
                Predicate::IsNull(scalar)
            }))
        }
        SqlExpr::Exists { query, negated } => Ok(NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(lower_select(query)?),
            negated: *negated,
        })),
        SqlExpr::InSubquery {
            expr,
            query,
            negated,
        } => Ok(NestedPredicate::Subquery(SubqueryPred::In {
            left: lower_scalar(expr)?,
            query: Box::new(lower_select(query)?),
            negated: *negated,
        })),
        SqlExpr::QuantCmp {
            left,
            op,
            quantifier,
            query,
        } => Ok(NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: lower_scalar(left)?,
            op: cmp_op(op)?,
            quantifier: match quantifier {
                SqlQuantifier::Any => Quantifier::Some,
                SqlQuantifier::All => Quantifier::All,
            },
            query: Box::new(lower_select(query)?),
        })),
        SqlExpr::Cmp { op, left, right } => {
            let op = cmp_op(op)?;
            match (left.as_ref(), right.as_ref()) {
                (SqlExpr::ScalarSubquery(_), SqlExpr::ScalarSubquery(_)) => Err(Error::invalid(
                    "comparisons between two subqueries are not supported",
                )),
                (l, SqlExpr::ScalarSubquery(q)) => {
                    Ok(NestedPredicate::Subquery(SubqueryPred::Cmp {
                        left: lower_scalar(l)?,
                        op,
                        query: Box::new(lower_select(q)?),
                    }))
                }
                (SqlExpr::ScalarSubquery(q), r) => {
                    // `(SELECT …) op x  ≡  x flip(op) (SELECT …)`.
                    Ok(NestedPredicate::Subquery(SubqueryPred::Cmp {
                        left: lower_scalar(r)?,
                        op: op.flip(),
                        query: Box::new(lower_select(q)?),
                    }))
                }
                (l, r) => Ok(NestedPredicate::Atom(Predicate::Cmp {
                    op,
                    left: lower_scalar(l)?,
                    right: lower_scalar(r)?,
                })),
            }
        }
        other => Err(Error::invalid(format!(
            "expected a predicate, found {other:?}"
        ))),
    }
}

/// Lower a scalar expression.
pub fn lower_scalar(e: &SqlExpr) -> Result<ScalarExpr> {
    match e {
        SqlExpr::Column { qualifier, name } => Ok(ScalarExpr::Column(ColumnRef {
            qualifier: qualifier.clone(),
            name: name.clone(),
        })),
        SqlExpr::Number(n) => Ok(ScalarExpr::Literal(number_value(*n))),
        SqlExpr::Str(s) => Ok(ScalarExpr::Literal(Value::str(s))),
        SqlExpr::Null => Ok(ScalarExpr::Literal(Value::Null)),
        SqlExpr::Bool(b) => Ok(ScalarExpr::Literal(Value::Bool(*b))),
        SqlExpr::Arith { op, left, right } => {
            let l = lower_scalar(left)?;
            let r = lower_scalar(right)?;
            Ok(match op {
                '+' => l.add(r),
                '-' => l.sub(r),
                '*' => l.mul(r),
                '/' => l.div(r),
                other => return Err(Error::invalid(format!("unknown arithmetic op {other}"))),
            })
        }
        SqlExpr::Case {
            branches,
            otherwise,
        } => {
            let lowered: Vec<(Predicate, ScalarExpr)> = branches
                .iter()
                .map(|(w, t)| {
                    let pred = lower_pred(w)?.to_flat().ok_or_else(|| {
                        Error::invalid("subqueries inside CASE conditions are not supported")
                    })?;
                    Ok((pred, lower_scalar(t)?))
                })
                .collect::<Result<_>>()?;
            Ok(ScalarExpr::Case {
                branches: lowered,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(lower_scalar(e)?)),
                    None => None,
                },
            })
        }
        SqlExpr::ScalarSubquery(_) => Err(Error::invalid(
            "scalar subqueries may only appear as a comparison operand",
        )),
        SqlExpr::Agg { .. } => Err(Error::invalid(
            "aggregate functions may only appear in select lists",
        )),
        other => Err(Error::invalid(format!(
            "expected a scalar expression, found {other:?}"
        ))),
    }
}

/// Integral literals stay `Int` so grouping and key equality behave like
/// SQL integers; everything else is `Float`.
fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_engine::strategy::{run_all_agree, Strategy};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("customer")
            .column("custkey", DataType::Int)
            .column("acctbal", DataType::Int)
            .row(vec![1.into(), 100.into()])
            .row(vec![2.into(), 200.into()])
            .row(vec![3.into(), 300.into()])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("orders")
            .column("custkey", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 50.into()])
            .row(vec![1.into(), 150.into()])
            .row(vec![3.into(), 400.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("customer", customers)
            .with("orders", orders)
    }

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy::NaiveNestedLoop,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ]
    }

    #[test]
    fn exists_query_round_trips() {
        let q = parse_query(
            "SELECT * FROM customer c WHERE EXISTS \
             (SELECT * FROM orders o WHERE o.custkey = c.custkey AND o.total > 100)",
        )
        .unwrap();
        let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
        assert_eq!(results[0].1.relation.len(), 2);
    }

    #[test]
    fn not_in_round_trips() {
        let q = parse_query(
            "SELECT c.custkey FROM customer c WHERE c.custkey NOT IN \
             (SELECT o.custkey FROM orders o)",
        )
        .unwrap();
        let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
        assert_eq!(results[0].1.relation.len(), 1);
    }

    #[test]
    fn quantified_all_round_trips() {
        let q = parse_query(
            "SELECT * FROM customer c WHERE c.acctbal >= ALL \
             (SELECT o.total FROM orders o WHERE o.custkey <> c.custkey)",
        )
        .unwrap();
        let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
        // Customer 2: others' orders are 50,150,400 → 200 fails; customer
        // 3: others' are 50,150 → 300 passes; customer 1: other is 400 →
        // fails.
        assert_eq!(results[0].1.relation.len(), 1);
    }

    #[test]
    fn scalar_aggregate_comparison_round_trips() {
        let q = parse_query(
            "SELECT c.custkey FROM customer c WHERE c.acctbal > \
             (SELECT SUM(o.total) FROM orders o WHERE o.custkey = c.custkey)",
        )
        .unwrap();
        let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
        // c1: 100 > 200? no. c2: 100 > NULL → unknown. c3: 300 > 400? no.
        assert_eq!(results[0].1.relation.len(), 0);
    }

    #[test]
    fn reversed_scalar_comparison_flips() {
        let q = parse_query(
            "SELECT c.custkey FROM customer c WHERE \
             (SELECT SUM(o.total) FROM orders o WHERE o.custkey = c.custkey) < c.acctbal",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT c.custkey FROM customer c WHERE c.acctbal > \
             (SELECT SUM(o.total) FROM orders o WHERE o.custkey = c.custkey)",
        )
        .unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn distinct_projection_lowered() {
        let q = parse_query("SELECT DISTINCT o.custkey FROM orders o").unwrap();
        assert!(matches!(q, QueryExpr::Project { distinct: true, .. }));
    }

    #[test]
    fn multi_table_from_becomes_join() {
        let q =
            parse_query("SELECT c.custkey FROM customer c, orders o WHERE c.custkey = o.custkey")
                .unwrap();
        let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
        assert_eq!(results[0].1.relation.len(), 3);
    }

    #[test]
    fn unsupported_shapes_error_cleanly() {
        assert!(parse_query("SELECT c.a + 1 FROM c").is_err());
        assert!(parse_query("SELECT DISTINCT * FROM c").is_err());
        assert!(parse_query(
            "SELECT * FROM c WHERE (SELECT MAX(a.x) FROM a) = (SELECT MIN(b.y) FROM b)"
        )
        .is_err());
    }

    #[test]
    fn group_by_having_order_limit_round_trips() {
        let q = parse_query(
            "SELECT o.custkey, COUNT(*) AS n, SUM(o.total) AS s \
             FROM orders o GROUP BY o.custkey HAVING n > 1 \
             ORDER BY s DESC LIMIT 1",
        )
        .unwrap();
        // Shape: Limit(OrderBy(Select(GroupBy(...)))).
        let QueryExpr::Limit { input, n } = &q else {
            panic!("{q}")
        };
        assert_eq!(*n, 1);
        let QueryExpr::OrderBy { input, keys } = input.as_ref() else {
            panic!("{q}")
        };
        assert!(!keys[0].1, "DESC");
        assert!(matches!(input.as_ref(), QueryExpr::Select { .. }));
        // Executes identically across strategies; customer 1 has two
        // orders summing 200.
        for strat in strategies() {
            let r = gmdj_engine::strategy::run(&q, &catalog(), strat).unwrap();
            assert_eq!(r.relation.len(), 1, "{strat:?}");
            let row = &r.relation.rows()[0];
            assert_eq!(row[0], Value::Int(1));
            assert_eq!(row[1], Value::Int(2));
            assert_eq!(row[2], Value::Int(200));
        }
    }

    #[test]
    fn global_multi_aggregate_select_list() {
        let q = parse_query("SELECT COUNT(*) AS n, MAX(o.total) AS m FROM orders o").unwrap();
        let r = gmdj_engine::strategy::run(
            &q,
            &catalog(),
            gmdj_engine::strategy::Strategy::GmdjOptimized,
        )
        .unwrap();
        assert_eq!(r.relation.rows()[0][0], Value::Int(3));
        assert_eq!(r.relation.rows()[0][1], Value::Int(400));
    }

    #[test]
    fn group_by_with_subquery_in_where() {
        // Per-customer order counts, but only for customers that exist in
        // the customer table with a positive balance.
        let q = parse_query(
            "SELECT o.custkey, COUNT(*) AS n FROM orders o \
             WHERE EXISTS (SELECT * FROM customer c \
                           WHERE c.custkey = o.custkey AND c.acctbal > 0) \
             GROUP BY o.custkey ORDER BY o.custkey",
        )
        .unwrap();
        let mut previous: Option<gmdj_relation::relation::Relation> = None;
        for strat in strategies() {
            let r = gmdj_engine::strategy::run(&q, &catalog(), strat).unwrap();
            assert_eq!(r.relation.len(), 2, "{strat:?}");
            if let Some(p) = &previous {
                assert!(p.multiset_eq(&r.relation));
            }
            previous = Some(r.relation);
        }
    }

    #[test]
    fn explicit_join_on_equals_comma_join() {
        let explicit = parse_query(
            "SELECT c.custkey FROM customer c JOIN orders o ON o.custkey = c.custkey \
             WHERE o.total > 100",
        )
        .unwrap();
        let comma = parse_query(
            "SELECT c.custkey FROM customer c, orders o \
             WHERE o.custkey = c.custkey AND o.total > 100",
        )
        .unwrap();
        for strat in strategies() {
            let a = gmdj_engine::strategy::run(&explicit, &catalog(), strat).unwrap();
            let b = gmdj_engine::strategy::run(&comma, &catalog(), strat).unwrap();
            assert!(a.relation.multiset_eq(&b.relation), "{strat:?}");
            assert_eq!(a.relation.len(), 2); // orders 150 and 400
        }
    }

    #[test]
    fn join_on_with_subquery_in_where() {
        let q = parse_query(
            "SELECT c.custkey FROM customer c INNER JOIN orders o ON o.custkey = c.custkey \
             WHERE NOT EXISTS (SELECT * FROM orders o2 \
                               WHERE o2.custkey = c.custkey AND o2.total > o.total)",
        )
        .unwrap();
        // For each customer keep only join rows with their maximal order.
        let results = gmdj_engine::strategy::run_all_agree(&q, &catalog(), &strategies()).unwrap();
        assert_eq!(results[0].1.relation.len(), 2); // one max per customer with orders
    }

    #[test]
    fn conditional_aggregation_via_case() {
        // The paper (Section 5) mentions CASE-based conditional
        // aggregation as the SQL-only alternative to the GMDJ; the front
        // end supports it for comparison.
        let q = parse_query(
            "SELECT o.custkey, SUM(CASE WHEN o.total > 100 THEN 1 ELSE 0 END) AS big \
             FROM orders o GROUP BY o.custkey ORDER BY o.custkey",
        )
        .unwrap();
        let r = gmdj_engine::strategy::run(
            &q,
            &catalog(),
            gmdj_engine::strategy::Strategy::GmdjOptimized,
        )
        .unwrap();
        let rows = r.relation.sorted_rows();
        // Customer 1: totals 50, 150 → one big; customer 3: 400 → one.
        assert_eq!(rows[0][1], Value::Int(1));
        assert_eq!(rows[1][1], Value::Int(1));
    }

    #[test]
    fn count_distinct_round_trips() {
        // Distinct customers with orders: custkeys {1, 3} → 2.
        let q = parse_query("SELECT COUNT(DISTINCT o.custkey) AS n FROM orders o").unwrap();
        for strat in strategies() {
            let r = gmdj_engine::strategy::run(&q, &catalog(), strat).unwrap();
            assert_eq!(r.relation.rows()[0][0], Value::Int(2), "{strat:?}");
        }
    }

    #[test]
    fn case_without_else_defaults_to_null() {
        let q = parse_query(
            "SELECT COUNT(CASE WHEN o.total > 100 THEN o.total END) AS n FROM orders o",
        )
        .unwrap();
        let r = gmdj_engine::strategy::run(
            &q,
            &catalog(),
            gmdj_engine::strategy::Strategy::NaiveNestedLoop,
        )
        .unwrap();
        // COUNT skips the NULLs from non-matching rows: 150 and 400.
        assert_eq!(r.relation.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn having_without_group_by_rejected() {
        assert!(parse_query("SELECT * FROM t HAVING 1 = 1").is_err());
    }

    #[test]
    fn numbers_lower_to_ints_when_integral() {
        let q = parse_query("SELECT * FROM c WHERE c.x = 5").unwrap();
        let text = format!("{q}");
        assert!(text.contains("c.x = 5"), "{text}");
    }
}
