//! SQL tokenizer.

use std::fmt;

use gmdj_relation::error::{Error, Result};

/// A lexical token. Keywords are uppercased identifiers matched against a
/// fixed list; identifiers preserve their original case.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (SELECT, FROM, WHERE, …), stored uppercase.
    Keyword(String),
    /// Identifier (table, column, alias).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+ - /` and comparison symbols.
    Op(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Op(o) => write!(f, "{o}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "AS", "AND", "OR", "NOT", "EXISTS", "IN", "ANY", "SOME",
    "ALL", "IS", "NULL", "TRUE", "FALSE", "COUNT", "SUM", "MIN", "MAX", "AVG", "BETWEEN", "CASE",
    "WHEN", "THEN", "ELSE", "END", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "JOIN", "INNER", "ON",
];

/// Tokenize an SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' | '-' | '/' | '=' => {
                out.push(Token::Op(c.to_string()));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && (bytes[i + 1] == b'=' || bytes[i + 1] == b'>') {
                    out.push(Token::Op(format!("<{}", bytes[i + 1] as char)));
                    i += 2;
                } else {
                    out.push(Token::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Op("<>".into()));
                    i += 2;
                } else {
                    return Err(Error::invalid(format!("unexpected character `!` at {i}")));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(Error::invalid("unterminated string literal"));
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote.
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '"' => {
                // Double-quoted identifier.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::invalid("unterminated quoted identifier"));
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    // Don't swallow a dot that isn't followed by a digit
                    // (qualified names never start with a digit, but be
                    // strict anyway).
                    if bytes[j] == b'.'
                        && !(j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_digit())
                    {
                        break;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                let n: f64 = text
                    .parse()
                    .map_err(|_| Error::invalid(format!("bad number literal `{text}`")))?;
                out.push(Token::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[start..j];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
                i = j;
            }
            other => {
                return Err(Error::invalid(format!(
                    "unexpected character `{other}` at {i}"
                )))
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks =
            tokenize("SELECT c.name FROM customer AS c WHERE c.bal >= 10.5 AND c.x <> 'a''b'")
                .unwrap();
        assert!(toks.contains(&Token::Keyword("SELECT".into())));
        assert!(toks.contains(&Token::Ident("customer".into())));
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Number(10.5)));
        assert!(toks.contains(&Token::Str("a'b".into())));
        assert!(toks.contains(&Token::Op("<>".into())));
        assert_eq!(toks.last(), Some(&Token::Eof));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select Select SELECT").unwrap();
        assert_eq!(
            toks[..3],
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("SELECT".into()),
                Token::Keyword("SELECT".into())
            ][..]
        );
    }

    #[test]
    fn dotted_names_and_numbers_disambiguate() {
        let toks = tokenize("t.a 1.5 2.x").unwrap();
        assert_eq!(toks[0], Token::Ident("t".into()));
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[2], Token::Ident("a".into()));
        assert_eq!(toks[3], Token::Number(1.5));
        assert_eq!(toks[4], Token::Number(2.0));
        assert_eq!(toks[5], Token::Dot);
    }

    #[test]
    fn bang_equals_normalizes() {
        let toks = tokenize("a != b").unwrap();
        assert_eq!(toks[1], Token::Op("<>".into()));
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select ;").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
