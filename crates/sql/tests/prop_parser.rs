//! Parser robustness: arbitrary input must never panic — only `Ok` or a
//! clean `Err` — and structurally valid generated SQL must parse.

use proptest::prelude::*;

use gmdj_sql::{parse_query, parse_statement};

/// Random text over an SQL-flavoured alphabet (keywords, idents, symbols,
/// numbers, strings — plus junk).
fn sql_soup() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("SELECT".to_string()),
        Just("FROM".to_string()),
        Just("WHERE".to_string()),
        Just("EXISTS".to_string()),
        Just("NOT".to_string()),
        Just("IN".to_string()),
        Just("ALL".to_string()),
        Just("AND".to_string()),
        Just("OR".to_string()),
        Just("GROUP".to_string()),
        Just("BY".to_string()),
        Just("ORDER".to_string()),
        Just("LIMIT".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(",".to_string()),
        Just("*".to_string()),
        Just("=".to_string()),
        Just("<>".to_string()),
        Just("<=".to_string()),
        Just("'str'".to_string()),
        Just("t.a".to_string()),
        Just("tbl".to_string()),
        "[a-z]{1,6}".prop_map(|s| s),
        (0i64..1000).prop_map(|n| n.to_string()),
        (0u32..100, 0u32..100).prop_map(|(a, b)| format!("{a}.{b}")),
    ];
    proptest::collection::vec(token, 0..25).prop_map(|v| v.join(" "))
}

/// Structurally valid SELECTs assembled from templates.
fn valid_sql() -> impl Strategy<Value = String> {
    let cols = prop_oneof![
        Just("*".to_string()),
        Just("t.a".to_string()),
        Just("t.a, t.b".to_string()),
        Just("COUNT(*) AS n".to_string()),
    ];
    let op = prop_oneof![Just("="), Just("<>"), Just("<"), Just(">="),];
    let pred = (op, 0i64..100, proptest::bool::ANY).prop_map(|(op, k, neg)| {
        let base = format!("t.a {op} {k}");
        if neg {
            format!("NOT ({base})")
        } else {
            base
        }
    });
    let sub = prop_oneof![
        Just("EXISTS (SELECT * FROM s WHERE s.x = t.a)".to_string()),
        Just("t.a IN (SELECT s.x FROM s)".to_string()),
        Just("t.a >= ALL (SELECT s.x FROM s WHERE s.y <> t.b)".to_string()),
        Just("t.b < (SELECT MAX(s.x) FROM s WHERE s.y = t.a)".to_string()),
    ];
    (cols, pred, sub, proptest::bool::ANY, 0usize..50).prop_map(
        |(cols, pred, sub, order, limit)| {
            let grouped = cols.starts_with("COUNT");
            let mut sql = format!("SELECT {cols} FROM t WHERE {pred} AND {sub}");
            if order && !grouped {
                sql.push_str(" ORDER BY t.a DESC");
            }
            if limit > 0 && !grouped {
                sql.push_str(&format!(" LIMIT {limit}"));
            }
            sql
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// No input crashes the lexer, parser, or lowering.
    #[test]
    fn parser_never_panics(input in sql_soup()) {
        let _ = parse_statement(&input);
        let _ = parse_query(&input);
    }

    /// Structurally valid SQL always parses and lowers.
    #[test]
    fn valid_sql_parses_and_lowers(sql in valid_sql()) {
        let stmt = parse_statement(&sql);
        prop_assert!(stmt.is_ok(), "parse failed for `{sql}`: {stmt:?}");
        let lowered = parse_query(&sql);
        prop_assert!(lowered.is_ok(), "lowering failed for `{sql}`: {lowered:?}");
        // The lowered query mentions a subquery.
        prop_assert!(lowered.unwrap().subquery_count() >= 1);
    }
}
