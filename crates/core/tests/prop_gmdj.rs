//! Property tests for the GMDJ evaluator and optimizer: every evaluation
//! strategy variant (probe plans, partitioning, coalescing, completion)
//! computes the same relation.

use proptest::prelude::*;

use gmdj_core::completion::derive_completion;
use gmdj_core::distributed::NetworkStats;
use gmdj_core::eval::{eval_gmdj, eval_gmdj_filtered, EvalStats, GmdjOptions, Keep, ProbeStrategy};
use gmdj_core::exec::{execute, ExecContext, MemoryCatalog};
use gmdj_core::optimize::{optimize_with, OptFlags};
use gmdj_core::plan::GmdjExpr;
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats, Runtime};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_core::trace::CollectingSink;
use gmdj_relation::agg::{AggFunc, NamedAgg};
use gmdj_relation::expr::{col, lit, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::Value;
use std::sync::Arc;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..5).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation(qualifier: &'static str, max_rows: usize) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("k", DataType::Int), ("v", DataType::Int)]);
    proptest::collection::vec((value(), value()), 0..max_rows).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(k, v)| vec![k, v].into_boxed_slice())
                .collect(),
        )
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// θ conditions of the shapes the translation produces: correlation
/// equality, inequality correlation, band-ish comparisons, local filters.
fn theta() -> impl Strategy<Value = Predicate> {
    let conjunct = prop_oneof![
        2 => Just(col("B.k").eq(col("R.k"))),
        1 => (cmp_op()).prop_map(|op| {
            ScalarExpr::Column(ColumnRef::qualified("B", "k")).cmp_with(op, col("R.k"))
        }),
        1 => (cmp_op(), 0i64..5).prop_map(|(op, c)| {
            ScalarExpr::Column(ColumnRef::qualified("R", "v")).cmp_with(op, lit(c))
        }),
        1 => Just(col("R.v").ge(col("B.k")).and(col("R.v").lt(col("B.v")))),
        1 => Just(Predicate::true_()),
    ];
    proptest::collection::vec(conjunct, 1..3).prop_map(Predicate::conjoin)
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::CountStar),
        Just(AggFunc::Count),
        Just(AggFunc::CountDistinct),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Avg),
    ]
}

fn spec() -> impl Strategy<Value = GmdjSpec> {
    proptest::collection::vec((theta(), agg_func()), 1..4).prop_map(|blocks| {
        GmdjSpec::new(
            blocks
                .into_iter()
                .enumerate()
                .map(|(i, (t, f))| {
                    let agg = if f == AggFunc::CountStar {
                        NamedAgg::count_star(format!("a{i}"))
                    } else {
                        NamedAgg::new(f, col("R.v"), format!("a{i}"))
                    };
                    AggBlock::new(t, vec![agg])
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Probe plans are an optimization, never a semantics change: Auto
    /// (hash/interval/scan) equals ForceScan.
    #[test]
    fn probe_plans_are_semantics_preserving(
        b in relation("B", 10),
        r in relation("R", 14),
        s in spec(),
    ) {
        let mut st1 = EvalStats::default();
        let mut st2 = EvalStats::default();
        let auto = eval_gmdj(&b, &r, &s, &GmdjOptions::default(), &mut st1).unwrap();
        let scan = eval_gmdj(
            &b,
            &r,
            &s,
            &GmdjOptions { probe: ProbeStrategy::ForceScan, ..GmdjOptions::default() },
            &mut st2,
        )
        .unwrap();
        prop_assert!(auto.multiset_eq(&scan));
    }

    /// Memory-partitioned evaluation (k base tuples per detail scan)
    /// equals the single-scan evaluation for every partition size.
    #[test]
    fn partitioning_is_semantics_preserving(
        b in relation("B", 12),
        r in relation("R", 12),
        s in spec(),
        partition in 1usize..6,
    ) {
        let mut st1 = EvalStats::default();
        let mut st2 = EvalStats::default();
        let single = eval_gmdj(&b, &r, &s, &GmdjOptions::default(), &mut st1).unwrap();
        let parts = eval_gmdj(
            &b,
            &r,
            &s,
            &GmdjOptions { partition_rows: Some(partition), ..GmdjOptions::default() },
            &mut st2,
        )
        .unwrap();
        prop_assert!(single.multiset_eq(&parts));
        // The partitioned run scans the detail once per partition.
        let expected_partitions = if b.is_empty() { 1 } else { b.len().div_ceil(partition) };
        prop_assert_eq!(st2.partitions as usize, expected_partitions);
        prop_assert_eq!(st2.detail_scanned as usize, expected_partitions * r.len());
    }

    /// Section 6: range-partitioned parallel evaluation over the detail
    /// relation equals the sequential single scan for any worker count.
    #[test]
    fn parallel_is_semantics_preserving(
        b in relation("B", 10),
        r in relation("R", 16),
        s in spec(),
        threads in 1usize..5,
    ) {
        let mut st1 = EvalStats::default();
        let mut node = PlanNodeStats::new("GMDJ");
        let sequential = eval_gmdj(&b, &r, &s, &GmdjOptions::default(), &mut st1).unwrap();
        let parallel = Runtime::new(ExecPolicy::parallel(threads))
            .eval_gmdj(&b, &r, &s, &mut node)
            .unwrap();
        prop_assert!(sequential.multiset_eq(&parallel));
        prop_assert_eq!(node.eval.detail_scanned, r.len() as u64);
        prop_assert_eq!(node.network, NetworkStats::default());
    }

    /// The tentpole identity: the *filtered* GMDJ — selection, keep
    /// projection, optional completion plan, NULL-bearing aggregates,
    /// empty relations — is bit-identical under sequential and parallel
    /// execution for every thread count, with and without base
    /// partitioning.
    #[test]
    fn filtered_parallel_matches_sequential(
        b in relation("B", 10),
        r in relation("R", 16),
        t1 in theta(),
        t2 in theta(),
        f in agg_func(),
        sel_kind in 0usize..4,
        keep_base in proptest::bool::ANY,
        partition in proptest::option::of(1usize..5),
    ) {
        let extra = if f == AggFunc::CountStar {
            NamedAgg::count_star("x")
        } else {
            NamedAgg::new(f, col("R.v"), "x")
        };
        let s = GmdjSpec::new(vec![
            AggBlock::count(t1.clone(), "c1"),
            AggBlock::new(t1.and(t2), vec![NamedAgg::count_star("c2"), extra]),
        ]);
        let sel = match sel_kind {
            0 => col("c1").gt(lit(0)),
            1 => col("c1").eq(lit(0)),
            2 => col("c1").gt(lit(0)).and(col("c2").eq(lit(0))),
            _ => col("c2").eq(col("c1")),
        };
        let keep = if keep_base { Keep::BaseOnly } else { Keep::All };
        let plan = if keep_base { derive_completion(&sel, &s, true) } else { None };
        let opts = GmdjOptions { partition_rows: partition, ..GmdjOptions::default() };
        let mut st1 = EvalStats::default();
        let sequential = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), keep, plan.as_ref(), &opts, &mut st1,
        )
        .unwrap();
        for threads in [1usize, 2, 3, 8] {
            let policy = ExecPolicy::parallel(threads).with_partition_rows(partition);
            let sink = Arc::new(CollectingSink::new());
            let mut node = PlanNodeStats::new("GMDJ");
            let parallel = Runtime::with_sink(policy, sink.clone())
                .eval(&b, &r, &s, Some(&sel), keep, plan.as_ref(), &mut node)
                .unwrap();
            prop_assert!(sequential.multiset_eq(&parallel), "threads={threads}");
            let st2 = node.eval;
            // Partition/scan bookkeeping matches the sequential meaning.
            prop_assert_eq!(st2.partitions, st1.partitions);
            prop_assert_eq!(st2.base_rows, st1.base_rows);
            prop_assert_eq!(
                st2.detail_scanned as usize,
                st2.partitions as usize * r.len()
            );
            // The completion plan (if any) is recorded as skipped.
            prop_assert_eq!(st2.completion_fallbacks, u64::from(plan.is_some()));
            // Observability invariant: the per-worker counter deltas in
            // the `gmdj.worker` trace spans sum exactly to the rolled-up
            // node counters — the scan work all happens in workers.
            for (field, total) in [
                ("detail_scanned", st2.detail_scanned),
                ("probe_candidates", st2.probe_candidates),
                ("theta_evals", st2.theta_evals),
                ("agg_updates", st2.agg_updates),
            ] {
                prop_assert_eq!(
                    sink.sum_field("gmdj.worker", field),
                    total,
                    "threads={} field={}",
                    threads,
                    field
                );
            }
            // Every partition emitted a span, and partition deltas also
            // reconcile with the roll-up.
            let partitions = sink.by_name("gmdj.partition");
            prop_assert_eq!(partitions.len() as u64, st2.partitions);
            prop_assert_eq!(
                sink.sum_field("gmdj.partition", "base_rows"),
                st2.base_rows
            );
        }
    }

    /// The distributed runtime (accumulator-state shipping) equals
    /// sequential for every aggregate — including AVG and COUNT DISTINCT,
    /// which the standalone value-shipping coordinator must reject.
    #[test]
    fn distributed_runtime_is_semantics_preserving(
        b in relation("B", 10),
        r in relation("R", 16),
        s in spec(),
        sites in 1usize..5,
    ) {
        let mut st1 = EvalStats::default();
        let mut node = PlanNodeStats::new("GMDJ");
        let sequential = eval_gmdj(&b, &r, &s, &GmdjOptions::default(), &mut st1).unwrap();
        let distributed = Runtime::new(ExecPolicy::distributed(sites))
            .eval_gmdj(&b, &r, &s, &mut node)
            .unwrap();
        prop_assert!(sequential.multiset_eq(&distributed));
        // Two message waves; traffic independent of the detail size.
        prop_assert_eq!(node.network.messages, 2 * sites as u64);
        prop_assert_eq!(
            node.network.total() as usize,
            sites * b.len() * 2 + sites * b.len() * s.agg_count()
        );
        prop_assert_eq!(node.eval.detail_scanned, r.len() as u64);
    }

    /// The vectorized detail-scan kernels are counter-exact with the row
    /// path under every execution policy: identical output multisets AND
    /// identical semantic counters, for sequential, parallel, and
    /// distributed execution, with and without base partitioning.
    #[test]
    fn vectorized_is_counter_exact_under_every_policy(
        b in relation("B", 10),
        r in relation("R", 16),
        s in spec(),
        probe_scan in proptest::bool::ANY,
        partition in proptest::option::of(1usize..5),
    ) {
        let probe = if probe_scan { ProbeStrategy::ForceScan } else { ProbeStrategy::Auto };
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy::parallel(3),
            ExecPolicy::distributed(2),
        ] {
            let policy = policy.with_probe(probe).with_partition_rows(partition);
            let mut on_node = PlanNodeStats::new("GMDJ");
            let mut off_node = PlanNodeStats::new("GMDJ");
            let on = Runtime::new(policy.with_vectorized(true))
                .eval_gmdj(&b, &r, &s, &mut on_node)
                .unwrap();
            let off = Runtime::new(policy.with_vectorized(false))
                .eval_gmdj(&b, &r, &s, &mut off_node)
                .unwrap();
            prop_assert!(on.multiset_eq(&off), "policy={policy:?}");
            prop_assert_eq!(on_node.eval, off_node.eval, "policy={:?}", policy);
            // The row path never touches the kernel layer; the vectorized
            // path decodes every non-empty detail chunk it scans.
            prop_assert_eq!(off_node.kernel.batches, 0);
            if !r.is_empty() {
                prop_assert!(on_node.kernel.batches > 0, "policy={policy:?}");
            }
        }
    }

    /// Morsel size is pure scheduling: for any size — one row, a prime,
    /// a fraction of a column chunk, the whole relation at once — the
    /// parallel scan produces the identical result multiset and identical
    /// gated EvalStats, page accounting included. Only the (ungated)
    /// kernel telemetry may differ, and even that deterministically:
    /// every morsel is pulled exactly once.
    #[test]
    fn morsel_size_never_changes_gated_counters(
        b in relation("B", 10),
        r in relation("R", 16),
        s in spec(),
        partition in proptest::option::of(1usize..5),
    ) {
        let base_policy = ExecPolicy::parallel(3).with_partition_rows(partition);
        let mut ref_node = PlanNodeStats::new("GMDJ");
        let reference = Runtime::new(base_policy)
            .eval_gmdj(&b, &r, &s, &mut ref_node)
            .unwrap();
        for morsel in [1usize, 7, 64, usize::MAX] {
            let mut node = PlanNodeStats::new("GMDJ");
            let got = Runtime::new(base_policy.with_morsel_size(Some(morsel)))
                .eval_gmdj(&b, &r, &s, &mut node)
                .unwrap();
            prop_assert!(reference.multiset_eq(&got), "morsel={morsel}");
            prop_assert_eq!(node.eval, ref_node.eval, "morsel={}", morsel);
            // Physical telemetry is still run-to-run deterministic: the
            // queue hands out each morsel exactly once, so single-row
            // morsels mean one morsel per scanned detail row.
            if morsel == 1 && !r.is_empty() {
                prop_assert_eq!(
                    node.kernel.morsels,
                    node.eval.partitions * r.len() as u64
                );
            }
        }
    }

    /// Proposition 4.1: a chain of GMDJs over the same detail table equals
    /// the single coalesced GMDJ.
    #[test]
    fn coalescing_is_semantics_preserving(
        b in relation("B", 10),
        r in relation("R", 12),
        s1 in spec(),
        s2 in spec(),
    ) {
        // Rename the outputs of s2 to avoid collisions.
        let s2 = GmdjSpec::new(
            s2.blocks
                .iter()
                .enumerate()
                .map(|(i, blk)| AggBlock::new(
                    blk.theta.clone(),
                    blk.aggs
                        .iter()
                        .map(|a| NamedAgg { func: a.func, input: a.input.clone(), output: format!("z{i}") })
                        .collect(),
                ))
                .collect(),
        );
        let mut st = EvalStats::default();
        let opts = GmdjOptions::default();
        // Chained.
        let step1 = eval_gmdj(&b, &r, &s1, &opts, &mut st).unwrap();
        let chained = eval_gmdj(&step1, &r, &s2, &opts, &mut st).unwrap();
        // Coalesced.
        let merged = s1.extended_with(&s2);
        let coalesced = eval_gmdj(&b, &r, &merged, &opts, &mut st).unwrap();
        prop_assert!(chained.multiset_eq(&coalesced));
    }

    /// Base-tuple completion never changes the answer of a filtered GMDJ
    /// — for the count-selection shapes the translation produces.
    #[test]
    fn completion_is_semantics_preserving(
        b in relation("B", 10),
        r in relation("R", 14),
        t1 in theta(),
        t2 in theta(),
        sel_kind in 0usize..4,
    ) {
        let s = GmdjSpec::new(vec![
            AggBlock::count(t1.clone(), "c1"),
            AggBlock::count(t1.and(t2), "c2"),
        ]);
        // Count-selection shapes: exists / not-exists / conjunction / ALL
        // pair (c2's range ⊆ c1's range by construction).
        let sel = match sel_kind {
            0 => col("c1").gt(lit(0)),
            1 => col("c1").eq(lit(0)),
            2 => col("c1").gt(lit(0)).and(col("c2").eq(lit(0))),
            _ => col("c2").eq(col("c1")),
        };
        let plan = derive_completion(&sel, &s, true);
        let opts = GmdjOptions::default();
        let mut st1 = EvalStats::default();
        let mut st2 = EvalStats::default();
        let with = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), Keep::BaseOnly, plan.as_ref(), &opts, &mut st1,
        )
        .unwrap();
        let without = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), Keep::BaseOnly, None, &opts, &mut st2,
        )
        .unwrap();
        prop_assert!(with.multiset_eq(&without));
        // And under ForceScan, where completion actually prunes the scan.
        let scan_opts =
            GmdjOptions { probe: ProbeStrategy::ForceScan, ..GmdjOptions::default() };
        let mut st3 = EvalStats::default();
        let scanned = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), Keep::BaseOnly, plan.as_ref(), &scan_opts, &mut st3,
        )
        .unwrap();
        prop_assert!(scanned.multiset_eq(&without));
        // And combined with memory partitioning (completion state is
        // per-partition).
        let part_opts =
            GmdjOptions { partition_rows: Some(3), ..GmdjOptions::default() };
        let mut st4 = EvalStats::default();
        let partitioned = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), Keep::BaseOnly, plan.as_ref(), &part_opts, &mut st4,
        )
        .unwrap();
        prop_assert!(partitioned.multiset_eq(&without));
    }

    /// The whole optimizer is semantics-preserving on random GMDJ
    /// expressions of the translation's shape.
    #[test]
    fn optimizer_is_semantics_preserving(
        b in relation("B", 8),
        r in relation("R", 12),
        t1 in theta(),
        t2 in theta(),
        zero1 in proptest::bool::ANY,
        zero2 in proptest::bool::ANY,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let mk_sel = |name: &str, zero: bool| {
            if zero { col(name).eq(lit(0)) } else { col(name).gt(lit(0)) }
        };
        let expr = GmdjExpr::DropComputed {
            input: Box::new(
                GmdjExpr::table("B", "B")
                    .gmdj(
                        GmdjExpr::table("R", "R"),
                        GmdjSpec::new(vec![AggBlock::count(t1, "c1")]),
                    )
                    .gmdj(
                        GmdjExpr::table("R", "R"),
                        GmdjSpec::new(vec![AggBlock::count(t2, "c2")]),
                    )
                    .select(mk_sel("c1", zero1).and(mk_sel("c2", zero2))),
            ),
            names: vec!["c1".into(), "c2".into()],
        };
        let mut ctx1 = ExecContext::new();
        let baseline = execute(&expr, &catalog, &mut ctx1).unwrap();
        for flags in [
            OptFlags { hoist: true, coalesce: false, completion: false },
            OptFlags { hoist: true, coalesce: true, completion: false },
            OptFlags { hoist: true, coalesce: true, completion: true },
            OptFlags { hoist: false, coalesce: false, completion: true },
        ] {
            let optimized = optimize_with(&expr, &flags);
            let mut ctx2 = ExecContext::new();
            let got = execute(&optimized, &catalog, &mut ctx2).unwrap();
            prop_assert!(
                baseline.multiset_eq(&got),
                "flags {flags:?} changed semantics:\n{expr}\n→\n{optimized}"
            );
        }
    }

    /// Keep::All vs Keep::BaseOnly: the base-only output is the base
    /// projection of the full output.
    #[test]
    fn keep_base_only_is_projection(
        b in relation("B", 10),
        r in relation("R", 12),
        t in theta(),
    ) {
        let s = GmdjSpec::new(vec![AggBlock::count(t, "c1")]);
        let sel = col("c1").gt(lit(0));
        let opts = GmdjOptions::default();
        let mut st = EvalStats::default();
        let all = eval_gmdj_filtered(&b, &r, &s, Some(&sel), Keep::All, None, &opts, &mut st)
            .unwrap();
        let base_only = eval_gmdj_filtered(
            &b, &r, &s, Some(&sel), Keep::BaseOnly, None, &opts, &mut st,
        )
        .unwrap();
        let projected = gmdj_relation::ops::drop_columns(&all, &["c1"]).unwrap();
        prop_assert!(projected.multiset_eq(&base_only));
    }
}
