//! A zero-dependency HTTP stats endpoint over `std::net` — the first
//! network-facing surface of the engine and the seed of the async query
//! server from ROADMAP open item 1.
//!
//! [`StatsServer::start`] binds a `TcpListener` and serves read-only
//! observability documents with a minimal HTTP/1.0 responder (one
//! accept-loop thread, one connection at a time, `Connection: close`):
//!
//! | path | content | source |
//! |---|---|---|
//! | `GET /metrics` | Prometheus text | [`crate::metrics::global`] |
//! | `GET /queries` | active-query progress JSON | [`crate::progress::global`] |
//! | `GET /flight` | flight-recorder ring dump JSON | [`crate::trace::flight`] |
//! | `GET /sites` | per-site round-trip totals JSON | [`crate::distributed::sites_json`] |
//! | `GET /healthz` | `ok` | — |
//!
//! Started via `repro --stats-addr 127.0.0.1:PORT` or `SET stats_addr`
//! in the SQL shell; bind port 0 for an ephemeral port (tests). The
//! server only ever *reads* process-global state, so it needs no
//! coordination with query execution beyond the registries' own locks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Limit on the request head (request line + headers) we are willing to
/// buffer; everything this server answers fits in a fraction of this.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running stats endpoint. Dropping (or [`StatsServer::shutdown`])
/// stops the accept loop and joins its thread.
#[derive(Debug)]
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// start serving in a background thread.
    pub fn start(addr: &str) -> std::io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("gmdj-stats".into())
            .spawn(move || accept_loop(listener, thread_stop))?;
        Ok(StatsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = stream {
            // Serve inline: the documents are cheap to render and the
            // endpoint is an operator surface, not a data plane.
            let _ = serve_connection(stream);
        }
    }
}

fn serve_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let path = match read_request_path(&mut stream)? {
        Some(p) => p,
        None => return Ok(()),
    };
    let (status, content_type, body) = route(&path);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request head and return the request path
/// for a GET, `None` for anything malformed or non-GET (answered 400/405
/// by the caller via the empty-path route; keeping it simple: we only
/// ever return `Some` for well-formed GETs).
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&buf) && buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// Map a request path to `(status line, content type, body)`.
fn route(path: &str) -> (&'static str, &'static str, String) {
    // Ignore any query string; the endpoints take no parameters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::metrics::global().render_prometheus(),
        ),
        "/queries" => (
            "200 OK",
            "application/json",
            crate::progress::global().render_json(),
        ),
        "/flight" => (
            "200 OK",
            "application/json",
            crate::trace::flight().dump_json(),
        ),
        "/sites" => (
            "200 OK",
            "application/json",
            crate::distributed::sites_json(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_on_ephemeral_port() {
        let server = StatsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        crate::metrics::global().inc("serve_test_probe_total", 1);
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(head.contains("Content-Type: text/plain"));
        assert!(body.contains("serve_test_probe_total"));

        let (head, body) = get(addr, "/queries");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"version\":"), "{body}");

        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(body.starts_with("{\"capacity\":"), "{body}");

        let (head, body) = get(addr, "/sites");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"sites\":["), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let server = StatsServer::start("127.0.0.1:0").unwrap();
        let (head, body) = get(server.local_addr(), "/healthz");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn query_strings_are_ignored_and_bad_requests_dropped() {
        let server = StatsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let (head, _) = get(addr, "/healthz?verbose=1");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        // A non-GET gets its connection closed without a response.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.is_empty());
        // The server still answers afterwards.
        let (head, _) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
    }
}
