//! Live query-progress tracking: a process-wide registry of the queries
//! currently executing, fed cheaply from the execution hot loops.
//!
//! Every query run through the engine's strategy layer registers a
//! [`QueryProgress`] handle (via [`ProgressRegistry::register`]) carrying
//! its SQL, strategy and policy labels. The runtime then feeds it with
//! relaxed atomic adds from exactly the places that already count work:
//!
//! * the morsel pull loop in [`crate::runtime`] (Parallel: one tick per
//!   pulled morsel; Distributed: one tick per site fragment), and
//! * the partition scan in [`crate::eval`] (Sequential: one tick per
//!   base-partition detail pass, with per-batch row updates from the
//!   vectorized kernel dispatch).
//!
//! `morsels_total` is known up front (PR 6's morsel-driven execution
//! made the schedule closed-form — see [`crate::runtime`]), so progress
//! is a true fraction, not a heuristic: the invariant `morsels_done ≤
//! morsels_total` holds throughout and `morsels_done == morsels_total`
//! at successful completion (asserted in `tests/observability.rs`).
//!
//! The ETA comes from observed morsel throughput
//! (`elapsed · remaining / done`). As a cross-check against the cost
//! model, each entry also carries the optimizer's predicted cost
//! ([`crate::cost::estimate`], the same units [`crate::cost::observed_cost`]
//! folds runtime counters back into) and an alternative
//! `eta_cost_ms` extrapolated from predicted-vs-scanned tuples; when the
//! two ETAs disagree wildly the cost model is mispredicting, which is
//! itself a useful live signal.
//!
//! Snapshots render as the `queries` JSON consumed by the SQL shell's
//! `\queries`, the `/queries` HTTP endpoint ([`crate::serve`]) and the
//! profile's `progress` section — validated against
//! `schemas/queries.schema.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::trace::json_escape;

/// Schema version of the queries/progress JSON render.
/// v2: every entry carries a `state` field (`queued` → `coalescing` →
/// `running`) so submitted-but-not-started queries are visible.
pub const QUERIES_VERSION: u64 = 2;

/// Identifier of one registered query, unique within the process.
pub type QueryId = u64;

/// Live progress state of one executing query. Shared between the
/// registering thread and the workers feeding it; every counter is a
/// relaxed atomic so hot-loop updates cost one uncontended RMW.
#[derive(Debug)]
pub struct QueryProgress {
    id: QueryId,
    sql: String,
    strategy: String,
    policy: String,
    started: Instant,
    rows_done: AtomicU64,
    morsels_done: AtomicU64,
    morsels_total: AtomicU64,
    /// Optimizer-predicted total cost in `cost::Cost::total()` units
    /// (rounded; 0 = no prediction available).
    predicted_cost: AtomicU64,
    /// Optimizer-predicted detail/scan tuples (`cost.io`), the live
    /// cross-check denominator for `eta_cost_ms`.
    predicted_io: AtomicU64,
    phase: Mutex<String>,
    /// Submission lifecycle: `queued` (registered, not yet executing),
    /// `coalescing` (waiting in a shared-scan batch window — see
    /// [`crate::shared`]), `running` (plan walking / scanning).
    state: Mutex<String>,
}

impl QueryProgress {
    /// Query id (process-unique, monotonically assigned).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Add scanned detail rows (relaxed; hot path).
    pub fn add_rows(&self, n: u64) {
        if n > 0 {
            self.rows_done.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Mark `n` morsels completed (relaxed; hot path).
    pub fn add_morsels_done(&self, n: u64) {
        if n > 0 {
            self.morsels_done.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Announce `n` more scheduled morsels. Called once per GMDJ
    /// evaluation with the closed-form schedule size, *before* any
    /// worker starts, so `morsels_done ≤ morsels_total` holds at every
    /// instant.
    pub fn add_morsels_total(&self, n: u64) {
        if n > 0 {
            self.morsels_total.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record the optimizer's prediction for this query (cost-model
    /// units + scan tuples), once known at plan time.
    pub fn set_prediction(&self, cost_total: f64, cost_io: f64) {
        self.predicted_cost
            .store(cost_total.max(0.0).round() as u64, Ordering::Relaxed);
        self.predicted_io
            .store(cost_io.max(0.0).round() as u64, Ordering::Relaxed);
    }

    /// Set the current phase label (plan-node description).
    pub fn set_phase(&self, phase: &str) {
        if let Ok(mut p) = self.phase.lock() {
            p.clear();
            p.push_str(phase);
        }
    }

    /// Set the submission lifecycle state (`queued` / `coalescing` /
    /// `running`).
    pub fn set_state(&self, state: &str) {
        if let Ok(mut s) = self.state.lock() {
            s.clear();
            s.push_str(state);
        }
    }

    /// Current submission lifecycle state.
    pub fn state(&self) -> String {
        self.state.lock().map(|s| s.clone()).unwrap_or_default()
    }

    /// Rows scanned so far.
    pub fn rows_done(&self) -> u64 {
        self.rows_done.load(Ordering::Relaxed)
    }

    /// Morsels completed so far.
    pub fn morsels_done(&self) -> u64 {
        self.morsels_done.load(Ordering::Relaxed)
    }

    /// Morsels scheduled in total (so far announced).
    pub fn morsels_total(&self) -> u64 {
        self.morsels_total.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot for rendering.
    pub fn snapshot(&self) -> QuerySnapshot {
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let done = self.morsels_done();
        let total = self.morsels_total();
        // ETA from observed morsel throughput: elapsed · remaining/done.
        let eta_ms = if done > 0 && total > done {
            (elapsed_ms * (total - done) as f64 / done as f64).round() as u64
        } else {
            0
        };
        // Cost-model cross-check: extrapolate from predicted scan
        // tuples instead of morsels. Diverging ETAs expose optimizer
        // misprediction live.
        let rows = self.rows_done();
        let predicted_io = self.predicted_io.load(Ordering::Relaxed);
        let eta_cost_ms = if rows > 0 && predicted_io > rows {
            (elapsed_ms * (predicted_io - rows) as f64 / rows as f64).round() as u64
        } else {
            0
        };
        QuerySnapshot {
            id: self.id,
            sql: self.sql.clone(),
            strategy: self.strategy.clone(),
            policy: self.policy.clone(),
            state: self.state(),
            phase: self.phase.lock().map(|p| p.clone()).unwrap_or_default(),
            elapsed_ms: elapsed_ms.round() as u64,
            rows_done: rows,
            morsels_done: done,
            morsels_total: total,
            eta_ms,
            predicted_cost: self.predicted_cost.load(Ordering::Relaxed),
            eta_cost_ms,
        }
    }
}

/// A rendered point-in-time view of one query's progress. `eta_ms` /
/// `eta_cost_ms` are 0 when unknown (no morsel finished yet, or the
/// query is at/over its predicted work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot {
    pub id: QueryId,
    pub sql: String,
    pub strategy: String,
    pub policy: String,
    pub state: String,
    pub phase: String,
    pub elapsed_ms: u64,
    pub rows_done: u64,
    pub morsels_done: u64,
    pub morsels_total: u64,
    pub eta_ms: u64,
    pub predicted_cost: u64,
    pub eta_cost_ms: u64,
}

impl QuerySnapshot {
    /// One JSON object (key order fixed, matching
    /// `schemas/queries.schema.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"sql\":\"{}\",\"strategy\":\"{}\",\"policy\":\"{}\",\
             \"state\":\"{}\",\"phase\":\"{}\",\"elapsed_ms\":{},\"rows_done\":{},\
             \"morsels_done\":{},\"morsels_total\":{},\"eta_ms\":{},\
             \"predicted_cost\":{},\"eta_cost_ms\":{}}}",
            self.id,
            json_escape(&self.sql),
            json_escape(&self.strategy),
            json_escape(&self.policy),
            json_escape(&self.state),
            json_escape(&self.phase),
            self.elapsed_ms,
            self.rows_done,
            self.morsels_done,
            self.morsels_total,
            self.eta_ms,
            self.predicted_cost,
            self.eta_cost_ms
        )
    }
}

/// Cumulative totals over every query this registry has seen (finished
/// queries fold their final counts in on deregistration; active queries
/// are counted live in [`ProgressRegistry::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressTotals {
    pub queries_started: u64,
    pub queries_finished: u64,
    pub rows_done: u64,
    pub morsels_done: u64,
    pub morsels_total: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: QueryId,
    active: Vec<Arc<QueryProgress>>,
    finished: ProgressTotals,
}

/// Registry of active queries. Usually accessed through [`global`];
/// independently constructible for tests.
#[derive(Debug, Default)]
pub struct ProgressRegistry {
    inner: Mutex<RegistryInner>,
}

impl ProgressRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a query that is starting now. The returned ticket keeps
    /// the query listed; dropping it (normally or on unwind) folds the
    /// final counts into the cumulative totals and delists the query.
    pub fn register(
        &'static self,
        sql: impl Into<String>,
        strategy: impl Into<String>,
        policy: impl Into<String>,
    ) -> ProgressTicket {
        let mut inner = self.inner.lock().expect("progress registry poisoned");
        inner.next_id += 1;
        let progress = Arc::new(QueryProgress {
            id: inner.next_id,
            sql: sql.into(),
            strategy: strategy.into(),
            policy: policy.into(),
            started: Instant::now(),
            rows_done: AtomicU64::new(0),
            morsels_done: AtomicU64::new(0),
            morsels_total: AtomicU64::new(0),
            predicted_cost: AtomicU64::new(0),
            predicted_io: AtomicU64::new(0),
            phase: Mutex::new(String::new()),
            state: Mutex::new("queued".to_string()),
        });
        inner.active.push(progress.clone());
        inner.finished.queries_started += 1;
        let active = inner.active.len();
        drop(inner);
        self.sync_active_gauge(active);
        ProgressTicket {
            registry: self,
            progress,
        }
    }

    fn deregister(&self, id: QueryId) {
        let mut inner = self.inner.lock().expect("progress registry poisoned");
        if let Some(pos) = inner.active.iter().position(|p| p.id == id) {
            let p = inner.active.swap_remove(pos);
            inner.finished.queries_finished += 1;
            inner.finished.rows_done += p.rows_done();
            inner.finished.morsels_done += p.morsels_done();
            inner.finished.morsels_total += p.morsels_total();
        }
        let active = inner.active.len();
        drop(inner);
        self.sync_active_gauge(active);
    }

    /// Keep the `queries_active` gauge in step — but only for the
    /// process-global registry, so test-local registries don't fight
    /// over the global gauge.
    fn sync_active_gauge(&self, active: usize) {
        if std::ptr::eq(self, global()) {
            crate::metrics::global().gauge_set("queries_active", active as i64);
        }
    }

    /// Number of currently active queries.
    pub fn active_count(&self) -> usize {
        self.inner
            .lock()
            .expect("progress registry poisoned")
            .active
            .len()
    }

    /// Snapshots of every active query (registration order) plus
    /// cumulative totals including the active queries' current counts.
    pub fn snapshot(&self) -> (Vec<QuerySnapshot>, ProgressTotals) {
        let inner = self.inner.lock().expect("progress registry poisoned");
        let mut active: Vec<QuerySnapshot> = inner.active.iter().map(|p| p.snapshot()).collect();
        active.sort_by_key(|s| s.id);
        let mut totals = inner.finished;
        drop(inner);
        for s in &active {
            totals.rows_done += s.rows_done;
            totals.morsels_done += s.morsels_done;
            totals.morsels_total += s.morsels_total;
        }
        (active, totals)
    }

    /// The `queries` JSON document:
    /// `{"version":…,"active":[…],"totals":{…}}`.
    pub fn render_json(&self) -> String {
        let (active, totals) = self.snapshot();
        let mut out = String::with_capacity(128 + active.len() * 160);
        out.push_str(&format!("{{\"version\":{QUERIES_VERSION},\"active\":["));
        for (i, s) in active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str(&format!(
            "],\"totals\":{{\"queries_started\":{},\"queries_finished\":{},\
             \"rows_done\":{},\"morsels_done\":{},\"morsels_total\":{}}}}}",
            totals.queries_started,
            totals.queries_finished,
            totals.rows_done,
            totals.morsels_done,
            totals.morsels_total
        ));
        out
    }
}

/// RAII registration: keeps the query listed while alive, folds its
/// final counts into the registry totals on drop (including unwinds, so
/// a panicking query doesn't stay listed forever).
#[derive(Debug)]
pub struct ProgressTicket {
    registry: &'static ProgressRegistry,
    progress: Arc<QueryProgress>,
}

impl ProgressTicket {
    /// The shared progress handle to thread into the runtime.
    pub fn progress(&self) -> Arc<QueryProgress> {
        self.progress.clone()
    }
}

impl Drop for ProgressTicket {
    fn drop(&mut self) {
        self.registry.deregister(self.progress.id);
    }
}

/// The process-wide registry the engine's query entry points report
/// into; the shell, the profile render and the HTTP `/queries` endpoint
/// all read it.
pub fn global() -> &'static ProgressRegistry {
    static GLOBAL: OnceLock<ProgressRegistry> = OnceLock::new();
    GLOBAL.get_or_init(ProgressRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(r: ProgressRegistry) -> &'static ProgressRegistry {
        Box::leak(Box::new(r))
    }

    #[test]
    fn register_feeds_snapshot_and_totals() {
        let reg = leak(ProgressRegistry::new());
        let t = reg.register("SELECT 1", "gmdj-opt", "parallel(4)");
        let p = t.progress();
        p.add_morsels_total(10);
        p.add_morsels_done(4);
        p.add_rows(4096);
        p.set_phase("Gmdj");
        let (active, totals) = reg.snapshot();
        assert_eq!(active.len(), 1);
        let s = &active[0];
        assert_eq!(s.sql, "SELECT 1");
        assert_eq!(s.strategy, "gmdj-opt");
        assert_eq!(s.policy, "parallel(4)");
        assert_eq!(s.phase, "Gmdj");
        assert_eq!(
            (s.morsels_done, s.morsels_total, s.rows_done),
            (4, 10, 4096)
        );
        assert_eq!(totals.queries_started, 1);
        assert_eq!(totals.queries_finished, 0);
        assert_eq!(totals.morsels_done, 4);
        drop(t);
        let (active, totals) = reg.snapshot();
        assert!(active.is_empty());
        assert_eq!(totals.queries_finished, 1);
        assert_eq!(totals.morsels_done, 4);
        assert_eq!(totals.morsels_total, 10);
        assert_eq!(totals.rows_done, 4096);
    }

    #[test]
    fn state_starts_queued_and_tracks_lifecycle() {
        let reg = leak(ProgressRegistry::new());
        let t = reg.register("q", "s", "p");
        let p = t.progress();
        assert_eq!(p.state(), "queued");
        assert_eq!(p.snapshot().state, "queued");
        p.set_state("coalescing");
        assert_eq!(p.snapshot().state, "coalescing");
        p.set_state("running");
        let json = reg.render_json();
        assert!(json.contains("\"state\":\"running\""), "{json}");
    }

    #[test]
    fn eta_comes_from_morsel_throughput() {
        let reg = leak(ProgressRegistry::new());
        let t = reg.register("q", "s", "p");
        let p = t.progress();
        p.add_morsels_total(100);
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.add_morsels_done(50);
        let s = p.snapshot();
        // 50/100 done: remaining ≈ elapsed.
        assert!(s.eta_ms > 0, "{s:?}");
        assert!(s.eta_ms <= s.elapsed_ms.max(1) * 2, "{s:?}");
        p.add_morsels_done(50);
        assert_eq!(p.snapshot().eta_ms, 0, "complete ⇒ no ETA");
    }

    #[test]
    fn cost_cross_check_uses_predicted_io() {
        let reg = leak(ProgressRegistry::new());
        let t = reg.register("q", "s", "p");
        let p = t.progress();
        p.set_prediction(1234.5, 2000.0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        p.add_rows(1000);
        let s = p.snapshot();
        assert_eq!(s.predicted_cost, 1235);
        assert!(s.eta_cost_ms > 0, "{s:?}");
    }

    #[test]
    fn json_render_is_schema_shaped() {
        let reg = leak(ProgressRegistry::new());
        let t = reg.register("SELECT \"x\"", "native", "sequential");
        t.progress().add_morsels_total(2);
        let json = reg.render_json();
        assert!(json.starts_with(&format!(
            "{{\"version\":{QUERIES_VERSION},\"active\":[{{\"id\":"
        )));
        assert!(json.contains("\"sql\":\"SELECT \\\"x\\\"\""), "{json}");
        assert!(json.contains("\"totals\":{\"queries_started\":1"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn drop_on_unwind_delists() {
        let reg = leak(ProgressRegistry::new());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _t = reg.register("q", "s", "p");
            panic!("boom");
        }));
        assert!(res.is_err());
        assert_eq!(reg.active_count(), 0);
        let (_, totals) = reg.snapshot();
        assert_eq!(totals.queries_finished, 1);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let reg = leak(ProgressRegistry::new());
        let a = reg.register("a", "s", "p");
        let b = reg.register("b", "s", "p");
        assert!(a.progress().id() < b.progress().id());
        let (active, _) = reg.snapshot();
        assert_eq!(active.len(), 2);
        assert!(active[0].id < active[1].id);
    }
}
