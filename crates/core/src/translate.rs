//! Algorithm SubqueryToGMDJ (Section 3): translating nested query
//! expressions into flat GMDJ expressions.
//!
//! The pipeline is exactly the paper's integrated algorithm (Theorem 3.5):
//!
//! 1. **Normalize negations** — De Morgan push-down and elimination of
//!    negations in front of subqueries ([`gmdj_algebra::normalize`]).
//! 2. **Push down tables for non-neighboring predicates**
//!    (Theorems 3.3/3.4): when a correlation predicate references a block
//!    further out than the immediately enclosing one (Example 3.3), a copy
//!    of the far table is joined into the subquery's source under a fresh
//!    qualifier, the offending references are redirected to the copy, and
//!    the subquery's selection gains null-safe equality conjuncts tying
//!    the copy to the original. This introduces exactly the n−1
//!    supplementary joins the paper proves necessary, and nothing else.
//! 3. **Translate** (Theorems 3.1/3.2, Table 1): each subquery predicate
//!    becomes one or two `count(*)`/aggregate blocks of a GMDJ over the
//!    enclosing base expression, and the subquery predicate itself is
//!    replaced by a flat condition over the new count columns. Linearly
//!    nested subqueries recurse: the inner block's source becomes the
//!    base-values table of an inner GMDJ whose count condition joins the
//!    outer θ (Theorem 3.2).
//!
//! The auxiliary count columns are dropped by a final
//! [`GmdjExpr::DropComputed`] — the π\[A\] of Table 1.

use gmdj_algebra::ast::{NestedPredicate, Quantifier, QueryExpr, SubqueryOutput, SubqueryPred};
use gmdj_algebra::normalize::normalize_negations;
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{col, lit, Predicate, ScalarExpr};
use gmdj_relation::schema::ColumnRef;

use crate::plan::GmdjExpr;
use crate::spec::{AggBlock, GmdjSpec};

/// Minimal catalog knowledge the translation needs: the column names of a
/// base table, used to build the correlation conjuncts of a push-down.
pub trait SchemaInfo {
    /// Column names (unqualified) of a base table.
    fn table_columns(&self, table: &str) -> Result<Vec<String>>;
}

/// Forwarding shim so unsized providers (e.g. `&dyn TableProvider`, which
/// implements [`SchemaInfo`] through a blanket impl) can be passed to the
/// object-taking internals.
struct Fwd<'a, S: ?Sized>(&'a S);

impl<S: SchemaInfo + ?Sized> SchemaInfo for Fwd<'_, S> {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        self.0.table_columns(table)
    }
}

/// Translate a nested query expression into an equivalent flat GMDJ
/// expression (Algorithm SubqueryToGMDJ).
pub fn subquery_to_gmdj<S: SchemaInfo + ?Sized>(
    query: &QueryExpr,
    schemas: &S,
) -> Result<GmdjExpr> {
    subquery_to_gmdj_dyn(query, &Fwd(schemas))
}

fn subquery_to_gmdj_dyn(query: &QueryExpr, schemas: &dyn SchemaInfo) -> Result<GmdjExpr> {
    let normalized = normalize_negations(query);
    let mut counter = 0usize;
    let pushed = pushdown::rewrite(&normalized, schemas, &mut counter)?;
    let mut ctx = Ctx { counter };
    tx(&pushed, &mut ctx)
}

struct Ctx {
    counter: usize,
}

impl Ctx {
    fn gensym(&mut self, stem: &str) -> String {
        self.counter += 1;
        format!("__{stem}{}", self.counter)
    }
}

fn tx(q: &QueryExpr, ctx: &mut Ctx) -> Result<GmdjExpr> {
    match q {
        QueryExpr::Table { name, qualifier } => Ok(GmdjExpr::table(name, qualifier)),
        QueryExpr::Project {
            input,
            columns,
            distinct,
        } => Ok(GmdjExpr::Project {
            input: Box::new(tx(input, ctx)?),
            columns: columns.clone(),
            distinct: *distinct,
        }),
        QueryExpr::AggProject { input, agg } => Ok(GmdjExpr::AggProject {
            input: Box::new(tx(input, ctx)?),
            agg: agg.clone(),
        }),
        QueryExpr::Join { left, right, on } => Ok(GmdjExpr::Join {
            left: Box::new(tx(left, ctx)?),
            right: Box::new(tx(right, ctx)?),
            on: on.clone(),
        }),
        QueryExpr::GroupBy { input, keys, aggs } => Ok(GmdjExpr::GroupBy {
            input: Box::new(tx(input, ctx)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
        }),
        QueryExpr::OrderBy { input, keys } => Ok(GmdjExpr::OrderBy {
            input: Box::new(tx(input, ctx)?),
            keys: keys.clone(),
        }),
        QueryExpr::Limit { input, n } => Ok(GmdjExpr::Limit {
            input: Box::new(tx(input, ctx)?),
            n: *n,
        }),
        QueryExpr::Select { input, predicate } => {
            let base = tx(input, ctx)?;
            tx_select(base, predicate, ctx)
        }
    }
}

/// Translate σ\[W\](base) where W may contain subqueries: chain one GMDJ
/// per subquery onto `base`, select on the rewritten flat predicate, and
/// drop the auxiliary columns.
fn tx_select(base: GmdjExpr, w: &NestedPredicate, ctx: &mut Ctx) -> Result<GmdjExpr> {
    if let Some(flat) = w.to_flat() {
        return Ok(base.select(flat));
    }
    let mut chain: Vec<(GmdjExpr, GmdjSpec)> = Vec::new();
    let mut introduced: Vec<String> = Vec::new();
    let w2 = replace_subqueries(w, &mut chain, &mut introduced, ctx)?;
    let mut cur = base;
    for (detail, spec) in chain {
        cur = cur.gmdj(detail, spec);
    }
    Ok(GmdjExpr::DropComputed {
        input: Box::new(cur.select(w2)),
        names: introduced,
    })
}

/// Rewrite a nested predicate into a flat one, emitting the GMDJ blocks
/// each subquery requires.
fn replace_subqueries(
    w: &NestedPredicate,
    chain: &mut Vec<(GmdjExpr, GmdjSpec)>,
    introduced: &mut Vec<String>,
    ctx: &mut Ctx,
) -> Result<Predicate> {
    match w {
        NestedPredicate::Atom(p) => Ok(p.clone()),
        NestedPredicate::And(a, b) => Ok(replace_subqueries(a, chain, introduced, ctx)?
            .and(replace_subqueries(b, chain, introduced, ctx)?)),
        NestedPredicate::Or(a, b) => Ok(replace_subqueries(a, chain, introduced, ctx)?
            .or(replace_subqueries(b, chain, introduced, ctx)?)),
        NestedPredicate::Not(_) => Err(Error::invalid(
            "negations must be eliminated before translation (normalize_negations)",
        )),
        NestedPredicate::Subquery(s) => tx_subquery(s, chain, introduced, ctx),
    }
}

/// Translate one subquery predicate per Table 1, pushing its GMDJ blocks
/// onto `chain` and returning the replacement condition Cᵢ.
fn tx_subquery(
    s: &SubqueryPred,
    chain: &mut Vec<(GmdjExpr, GmdjSpec)>,
    introduced: &mut Vec<String>,
    ctx: &mut Ctx,
) -> Result<Predicate> {
    // IN / NOT IN should have been desugared; accept them defensively.
    if let SubqueryPred::In {
        left,
        query,
        negated,
    } = s
    {
        let desugared = SubqueryPred::Quantified {
            left: left.clone(),
            op: if *negated {
                gmdj_relation::expr::CmpOp::Ne
            } else {
                gmdj_relation::expr::CmpOp::Eq
            },
            quantifier: if *negated {
                Quantifier::All
            } else {
                Quantifier::Some
            },
            query: query.clone(),
        };
        return tx_subquery(&desugared, chain, introduced, ctx);
    }

    let (source, body_pred, output) = peel(s.query());
    let src = tx(&source, ctx)?;

    // Theorem 3.2 — linearly nested subqueries: inner subqueries of the
    // body become GMDJs over the subquery's own source; their count
    // conditions join the θ of the enclosing block's GMDJ
    // (`θ₂' ⋈ C₁`). The inner auxiliary columns live in the detail
    // relation and are referenced only by θ, so they are not dropped.
    let (detail, theta) = match body_pred.to_flat() {
        Some(flat) => (src, flat),
        None => {
            let mut inner_chain = Vec::new();
            let mut inner_names = Vec::new();
            let w2 = replace_subqueries(&body_pred, &mut inner_chain, &mut inner_names, ctx)?;
            let mut cur = src;
            for (d, spec) in inner_chain {
                cur = cur.gmdj(d, spec);
            }
            (cur, w2)
        }
    };

    // Table 1.
    match s {
        SubqueryPred::Exists { negated, .. } => {
            let g = ctx.gensym("cnt");
            chain.push((
                detail,
                GmdjSpec::new(vec![AggBlock::count(theta, g.clone())]),
            ));
            introduced.push(g.clone());
            Ok(if *negated {
                col(&g).eq(lit(0))
            } else {
                col(&g).gt(lit(0))
            })
        }
        SubqueryPred::Quantified {
            left,
            op,
            quantifier,
            ..
        } => {
            let y = output_column(&output, "quantified comparison")?;
            let cmp = left.clone().cmp_with(*op, ScalarExpr::Column(y));
            match quantifier {
                Quantifier::Some => {
                    let g = ctx.gensym("cnt");
                    chain.push((
                        detail,
                        GmdjSpec::new(vec![AggBlock::count(theta.and(cmp), g.clone())]),
                    ));
                    introduced.push(g.clone());
                    Ok(col(&g).gt(lit(0)))
                }
                Quantifier::All => {
                    let g1 = ctx.gensym("cnt");
                    let g2 = ctx.gensym("cnt");
                    chain.push((
                        detail,
                        GmdjSpec::new(vec![
                            AggBlock::count(theta.clone().and(cmp), g1.clone()),
                            AggBlock::count(theta, g2.clone()),
                        ]),
                    ));
                    introduced.push(g1.clone());
                    introduced.push(g2.clone());
                    Ok(col(&g1).eq(col(&g2)))
                }
            }
        }
        SubqueryPred::Cmp { left, op, .. } => match &output {
            SubqueryOutput::Agg(agg) => {
                let g = ctx.gensym("agg");
                let renamed = NamedAgg {
                    func: agg.func,
                    input: agg.input.clone(),
                    output: g.clone(),
                };
                chain.push((
                    detail,
                    GmdjSpec::new(vec![AggBlock::new(theta, vec![renamed])]),
                ));
                introduced.push(g.clone());
                Ok(left.clone().cmp_with(*op, col(&g)))
            }
            _ => {
                let y = output_column(&output, "scalar comparison")?;
                let cmp = left.clone().cmp_with(*op, ScalarExpr::Column(y));
                let g = ctx.gensym("cnt");
                chain.push((
                    detail,
                    GmdjSpec::new(vec![AggBlock::count(theta.and(cmp), g.clone())]),
                ));
                introduced.push(g.clone());
                Ok(col(&g).eq(lit(1)))
            }
        },
        SubqueryPred::In { .. } => unreachable!("desugared above"),
    }
}

fn output_column(output: &SubqueryOutput, context: &str) -> Result<ColumnRef> {
    match output {
        SubqueryOutput::Column(c) => Ok(c.clone()),
        SubqueryOutput::Agg(a) => Err(Error::invalid(format!(
            "{context} subquery needs a single projected attribute, found aggregate {a}"
        ))),
        SubqueryOutput::Row => Err(Error::invalid(format!(
            "{context} subquery needs a single projected attribute"
        ))),
    }
}

/// Peel a subquery body into (source expression, selection predicate,
/// output shape). Projection and selection layers interleave freely; the
/// source is whatever remains (a table, join, or nested structure).
fn peel(q: &QueryExpr) -> (QueryExpr, NestedPredicate, SubqueryOutput) {
    let mut output = SubqueryOutput::Row;
    let mut preds: Vec<NestedPredicate> = Vec::new();
    let mut cur = q;
    loop {
        match cur {
            QueryExpr::Project { input, columns, .. } => {
                if matches!(output, SubqueryOutput::Row) && columns.len() == 1 {
                    output = SubqueryOutput::Column(columns[0].clone());
                }
                cur = input;
            }
            QueryExpr::AggProject { input, agg } => {
                output = SubqueryOutput::Agg(agg.clone());
                cur = input;
            }
            QueryExpr::Select { input, predicate } => {
                preds.push(predicate.clone());
                cur = input;
            }
            other => {
                let body = preds
                    .into_iter()
                    .rev()
                    .reduce(|a, b| a.and(b))
                    .unwrap_or(NestedPredicate::Atom(Predicate::true_()));
                return (other.clone(), body, output);
            }
        }
    }
}

/// Push-down of base tables for non-neighboring correlation predicates
/// (Theorems 3.3/3.4, Examples 3.3/3.4).
mod pushdown {
    use super::*;
    use gmdj_algebra::analysis::free_references;

    /// Entry point: rewrite the whole query so that every correlation
    /// predicate is neighboring.
    pub fn rewrite(
        q: &QueryExpr,
        schemas: &dyn SchemaInfo,
        counter: &mut usize,
    ) -> Result<QueryExpr> {
        let mut env: Vec<Vec<(String, String)>> = Vec::new();
        rewrite_block(q, &mut env, schemas, counter)
    }

    /// Rewrite a query block: record its local (qualifier → table) pairs
    /// and process its nodes.
    fn rewrite_block(
        q: &QueryExpr,
        env: &mut Vec<Vec<(String, String)>>,
        schemas: &dyn SchemaInfo,
        counter: &mut usize,
    ) -> Result<QueryExpr> {
        env.push(collect_tables(q));
        let out = rewrite_node(q, env, schemas, counter);
        env.pop();
        out
    }

    fn rewrite_node(
        q: &QueryExpr,
        env: &mut Vec<Vec<(String, String)>>,
        schemas: &dyn SchemaInfo,
        counter: &mut usize,
    ) -> Result<QueryExpr> {
        match q {
            QueryExpr::Table { .. } => Ok(q.clone()),
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => Ok(QueryExpr::Project {
                input: Box::new(rewrite_node(input, env, schemas, counter)?),
                columns: columns.clone(),
                distinct: *distinct,
            }),
            QueryExpr::AggProject { input, agg } => Ok(QueryExpr::AggProject {
                input: Box::new(rewrite_node(input, env, schemas, counter)?),
                agg: agg.clone(),
            }),
            QueryExpr::Join { left, right, on } => Ok(QueryExpr::Join {
                left: Box::new(rewrite_node(left, env, schemas, counter)?),
                right: Box::new(rewrite_node(right, env, schemas, counter)?),
                on: on.clone(),
            }),
            QueryExpr::GroupBy { input, keys, aggs } => Ok(QueryExpr::GroupBy {
                input: Box::new(rewrite_node(input, env, schemas, counter)?),
                keys: keys.clone(),
                aggs: aggs.clone(),
            }),
            QueryExpr::OrderBy { input, keys } => Ok(QueryExpr::OrderBy {
                input: Box::new(rewrite_node(input, env, schemas, counter)?),
                keys: keys.clone(),
            }),
            QueryExpr::Limit { input, n } => Ok(QueryExpr::Limit {
                input: Box::new(rewrite_node(input, env, schemas, counter)?),
                n: *n,
            }),
            QueryExpr::Select { input, predicate } => {
                let input2 = rewrite_node(input, env, schemas, counter)?;
                let predicate2 = rewrite_pred(predicate, env, schemas, counter)?;
                Ok(QueryExpr::Select {
                    input: Box::new(input2),
                    predicate: predicate2,
                })
            }
        }
    }

    fn rewrite_pred(
        p: &NestedPredicate,
        env: &mut Vec<Vec<(String, String)>>,
        schemas: &dyn SchemaInfo,
        counter: &mut usize,
    ) -> Result<NestedPredicate> {
        match p {
            NestedPredicate::Atom(_) => Ok(p.clone()),
            NestedPredicate::And(a, b) => Ok(NestedPredicate::And(
                Box::new(rewrite_pred(a, env, schemas, counter)?),
                Box::new(rewrite_pred(b, env, schemas, counter)?),
            )),
            NestedPredicate::Or(a, b) => Ok(NestedPredicate::Or(
                Box::new(rewrite_pred(a, env, schemas, counter)?),
                Box::new(rewrite_pred(b, env, schemas, counter)?),
            )),
            NestedPredicate::Not(inner) => Ok(NestedPredicate::Not(Box::new(rewrite_pred(
                inner, env, schemas, counter,
            )?))),
            NestedPredicate::Subquery(s) => {
                let fixed = fix_subquery(s.query().clone(), env, schemas, counter)?;
                let rewritten = rewrite_block(&fixed, env, schemas, counter)?;
                let mut s2 = s.clone();
                *s2.query_mut() = rewritten;
                Ok(NestedPredicate::Subquery(s2))
            }
        }
    }

    /// Apply Theorems 3.3/3.4 to one subquery body until all of its free
    /// references are neighboring (resolve one level up from where they
    /// occur).
    fn fix_subquery(
        mut body: QueryExpr,
        env: &[Vec<(String, String)>],
        schemas: &dyn SchemaInfo,
        counter: &mut usize,
    ) -> Result<QueryExpr> {
        let scopes: Vec<Vec<String>> = env
            .iter()
            .map(|block| block.iter().map(|(q, _)| q.clone()).collect())
            .collect();
        let current = env
            .last()
            .expect("fix_subquery called with enclosing scope")
            .clone();
        loop {
            let refs = free_references(&body, &scopes);
            // Fix only the references that resolve in the immediately
            // enclosing block. A reference that is non-neighboring relative
            // to a *deeper* block of `body` (e.g. the left operand of a
            // doubly nested comparison) is fixed by the recursive
            // `rewrite_block` pass once the enclosing scope has grown down
            // to it.
            let Some(bad) = refs.iter().find(|r| {
                matches!(r.levels_up, Some(l) if l >= 2)
                    && r.column
                        .qualifier
                        .as_ref()
                        .is_some_and(|q| current.iter().any(|(cq, _)| cq == q))
            }) else {
                break;
            };
            let q_far = bad
                .column
                .qualifier
                .clone()
                .expect("free references are always qualified");
            let (_, table_name) = current
                .iter()
                .find(|(q, _)| *q == q_far)
                .cloned()
                .expect("qualifier resolves in the enclosing block by the filter above");
            *counter += 1;
            let fresh = format!("{q_far}__pd{counter}");
            let cols = schemas.table_columns(&table_name)?;
            if cols.is_empty() {
                return Err(Error::invalid(format!(
                    "cannot push down table {table_name} with no columns"
                )));
            }
            // 1. Redirect every reference to the far qualifier inside the
            //    body to the pushed-down copy.
            body = rename_qualifier(&body, &q_far, &fresh);
            // 2. Join a *duplicate-free* copy of the far table into the
            //    body's source (Theorem 3.3: MD(B,R,l,θ) = MD(B, B⋈R, l, θ)
            //    applied at the inner base). Without the duplicate
            //    elimination, two identical far tuples would each match
            //    both copies under the correlation conjuncts below,
            //    multiplying every aggregate by the duplicate count.
            let copy = QueryExpr::table(&table_name, &fresh).project_distinct(
                cols.iter()
                    .map(|c| ColumnRef::qualified(&fresh, c))
                    .collect(),
            );
            body = attach_source(body, copy);
            // 3. Correlate the copy with the original via null-safe
            //    equality on every column, so each outer tuple ranges only
            //    over detail tuples built from its own copy.
            let conj = Predicate::conjoin(cols.iter().map(|c| {
                let orig = ScalarExpr::Column(ColumnRef::qualified(&q_far, c));
                let copy = ScalarExpr::Column(ColumnRef::qualified(&fresh, c));
                orig.clone()
                    .eq(copy.clone())
                    .or(Predicate::IsNull(orig).and(Predicate::IsNull(copy)))
            }));
            body = add_selection(body, conj);
        }
        Ok(body)
    }

    /// (qualifier, table name) pairs of the Table nodes in this block's
    /// source region (not descending into subquery predicates).
    fn collect_tables(q: &QueryExpr) -> Vec<(String, String)> {
        let mut out = Vec::new();
        fn walk(q: &QueryExpr, out: &mut Vec<(String, String)>) {
            match q {
                QueryExpr::Table { name, qualifier } => out.push((qualifier.clone(), name.clone())),
                QueryExpr::Select { input, .. }
                | QueryExpr::Project { input, .. }
                | QueryExpr::AggProject { input, .. }
                | QueryExpr::GroupBy { input, .. }
                | QueryExpr::OrderBy { input, .. }
                | QueryExpr::Limit { input, .. } => walk(input, out),
                QueryExpr::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(q, &mut out);
        out
    }

    /// Replace qualifier `from` with `to` in every attribute reference of
    /// the subtree (predicates, projections, aggregate inputs, and nested
    /// subqueries). Table nodes keep their qualifiers: `from` is free in
    /// the subtree, so no Table introduces it.
    fn rename_qualifier(q: &QueryExpr, from: &str, to: &str) -> QueryExpr {
        let map = |c: &ColumnRef| -> ColumnRef {
            if c.qualifier.as_deref() == Some(from) {
                ColumnRef::qualified(to, &c.name)
            } else {
                c.clone()
            }
        };
        fn go(
            q: &QueryExpr,
            map: &impl Fn(&ColumnRef) -> ColumnRef,
            from: &str,
            to: &str,
        ) -> QueryExpr {
            match q {
                QueryExpr::Table { .. } => q.clone(),
                QueryExpr::Select { input, predicate } => QueryExpr::Select {
                    input: Box::new(go(input, map, from, to)),
                    predicate: go_pred(predicate, map, from, to),
                },
                QueryExpr::Project {
                    input,
                    columns,
                    distinct,
                } => QueryExpr::Project {
                    input: Box::new(go(input, map, from, to)),
                    columns: columns.iter().map(map).collect(),
                    distinct: *distinct,
                },
                QueryExpr::AggProject { input, agg } => QueryExpr::AggProject {
                    input: Box::new(go(input, map, from, to)),
                    agg: NamedAgg {
                        func: agg.func,
                        input: agg.input.as_ref().map(|e| e.map_columns(map)),
                        output: agg.output.clone(),
                    },
                },
                QueryExpr::Join { left, right, on } => QueryExpr::Join {
                    left: Box::new(go(left, map, from, to)),
                    right: Box::new(go(right, map, from, to)),
                    on: on.map_columns(map),
                },
                QueryExpr::GroupBy { input, keys, aggs } => QueryExpr::GroupBy {
                    input: Box::new(go(input, map, from, to)),
                    keys: keys.iter().map(map).collect(),
                    aggs: aggs
                        .iter()
                        .map(|a| NamedAgg {
                            func: a.func,
                            input: a.input.as_ref().map(|e| e.map_columns(map)),
                            output: a.output.clone(),
                        })
                        .collect(),
                },
                QueryExpr::OrderBy { input, keys } => QueryExpr::OrderBy {
                    input: Box::new(go(input, map, from, to)),
                    keys: keys.iter().map(|(c, asc)| (map(c), *asc)).collect(),
                },
                QueryExpr::Limit { input, n } => QueryExpr::Limit {
                    input: Box::new(go(input, map, from, to)),
                    n: *n,
                },
            }
        }
        fn go_pred(
            p: &NestedPredicate,
            map: &impl Fn(&ColumnRef) -> ColumnRef,
            from: &str,
            to: &str,
        ) -> NestedPredicate {
            match p {
                NestedPredicate::Atom(flat) => NestedPredicate::Atom(flat.map_columns(map)),
                NestedPredicate::And(a, b) => NestedPredicate::And(
                    Box::new(go_pred(a, map, from, to)),
                    Box::new(go_pred(b, map, from, to)),
                ),
                NestedPredicate::Or(a, b) => NestedPredicate::Or(
                    Box::new(go_pred(a, map, from, to)),
                    Box::new(go_pred(b, map, from, to)),
                ),
                NestedPredicate::Not(inner) => {
                    NestedPredicate::Not(Box::new(go_pred(inner, map, from, to)))
                }
                NestedPredicate::Subquery(s) => {
                    let mut s2 = s.clone();
                    match &mut s2 {
                        SubqueryPred::Cmp { left, .. }
                        | SubqueryPred::Quantified { left, .. }
                        | SubqueryPred::In { left, .. } => *left = left.map_columns(map),
                        SubqueryPred::Exists { .. } => {}
                    }
                    *s2.query_mut() = go(s.query(), map, from, to);
                    NestedPredicate::Subquery(s2)
                }
            }
        }
        go(q, &map, from, to)
    }

    /// Cross-join `extra` into the source of the block at the root of `q`.
    fn attach_source(q: QueryExpr, extra: QueryExpr) -> QueryExpr {
        match q {
            QueryExpr::Select { input, predicate } => QueryExpr::Select {
                input: Box::new(attach_source(*input, extra)),
                predicate,
            },
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => QueryExpr::Project {
                input: Box::new(attach_source(*input, extra)),
                columns,
                distinct,
            },
            QueryExpr::AggProject { input, agg } => QueryExpr::AggProject {
                input: Box::new(attach_source(*input, extra)),
                agg,
            },
            source => source.join(extra, Predicate::true_()),
        }
    }

    /// Conjoin `pred` into the selection of the block at the root of `q`
    /// (inserting a selection above the source if none exists).
    fn add_selection(q: QueryExpr, pred: Predicate) -> QueryExpr {
        match q {
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => QueryExpr::Project {
                input: Box::new(add_selection(*input, pred)),
                columns,
                distinct,
            },
            QueryExpr::AggProject { input, agg } => QueryExpr::AggProject {
                input: Box::new(add_selection(*input, pred)),
                agg,
            },
            QueryExpr::Select { input, predicate } => QueryExpr::Select {
                input,
                predicate: predicate.and(NestedPredicate::Atom(pred)),
            },
            source => source.select_flat(pred),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::{exists, not_exists};
    use std::collections::HashMap;

    struct FakeSchemas(HashMap<&'static str, Vec<&'static str>>);

    impl SchemaInfo for FakeSchemas {
        fn table_columns(&self, table: &str) -> Result<Vec<String>> {
            self.0
                .get(table)
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .ok_or_else(|| Error::UnknownTable {
                    name: table.to_string(),
                })
        }
    }

    fn schemas() -> FakeSchemas {
        let mut m = HashMap::new();
        m.insert(
            "Flow",
            vec!["SourceIP", "DestIP", "StartTime", "NumBytes", "Protocol"],
        );
        m.insert("Hours", vec!["HourDsc", "StartInterval", "EndInterval"]);
        m.insert("User", vec!["Name", "IPAddress"]);
        FakeSchemas(m)
    }

    /// Example 2.2's base table B: EXISTS over a correlated flow selection.
    fn example_2_2_base() -> QueryExpr {
        let inner = QueryExpr::table("Flow", "FI").select_flat(
            col("FI.DestIP")
                .eq(lit("167.167.167.0"))
                .and(col("FI.StartTime").ge(col("H.StartInterval")))
                .and(col("FI.StartTime").lt(col("H.EndInterval"))),
        );
        QueryExpr::table("Hours", "H").select(exists(inner))
    }

    #[test]
    fn example_3_1_translation_shape() {
        let plan = subquery_to_gmdj(&example_2_2_base(), &schemas()).unwrap();
        // σ[cnt > 0](MD(Hours→H, Flow→FI, count(*)→cnt, θS)), counts dropped.
        assert_eq!(plan.gmdj_count(), 1);
        assert_eq!(plan.join_count(), 0);
        let GmdjExpr::DropComputed { input, names } = &plan else {
            panic!("expected DropComputed at root, got:\n{plan}")
        };
        assert_eq!(names.len(), 1);
        let GmdjExpr::Select { input, predicate } = input.as_ref() else {
            panic!("expected Select")
        };
        assert_eq!(predicate.to_string(), format!("{} > 0", names[0]));
        let GmdjExpr::Gmdj { base, detail, spec } = input.as_ref() else {
            panic!("expected Gmdj")
        };
        assert_eq!(**base, GmdjExpr::table("Hours", "H"));
        assert_eq!(**detail, GmdjExpr::table("Flow", "FI"));
        assert_eq!(spec.blocks.len(), 1);
        assert_eq!(
            spec.blocks[0].aggs[0].func,
            gmdj_relation::agg::AggFunc::CountStar
        );
    }

    /// Example 2.3 / 3.2: three same-level EXISTS subqueries become a
    /// chain of three GMDJs (before coalescing).
    #[test]
    fn example_3_2_same_level_subqueries_chain() {
        let flow_sel = |q: &str, ip: &str| {
            QueryExpr::table("Flow", q).select_flat(
                col("F0.SourceIP")
                    .eq(col(&format!("{q}.SourceIP")))
                    .and(col(&format!("{q}.DestIP")).eq(lit(ip))),
            )
        };
        let base = QueryExpr::table("Flow", "F0")
            .project_distinct(vec![ColumnRef::parse("F0.SourceIP")])
            .select(
                not_exists(flow_sel("F1", "167.167.167.0"))
                    .and(exists(flow_sel("F2", "168.168.168.0")))
                    .and(not_exists(flow_sel("F3", "169.169.169.0"))),
            );
        let plan = subquery_to_gmdj(&base, &schemas()).unwrap();
        assert_eq!(plan.gmdj_count(), 3);
        assert_eq!(plan.join_count(), 0);
        // Selection is cnt1 = 0 ∧ cnt2 > 0 ∧ cnt3 = 0 over the chain.
        let text = plan.explain();
        assert!(text.contains("= 0"), "{text}");
        assert!(text.contains("> 0"), "{text}");
    }

    /// Example 3.3/3.4: the double NOT EXISTS with a non-neighboring
    /// predicate needs exactly one supplementary join.
    fn example_3_3() -> QueryExpr {
        let theta_f = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")))
            .and(col("F.SourceIP").eq(col("U.IPAddress")));
        let inner_flow = QueryExpr::table("Flow", "F").select_flat(theta_f);
        let theta_h = col("H.StartInterval").gt(lit(0));
        let hours = QueryExpr::table("Hours", "H")
            .select(NestedPredicate::Atom(theta_h).and(not_exists(inner_flow)));
        QueryExpr::table("User", "U").select(not_exists(hours))
    }

    #[test]
    fn example_3_4_pushdown_adds_single_join() {
        let plan = subquery_to_gmdj(&example_3_3(), &schemas()).unwrap();
        assert_eq!(plan.gmdj_count(), 2);
        assert_eq!(plan.join_count(), 1);
        let text = plan.explain();
        // The pushed-down copy of User appears under a fresh qualifier.
        assert!(text.contains("Scan User → U__pd"), "{text}");
    }

    #[test]
    fn linear_nesting_inner_counts_join_theta() {
        // σ[∃ σ[θ2 ∧ ∃σ[θ1](R1)](R2)](B): the inner count condition must
        // appear in the outer GMDJ's θ, with the inner GMDJ as detail.
        let inner = QueryExpr::table("R1", "R1").select_flat(col("R1.x").eq(col("R2.x")));
        let mid = QueryExpr::table("R2", "R2")
            .select(NestedPredicate::Atom(col("R2.y").eq(col("B.y"))).and(exists(inner)));
        let q = QueryExpr::table("B", "B").select(exists(mid));
        let mut m = HashMap::new();
        m.insert("R1", vec!["x"]);
        m.insert("R2", vec!["x", "y"]);
        m.insert("B", vec!["y"]);
        let plan = subquery_to_gmdj(&q, &FakeSchemas(m)).unwrap();
        assert_eq!(plan.gmdj_count(), 2);
        let GmdjExpr::DropComputed { input, .. } = &plan else {
            panic!()
        };
        let GmdjExpr::Select { input, .. } = input.as_ref() else {
            panic!()
        };
        let GmdjExpr::Gmdj { detail, spec, .. } = input.as_ref() else {
            panic!()
        };
        // Outer θ contains the inner count condition.
        assert!(
            spec.blocks[0].theta.to_string().contains("__cnt"),
            "{}",
            spec.blocks[0].theta
        );
        // Detail is itself a GMDJ (not filtered — Theorem 3.2 form).
        assert!(matches!(detail.as_ref(), GmdjExpr::Gmdj { .. }));
    }

    #[test]
    fn flat_queries_pass_through() {
        let q = QueryExpr::table("Flow", "F").select_flat(col("F.NumBytes").gt(lit(100)));
        let plan = subquery_to_gmdj(&q, &schemas()).unwrap();
        assert_eq!(plan.gmdj_count(), 0);
        assert!(matches!(plan, GmdjExpr::Select { .. }));
    }

    #[test]
    fn aggregate_comparison_produces_agg_block() {
        // B.x > π[max(R.y)]σ[θ](R)
        let sub = QueryExpr::table("R", "R")
            .select_flat(col("R.k").eq(col("B.k")))
            .agg_project(NamedAgg::new(
                gmdj_relation::agg::AggFunc::Max,
                col("R.y"),
                "m",
            ));
        let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("B.x"),
            op: gmdj_relation::expr::CmpOp::Gt,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("B", "B").select(pred);
        let mut m = HashMap::new();
        m.insert("R", vec!["k", "y"]);
        m.insert("B", vec!["k", "x"]);
        let plan = subquery_to_gmdj(&q, &FakeSchemas(m)).unwrap();
        let text = plan.explain();
        assert!(text.contains("max"), "{text}");
        assert!(text.contains("B.x > __agg"), "{text}");
    }

    #[test]
    fn in_predicate_translates_via_some() {
        let sub = QueryExpr::table("R", "R").project(vec![ColumnRef::parse("R.y")]);
        let pred = NestedPredicate::Subquery(SubqueryPred::In {
            left: col("B.x"),
            query: Box::new(sub),
            negated: false,
        });
        let q = QueryExpr::table("B", "B").select(pred);
        let mut m = HashMap::new();
        m.insert("R", vec!["y"]);
        m.insert("B", vec!["x"]);
        let plan = subquery_to_gmdj(&q, &FakeSchemas(m)).unwrap();
        let text = plan.explain();
        assert!(text.contains("B.x = R.y"), "{text}");
        assert!(text.contains("> 0"), "{text}");
    }
}
