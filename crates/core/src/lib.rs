//! # gmdj-core
//!
//! The primary contribution of *Efficient Computation of Subqueries in
//! Complex OLAP* (Akinde & Böhlen, ICDE 2003):
//!
//! * [`spec`] — the **GMDJ operator**
//!   `MD(B, R, (l₁,…,lₘ), (θ₁,…,θₘ))` (Definition 2.1): the base-values
//!   relation `B` extended with, for each condition θᵢ, the aggregates lᵢ
//!   computed over `RNG(b, R, θᵢ)`.
//! * [`eval`] — GMDJ evaluation in a **single scan of the detail
//!   relation**, with per-condition probe plans (hash index on equality
//!   correlation keys, interval index on band conditions, or a scan of the
//!   active base tuples), optional memory-partitioned evaluation, and
//!   machine-independent work counters.
//! * [`completion`] — **base-tuple completion** (Theorems 4.1/4.2):
//!   deriving, from the count-selection that consumes a GMDJ, rules that
//!   let the evaluator discard or finish base tuples mid-scan.
//! * [`plan`] — the flat GMDJ expression language the translation targets
//!   (GMDJs composed with selections, projections and joins — regular
//!   algebraic expressions, *not* nested query expressions).
//! * [`translate`] — **Algorithm SubqueryToGMDJ** (Theorems 3.1–3.5,
//!   Table 1): negation normalization, the count-based mapping of every
//!   SQL subquery construct onto GMDJs, linear nesting, and the push-down
//!   of base tables for non-neighboring correlation predicates.
//! * [`optimize`] — **coalescing of GMDJs** (Proposition 4.1), selection
//!   push-up, and annotation of GMDJ nodes with completion plans.
//! * [`exec`] — an executor for GMDJ expressions against any
//!   [`TableProvider`], returning results plus evaluation statistics.
//! * [`runtime`] — the **unified execution pipeline**: a [`Runtime`]
//!   owning an [`ExecPolicy`] (sequential, partitioned, parallel, or
//!   distributed) is the single entry point for GMDJ evaluation, and the
//!   executor records a per-plan-node [`PlanNodeStats`] tree the cost
//!   model can read back.
//! * [`shared`] — **cross-query shared detail scans**: concurrently
//!   submitted GMDJs over the same detail table coalesce (extended
//!   Prop. 4.1) into one morsel-driven pass that feeds every query's
//!   private accumulators, paying detail chunk reads once per pass.
//!
//! # Example: a subquery, translated and evaluated
//!
//! ```
//! use gmdj_algebra::ast::{exists, QueryExpr};
//! use gmdj_core::exec::{execute, ExecContext, MemoryCatalog};
//! use gmdj_core::optimize::optimize;
//! use gmdj_core::translate::subquery_to_gmdj;
//! use gmdj_relation::expr::{col, lit};
//! use gmdj_relation::relation::RelationBuilder;
//! use gmdj_relation::schema::DataType;
//!
//! // Customers with at least one large order.
//! let customers = RelationBuilder::new("c")
//!     .column("id", DataType::Int)
//!     .row(vec![1.into()])
//!     .row(vec![2.into()])
//!     .build()
//!     .unwrap();
//! let orders = RelationBuilder::new("o")
//!     .column("cust", DataType::Int)
//!     .column("total", DataType::Int)
//!     .row(vec![1.into(), 500.into()])
//!     .row(vec![2.into(), 10.into()])
//!     .build()
//!     .unwrap();
//! let catalog = MemoryCatalog::new()
//!     .with("customer", customers)
//!     .with("orders", orders);
//!
//! let sub = QueryExpr::table("orders", "o")
//!     .select_flat(col("o.cust").eq(col("c.id")).and(col("o.total").gt(lit(100))));
//! let query = QueryExpr::table("customer", "c").select(exists(sub));
//!
//! // SubqueryToGMDJ + Section 4 optimizations, then a single-scan run.
//! let plan = optimize(&subquery_to_gmdj(&query, &catalog).unwrap());
//! let mut ctx = ExecContext::new();
//! let result = execute(&plan, &catalog, &mut ctx).unwrap();
//! assert_eq!(result.len(), 1);
//! assert_eq!(ctx.stats.partitions, 1); // one scan of the detail table
//! ```

pub mod completion;
pub mod cost;
pub mod distributed;
pub mod eval;
pub mod exec;
pub mod metrics;
pub mod optimize;
pub mod plan;
pub mod progress;
pub mod runtime;
pub mod serve;
pub mod shared;
pub mod spec;
pub mod trace;
pub mod translate;
pub mod wire;

pub use completion::{derive_completion, CompletionPlan, DeadRule};
pub use cost::{cost_based_optimize, estimate, observed_cost, Cost, Estimate, StatsProvider};
pub use distributed::{DistributedWarehouse, NetworkStats, Site};
pub use eval::{eval_gmdj, eval_gmdj_filtered, EvalStats, GmdjOptions, Keep, ProbeStrategy};
pub use exec::{execute, ExecContext, TableProvider};
pub use metrics::{Histogram, MetricsRegistry};
pub use optimize::optimize;
pub use plan::GmdjExpr;
pub use progress::{ProgressRegistry, ProgressTicket, QueryProgress, QuerySnapshot};
pub use runtime::{ExecMode, ExecPolicy, PlanNodeStats, Runtime};
pub use serve::StatsServer;
pub use shared::{SharedScanConfig, SharedScanPool};
pub use spec::{AggBlock, GmdjSpec};
pub use trace::{
    CollectingSink, FlightRecorder, JsonLinesSink, NullSink, Span, TeeSink, TraceEvent, TraceSink,
};
pub use translate::subquery_to_gmdj;
