//! The flat GMDJ expression language.
//!
//! Algorithm SubqueryToGMDJ targets this language: "the resulting GMDJ
//! expressions are regular algebraic expressions and **not** nested query
//! expressions". A [`GmdjExpr`] composes GMDJs with selections,
//! projections, joins and column dropping; like a join, the GMDJ is a
//! binary operator over two table-valued operands.

use std::fmt;

use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::Predicate;
use gmdj_relation::schema::ColumnRef;

use crate::completion::CompletionPlan;
use crate::eval::Keep;
use crate::spec::GmdjSpec;

/// A flat algebraic expression with GMDJ operators.
#[derive(Debug, Clone, PartialEq)]
pub enum GmdjExpr {
    /// Base table scan with renaming (`Flow → F`).
    Table { name: String, qualifier: String },
    /// σ\[predicate\](input) over a flat predicate.
    Select {
        input: Box<GmdjExpr>,
        predicate: Predicate,
    },
    /// π\[columns\](input), optionally distinct.
    Project {
        input: Box<GmdjExpr>,
        columns: Vec<ColumnRef>,
        distinct: bool,
    },
    /// Ungrouped scalar aggregate (always one row).
    AggProject { input: Box<GmdjExpr>, agg: NamedAgg },
    /// Ordinary θ-join (introduced only for non-neighboring predicates).
    Join {
        left: Box<GmdjExpr>,
        right: Box<GmdjExpr>,
        on: Predicate,
    },
    /// Drop named computed columns — the final π\[A\] of the translation,
    /// stripping the auxiliary count columns.
    DropComputed {
        input: Box<GmdjExpr>,
        names: Vec<String>,
    },
    /// γ\[keys; aggs\](input) — SQL GROUP BY.
    GroupBy {
        input: Box<GmdjExpr>,
        keys: Vec<ColumnRef>,
        aggs: Vec<NamedAgg>,
    },
    /// SQL ORDER BY (presentation).
    OrderBy {
        input: Box<GmdjExpr>,
        keys: Vec<(ColumnRef, bool)>,
    },
    /// SQL LIMIT.
    Limit { input: Box<GmdjExpr>, n: usize },
    /// `MD(base, detail, spec)` (Definition 2.1).
    Gmdj {
        base: Box<GmdjExpr>,
        detail: Box<GmdjExpr>,
        spec: GmdjSpec,
    },
    /// `π[keep](σ[selection](MD(base, detail, spec)))` fused into the
    /// evaluator, optionally with a base-tuple completion plan — the form
    /// the optimizer produces (Section 4).
    FilteredGmdj {
        base: Box<GmdjExpr>,
        detail: Box<GmdjExpr>,
        spec: GmdjSpec,
        selection: Predicate,
        keep: Keep,
        completion: Option<CompletionPlan>,
    },
}

impl GmdjExpr {
    /// Table scan builder.
    pub fn table(name: impl Into<String>, qualifier: impl Into<String>) -> GmdjExpr {
        GmdjExpr::Table {
            name: name.into(),
            qualifier: qualifier.into(),
        }
    }

    /// Selection builder.
    pub fn select(self, predicate: Predicate) -> GmdjExpr {
        GmdjExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// GMDJ builder.
    pub fn gmdj(self, detail: GmdjExpr, spec: GmdjSpec) -> GmdjExpr {
        GmdjExpr::Gmdj {
            base: Box::new(self),
            detail: Box::new(detail),
            spec,
        }
    }

    /// Number of GMDJ nodes (plain and filtered).
    pub fn gmdj_count(&self) -> usize {
        match self {
            GmdjExpr::Table { .. } => 0,
            GmdjExpr::Select { input, .. }
            | GmdjExpr::Project { input, .. }
            | GmdjExpr::AggProject { input, .. }
            | GmdjExpr::GroupBy { input, .. }
            | GmdjExpr::OrderBy { input, .. }
            | GmdjExpr::Limit { input, .. }
            | GmdjExpr::DropComputed { input, .. } => input.gmdj_count(),
            GmdjExpr::Join { left, right, .. } => left.gmdj_count() + right.gmdj_count(),
            GmdjExpr::Gmdj { base, detail, .. } => 1 + base.gmdj_count() + detail.gmdj_count(),
            GmdjExpr::FilteredGmdj { base, detail, .. } => {
                1 + base.gmdj_count() + detail.gmdj_count()
            }
        }
    }

    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        match self {
            GmdjExpr::Table { .. } => 0,
            GmdjExpr::Select { input, .. }
            | GmdjExpr::Project { input, .. }
            | GmdjExpr::AggProject { input, .. }
            | GmdjExpr::GroupBy { input, .. }
            | GmdjExpr::OrderBy { input, .. }
            | GmdjExpr::Limit { input, .. }
            | GmdjExpr::DropComputed { input, .. } => input.join_count(),
            GmdjExpr::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            GmdjExpr::Gmdj { base, detail, .. } | GmdjExpr::FilteredGmdj { base, detail, .. } => {
                base.join_count() + detail.join_count()
            }
        }
    }

    /// True when a completion plan is attached anywhere in the expression.
    pub fn uses_completion(&self) -> bool {
        match self {
            GmdjExpr::Table { .. } => false,
            GmdjExpr::Select { input, .. }
            | GmdjExpr::Project { input, .. }
            | GmdjExpr::AggProject { input, .. }
            | GmdjExpr::GroupBy { input, .. }
            | GmdjExpr::OrderBy { input, .. }
            | GmdjExpr::Limit { input, .. }
            | GmdjExpr::DropComputed { input, .. } => input.uses_completion(),
            GmdjExpr::Join { left, right, .. } => left.uses_completion() || right.uses_completion(),
            GmdjExpr::Gmdj { base, detail, .. } => {
                base.uses_completion() || detail.uses_completion()
            }
            GmdjExpr::FilteredGmdj {
                base,
                detail,
                completion,
                ..
            } => completion.is_some() || base.uses_completion() || detail.uses_completion(),
        }
    }

    /// Graphviz rendering of the plan DAG (`dot -Tsvg`-ready). GMDJ nodes
    /// are boxes listing their aggregate blocks; scans are ellipses.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "digraph gmdj_plan {\n  rankdir=BT;\n  node [fontname=\"monospace\", fontsize=10];\n",
        );
        let mut counter = 0usize;
        self.dot_node(&mut out, &mut counter);
        out.push_str("}\n");
        let _ = write!(out, "");
        out
    }

    /// Emit this node; returns its dot identifier.
    fn dot_node(&self, out: &mut String, counter: &mut usize) -> String {
        use std::fmt::Write;
        let id = format!("n{}", *counter);
        *counter += 1;
        let esc = |s: String| s.replace('"', "\\\"").replace('\n', "\\l");
        match self {
            GmdjExpr::Table { name, qualifier } => {
                let _ = writeln!(
                    out,
                    "  {id} [shape=ellipse, label=\"{}\"];",
                    esc(format!("{name} → {qualifier}"))
                );
            }
            GmdjExpr::Select { input, predicate } => {
                let child = input.dot_node(out, counter);
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"σ {}\"];",
                    esc(predicate.to_string())
                );
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::Project {
                input,
                columns,
                distinct,
            } => {
                let child = input.dot_node(out, counter);
                let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
                let pi = if *distinct { "πᵈ" } else { "π" };
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"{pi} {}\"];",
                    esc(cols.join(", "))
                );
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::AggProject { input, agg } => {
                let child = input.dot_node(out, counter);
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"γ {}\"];",
                    esc(agg.to_string())
                );
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::Join { left, right, on } => {
                let l = left.dot_node(out, counter);
                let r = right.dot_node(out, counter);
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"⋈ {}\"];",
                    esc(on.to_string())
                );
                let _ = writeln!(out, "  {l} -> {id};");
                let _ = writeln!(out, "  {r} -> {id};");
            }
            GmdjExpr::DropComputed { input, names } => {
                let child = input.dot_node(out, counter);
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"π∖ {}\"];",
                    esc(names.join(", "))
                );
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::GroupBy { input, keys, aggs } => {
                let child = input.dot_node(out, counter);
                let ks: Vec<String> = keys.iter().map(|c| c.to_string()).collect();
                let ags: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, label=\"γ[{}; {}]\"];",
                    esc(ks.join(", ")),
                    esc(ags.join(", "))
                );
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::OrderBy { input, .. } => {
                let child = input.dot_node(out, counter);
                let _ = writeln!(out, "  {id} [shape=box, label=\"sort\"];");
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::Limit { input, n } => {
                let child = input.dot_node(out, counter);
                let _ = writeln!(out, "  {id} [shape=box, label=\"limit {n}\"];");
                let _ = writeln!(out, "  {child} -> {id};");
            }
            GmdjExpr::Gmdj { base, detail, spec } => {
                let b = base.dot_node(out, counter);
                let d = detail.dot_node(out, counter);
                let blocks: Vec<String> = spec.blocks.iter().map(|blk| blk.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, style=bold, label=\"GMDJ\\l{}\\l\"];",
                    esc(blocks.join("\n"))
                );
                let _ = writeln!(out, "  {b} -> {id} [label=\"base\"];");
                let _ = writeln!(out, "  {d} -> {id} [label=\"detail\"];");
            }
            GmdjExpr::FilteredGmdj {
                base,
                detail,
                spec,
                selection,
                completion,
                ..
            } => {
                let b = base.dot_node(out, counter);
                let d = detail.dot_node(out, counter);
                let blocks: Vec<String> = spec.blocks.iter().map(|blk| blk.to_string()).collect();
                let comp = match completion {
                    Some(c) if c.finish_early => "\ncompletion: finish-early",
                    Some(_) => "\ncompletion: fail-fast",
                    None => "",
                };
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, style=bold, label=\"GMDJ σ {}{}\\l{}\\l\"];",
                    esc(selection.to_string()),
                    esc(comp.to_string()),
                    esc(blocks.join("\n"))
                );
                let _ = writeln!(out, "  {b} -> {id} [label=\"base\"];");
                let _ = writeln!(out, "  {d} -> {id} [label=\"detail\"];");
            }
        }
        id
    }

    /// Multi-line indented rendering (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            GmdjExpr::Table { name, qualifier } => {
                let _ = writeln!(out, "{pad}Scan {name} → {qualifier}");
            }
            GmdjExpr::Select { input, predicate } => {
                let _ = writeln!(out, "{pad}Select [{predicate}]");
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::Project {
                input,
                columns,
                distinct,
            } => {
                let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
                let d = if *distinct { " DISTINCT" } else { "" };
                let _ = writeln!(out, "{pad}Project{d} [{}]", cols.join(", "));
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::AggProject { input, agg } => {
                let _ = writeln!(out, "{pad}AggProject [{agg}]");
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::Join { left, right, on } => {
                let _ = writeln!(out, "{pad}Join [{on}]");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            GmdjExpr::DropComputed { input, names } => {
                let _ = writeln!(out, "{pad}DropComputed [{}]", names.join(", "));
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::GroupBy { input, keys, aggs } => {
                let ks: Vec<String> = keys.iter().map(|c| c.to_string()).collect();
                let ags: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(out, "{pad}GroupBy [{}; {}]", ks.join(", "), ags.join(", "));
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::OrderBy { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "{pad}OrderBy [{}]", ks.join(", "));
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::Limit { input, n } => {
                let _ = writeln!(out, "{pad}Limit [{n}]");
                input.explain_into(out, depth + 1);
            }
            GmdjExpr::Gmdj { base, detail, spec } => {
                let _ = writeln!(out, "{pad}GMDJ ({} blocks)", spec.blocks.len());
                for b in &spec.blocks {
                    let _ = writeln!(out, "{pad}  · {b}");
                }
                let _ = writeln!(out, "{pad}  base:");
                base.explain_into(out, depth + 2);
                let _ = writeln!(out, "{pad}  detail:");
                detail.explain_into(out, depth + 2);
            }
            GmdjExpr::FilteredGmdj {
                base,
                detail,
                spec,
                selection,
                keep,
                completion,
            } => {
                let keep = match keep {
                    Keep::All => "all",
                    Keep::BaseOnly => "base-only",
                };
                let comp = match completion {
                    Some(c) if c.finish_early => " +completion(finish-early)",
                    Some(_) => " +completion(fail-fast)",
                    None => "",
                };
                let _ = writeln!(
                    out,
                    "{pad}FilteredGMDJ ({} blocks) σ[{selection}] keep={keep}{comp}",
                    spec.blocks.len()
                );
                for b in &spec.blocks {
                    let _ = writeln!(out, "{pad}  · {b}");
                }
                let _ = writeln!(out, "{pad}  base:");
                base.explain_into(out, depth + 2);
                let _ = writeln!(out, "{pad}  detail:");
                detail.explain_into(out, depth + 2);
            }
        }
    }
}

impl fmt::Display for GmdjExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::expr::{col, lit};

    fn sample() -> GmdjExpr {
        GmdjExpr::table("Flow", "F0")
            .gmdj(
                GmdjExpr::table("Flow", "F1"),
                GmdjSpec::new(vec![AggBlock::count(col("F0.k").eq(col("F1.k")), "cnt")]),
            )
            .select(col("cnt").gt(lit(0)))
    }

    #[test]
    fn counts_nodes() {
        let e = sample();
        assert_eq!(e.gmdj_count(), 1);
        assert_eq!(e.join_count(), 0);
        assert!(!e.uses_completion());
    }

    #[test]
    fn explain_is_structured() {
        let text = sample().explain();
        assert!(text.contains("Select [cnt > 0]"));
        assert!(text.contains("GMDJ (1 blocks)"));
        assert!(text.contains("Scan Flow → F0"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = sample().to_dot();
        assert!(dot.starts_with("digraph gmdj_plan {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("label=\"GMDJ"));
        assert!(dot.contains("[label=\"base\"]"));
        assert!(dot.contains("[label=\"detail\"]"));
        // One node id per operator: 1 select + 1 gmdj + 2 scans.
        assert_eq!(dot.matches("shape=").count(), 4);
        // Quotes inside labels are escaped.
        let quoted = GmdjExpr::table("T", "T").select(col("T.s").eq(lit("x\"y")));
        assert!(quoted.to_dot().contains("\\\""));
    }
}
