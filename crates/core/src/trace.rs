//! Lightweight structured tracing for the execution pipeline.
//!
//! The engine instruments itself without an external `tracing`
//! dependency: a [`TraceSink`] receives [`TraceEvent`]s — completed spans
//! carrying a monotonic start offset, a duration, and the counter deltas
//! relevant to the span — and decides what to do with them. Three sinks
//! cover the use cases:
//!
//! * [`NullSink`] — the default; spans still measure time (callers may
//!   use the returned [`Duration`]) but nothing is recorded.
//! * [`CollectingSink`] — an in-memory buffer for tests and the
//!   `\timing` / `\analyze` breakdowns of the SQL shell.
//! * [`JsonLinesSink`] — one JSON object per line, append-only, for
//!   offline analysis of bench runs.
//!
//! Span names emitted by the runtime (see [`crate::runtime`] and
//! [`crate::exec`]):
//!
//! | name | emitted per | fields |
//! |---|---|---|
//! | `gmdj.eval` | GMDJ evaluation (any mode) | full [`EvalStats`](crate::eval::EvalStats) + network deltas |
//! | `gmdj.partition` | base partition scan | per-partition stats delta |
//! | `gmdj.worker` | parallel worker chunk | per-chunk scan-counter delta, `chunk_rows` |
//! | `site.roundtrip` | distributed site round-trip | per-site scan + network delta (incl. wire bytes under real sites; detail names the site, `siteN@addr` over sockets) |
//! | `site.eval` | site-local evaluation (one per round-trip) | site-side [`EvalStats`](crate::eval::EvalStats) delta, `site`, `attempt`, `fragment_rows` |
//! | `plan.node` | plan-operator execution | `rows_out`, `scanned_rows` |
//! | `query.plan` | translation + optimization | — |
//! | `query.execute` | plan execution | — |
//!
//! Start offsets are nanoseconds since a process-wide epoch (the first
//! time any span is opened), so events from different threads and
//! queries order on one timeline. Events never cross a process boundary
//! with their offsets intact: site executors ship span *deltas* (names,
//! details, durations, counter fields) over the wire, and the
//! coordinator re-anchors them onto its own epoch when stitching (see
//! [`crate::wire`]) — monotonic clocks are per-process, so only
//! durations are comparable across sites.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide monotonic epoch: all span start offsets are relative to
/// this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A completed span: what happened, when, for how long, and the counter
/// deltas it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, e.g. `"gmdj.partition"` (see the module table).
    pub name: &'static str,
    /// Free-form qualifier, e.g. the plan-node label or strategy name.
    pub detail: String,
    /// Nanoseconds since the process trace epoch at span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Counter deltas attributed to this span, in emission order.
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// The value of a named counter field, if the span carried it.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Render as a single JSON object (the `JsonLinesSink` line format).
    ///
    /// Field keys are emitted in sorted order (not emission order), so
    /// two traces of the same execution produce byte-identical lines and
    /// trace diffs / test snapshots are reproducible regardless of the
    /// order instrumentation sites attach their counters.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":\"");
        out.push_str(&json_escape(self.name));
        out.push('"');
        if !self.detail.is_empty() {
            out.push_str(",\"detail\":\"");
            out.push_str(&json_escape(&self.detail));
            out.push('"');
        }
        out.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{}",
            self.start_ns, self.dur_ns
        ));
        if !self.fields.is_empty() {
            let mut sorted: Vec<&(&'static str, u64)> = self.fields.iter().collect();
            sorted.sort_by_key(|(k, _)| *k);
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in sorted.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Every span name and counter-field key that may cross the process
/// boundary. [`TraceEvent`] stores both as `&'static str`, so the wire
/// decoder ([`crate::wire`]) re-interns incoming strings against this
/// table — a frame carrying an unknown name is a decode error (strict,
/// like the rest of the protocol), never a silent allocation leak into
/// the static lifetime.
pub const WIRE_INTERN_TABLE: &[&str] = &[
    // Span names (module table above).
    "gmdj.eval",
    "gmdj.partition",
    "gmdj.worker",
    "gmdj.kernel",
    "site.roundtrip",
    "site.eval",
    "plan.node",
    "query.plan",
    "query.execute",
    "query.parse",
    // EvalStats counter deltas.
    "detail_scanned",
    "probe_candidates",
    "theta_evals",
    "agg_updates",
    "base_rows",
    "dead_early",
    "done_early",
    "index_builds",
    "partitions",
    "completion_fallbacks",
    "col_chunk_reads",
    "row_page_reads",
    // NetworkStats counter deltas.
    "broadcast_values",
    "bytes_received",
    "bytes_sent",
    "collected_states",
    "messages",
    // KernelStats counter deltas.
    "batches",
    "rows_vectorized",
    "rows_row_path",
    "morsels",
    // Span-specific fields.
    "chunk_rows",
    "rows_out",
    "scanned_rows",
    "site",
    "attempt",
    "fragment_rows",
    "wall_ns",
    // Cross-process trace context (carried in wire frames).
    "query_id",
    "parent_span",
];

/// Re-intern a wire string against [`WIRE_INTERN_TABLE`]. `None` means
/// the name is not one this build emits — the decoder rejects the frame.
pub fn intern_static(s: &str) -> Option<&'static str> {
    WIRE_INTERN_TABLE.iter().find(|&&k| k == s).copied()
}

/// Nanoseconds since the process trace epoch — the scale every span
/// start offset uses, and the coordinator's anchor when re-basing
/// shipped site events onto its own timeline.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Fresh process-unique trace id (nonzero, monotonically increasing).
/// Used for the cross-process trace context: the coordinator stamps each
/// runtime evaluation with one id (`query_id`) and each `site.roundtrip`
/// span with another (`parent_span`), and both ride the wire so site-side
/// flight-recorder events name the coordinator span they belong to.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receiver of completed spans. Implementations must be shareable across
/// worker threads.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Record one completed span.
    fn record(&self, event: TraceEvent);

    /// Whether recording does anything — spans skip field collection for
    /// disabled sinks (time is still measured).
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink for tests and interactive breakdowns.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every recorded event, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Drain the buffer, returning the events recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"))
    }

    /// All events with the given span name.
    pub fn by_name(&self, name: &str) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }

    /// Sum of a counter field over every span with the given name.
    pub fn sum_field(&self, name: &str, key: &str) -> u64 {
        self.by_name(name).iter().filter_map(|e| e.field(key)).sum()
    }

    /// Total duration of the first span with the given name, if any.
    pub fn duration_of(&self, name: &str) -> Option<Duration> {
        self.by_name(name)
            .first()
            .map(|e| Duration::from_nanos(e.dur_ns))
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }
}

/// A sink writing one JSON object per line to a file (the classic
/// "structured log" format every tracing UI can ingest).
#[derive(Debug)]
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonLinesSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("trace sink poisoned").flush()
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: TraceEvent) {
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = writeln!(out, "{}", event.to_json());
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Default ring capacity of the process-wide [`flight`] recorder.
pub const FLIGHT_CAPACITY: usize = 4096;

/// How many trailing events an automatic failure dump writes to stderr
/// (the full ring stays available via `\flight` / `--flight-dump`).
const FAILURE_DUMP_TAIL: usize = 64;

#[derive(Debug, Default)]
struct FlightRing {
    buf: Vec<TraceEvent>,
    /// Next write position once the ring is full.
    next: usize,
}

/// An always-on, fixed-capacity ring buffer of the most recent spans —
/// the engine's flight recorder. Recording is lock-light (one short
/// mutex hold per completed span; spans are per-morsel / per-partition,
/// never per-row) and never allocates once the ring is warm, so it stays
/// on for every query. When the ring wraps, the overwrite counter makes
/// the loss visible instead of silent: [`FlightRecorder::dropped`] and
/// the `flight_recorder_dropped_events` gauge report how many events
/// fell off the front.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<FlightRing>,
    capacity: usize,
    enabled: AtomicBool,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(FlightRing::default()),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity (maximum retained events).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Turn recording on/off (off makes `record` a no-op; the retained
    /// events stay readable). Used by the overhead ablation in `repro
    /// bench --no-flight`.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Events overwritten since process start (0 while under capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained events oldest-first, plus the overwrite count at the
    /// time of the snapshot.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        let mut events = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() == self.capacity {
            events.extend_from_slice(&ring.buf[ring.next..]);
            events.extend_from_slice(&ring.buf[..ring.next]);
        } else {
            events.extend_from_slice(&ring.buf);
        }
        drop(ring);
        (events, self.dropped())
    }

    /// Dump the ring as one JSON document:
    /// `{"capacity":…,"dropped":…,"events":[…]}` (events oldest-first).
    pub fn dump_json(&self) -> String {
        let (events, dropped) = self.snapshot();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str(&format!(
            "{{\"capacity\":{},\"dropped\":{dropped},\"events\":[",
            self.capacity
        ));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, event: TraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let next = ring.next;
            ring.buf[next] = event;
            ring.next = (next + 1) % self.capacity;
            drop(ring);
            let dropped = self.dropped.fetch_add(1, Ordering::Relaxed) + 1;
            if std::ptr::eq(self, Arc::as_ptr(flight())) {
                crate::metrics::global()
                    .gauge_set("flight_recorder_dropped_events", dropped as i64);
            }
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// The process-wide flight recorder. Query entry points tee their trace
/// sink into this ring (see [`tee_flight`]), so the last
/// [`FLIGHT_CAPACITY`] spans are always available for postmortems even
/// when the caller traces into [`NullSink`].
pub fn flight() -> &'static Arc<FlightRecorder> {
    static FLIGHT: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    FLIGHT.get_or_init(|| Arc::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY)))
}

/// Wrap a sink so every event also lands in the process [`flight`]
/// recorder. Apply once at the query entry point — wrapping an
/// already-teed sink would double-record into the ring.
pub fn tee_flight(sink: Arc<dyn TraceSink>) -> Arc<dyn TraceSink> {
    Arc::new(TeeSink::new(sink, flight().clone()))
}

/// Dump the flight recorder's tail to stderr, once per process (repeated
/// failures — e.g. a fuzz batch that compares deliberate errors — don't
/// spam). The full ring remains available via `--flight-dump`.
pub fn flight_dump_on_failure(reason: &str) {
    static DUMPED: AtomicBool = AtomicBool::new(false);
    if DUMPED.swap(true, Ordering::Relaxed) {
        return;
    }
    let (events, dropped) = flight().snapshot();
    let tail_start = events.len().saturating_sub(FAILURE_DUMP_TAIL);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"reason\":\"{}\",\"dropped\":{dropped},\"omitted\":{},\"events\":[",
        json_escape(reason),
        tail_start
    ));
    for (i, e) in events[tail_start..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json());
    }
    out.push_str("]}");
    eprintln!("gmdj flight recorder ({reason}): {out}");
}

/// Dump a *remote* flight-recorder tail — shipped over the wire by a
/// failing site — to stderr, once per process. The remote twin of
/// [`flight_dump_on_failure`], gated separately so one distributed
/// failure produces both the coordinator's tail and the failing
/// site's, side by side.
pub fn flight_dump_remote(reason: &str, dropped: u64, events: &[TraceEvent]) {
    static DUMPED: AtomicBool = AtomicBool::new(false);
    if DUMPED.swap(true, Ordering::Relaxed) {
        return;
    }
    let tail_start = events.len().saturating_sub(FAILURE_DUMP_TAIL);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"reason\":\"{}\",\"dropped\":{dropped},\"omitted\":{},\"events\":[",
        json_escape(reason),
        tail_start
    ));
    for (i, e) in events[tail_start..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json());
    }
    out.push_str("]}");
    eprintln!("gmdj site flight recorder ({reason}): {out}");
}

/// A sink forwarding every event to two sinks (trace fan-out). Used to
/// keep the user's sink and the [`flight`] ring fed from one span
/// stream.
#[derive(Debug, Clone)]
pub struct TeeSink {
    primary: Arc<dyn TraceSink>,
    secondary: Arc<dyn TraceSink>,
}

impl TeeSink {
    /// Tee into `primary` and `secondary`.
    pub fn new(primary: Arc<dyn TraceSink>, secondary: Arc<dyn TraceSink>) -> Self {
        TeeSink { primary, secondary }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: TraceEvent) {
        if self.secondary.is_enabled() {
            self.secondary.record(event.clone());
        }
        if self.primary.is_enabled() {
            self.primary.record(event);
        }
    }

    fn is_enabled(&self) -> bool {
        self.primary.is_enabled() || self.secondary.is_enabled()
    }
}

/// An open span. Construct with [`Span::begin`], attach counter deltas
/// with [`Span::field`], and close with [`Span::finish`] — which records
/// the event (when the sink is enabled) and returns the measured
/// duration either way, so callers can use one code path for timing and
/// tracing.
pub struct Span<'a> {
    sink: &'a dyn TraceSink,
    name: &'static str,
    detail: String,
    start: Instant,
    start_ns: u64,
    id: u64,
    fields: Vec<(&'static str, u64)>,
}

impl<'a> Span<'a> {
    /// Open a span now.
    pub fn begin(sink: &'a dyn TraceSink, name: &'static str) -> Self {
        let epoch = epoch();
        let start = Instant::now();
        Span {
            sink,
            name,
            detail: String::new(),
            start,
            start_ns: start.duration_since(epoch).as_nanos() as u64,
            id: next_trace_id(),
            fields: Vec::new(),
        }
    }

    /// Nanoseconds since the process trace epoch at span open — the
    /// anchor for re-basing shipped site events inside this span's
    /// window when stitching a cross-process trace.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Process-unique id of this span ([`next_trace_id`]) — the
    /// `parent_span` value a coordinator puts on the wire so site-side
    /// events can name the `site.roundtrip` they belong to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a free-form qualifier (plan-node label, strategy name …).
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        if self.sink.is_enabled() {
            self.detail = detail.into();
        }
        self
    }

    /// Attach one counter delta. No-op when the sink is disabled.
    pub fn field(&mut self, key: &'static str, value: u64) {
        if self.sink.is_enabled() {
            self.fields.push((key, value));
        }
    }

    /// Attach several counter deltas at once.
    pub fn fields(&mut self, fields: impl IntoIterator<Item = (&'static str, u64)>) {
        if self.sink.is_enabled() {
            self.fields.extend(fields);
        }
    }

    /// Close the span: record it (enabled sinks) and return its duration.
    pub fn finish(self) -> Duration {
        let dur = self.start.elapsed();
        if self.sink.is_enabled() {
            self.sink.record(TraceEvent {
                name: self.name,
                detail: self.detail,
                start_ns: self.start_ns,
                dur_ns: dur.as_nanos() as u64,
                fields: self.fields,
            });
        }
        dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_collecting_sink() {
        let sink = CollectingSink::new();
        let mut span = Span::begin(&sink, "gmdj.partition").with_detail("p0");
        span.field("detail_scanned", 42);
        span.fields([("theta_evals", 7), ("agg_updates", 3)]);
        let dur = span.finish();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "gmdj.partition");
        assert_eq!(e.detail, "p0");
        assert_eq!(e.field("detail_scanned"), Some(42));
        assert_eq!(e.field("theta_evals"), Some(7));
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.dur_ns, dur.as_nanos() as u64);
        assert_eq!(sink.sum_field("gmdj.partition", "agg_updates"), 3);
    }

    #[test]
    fn null_sink_measures_but_records_nothing() {
        let sink = NullSink;
        let mut span = Span::begin(&sink, "x");
        span.field("k", 1);
        let dur = span.finish();
        assert!(dur.as_nanos() > 0 || dur.is_zero());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn events_order_on_one_timeline() {
        let sink = CollectingSink::new();
        Span::begin(&sink, "a").finish();
        Span::begin(&sink, "b").finish();
        let events = sink.events();
        assert!(events[0].start_ns <= events[1].start_ns);
    }

    #[test]
    fn json_line_format() {
        let e = TraceEvent {
            name: "plan.node",
            detail: "Table(\"x\")".into(),
            start_ns: 5,
            dur_ns: 10,
            fields: vec![("rows_out", 2)],
        };
        assert_eq!(
            e.to_json(),
            "{\"name\":\"plan.node\",\"detail\":\"Table(\\\"x\\\")\",\
             \"start_ns\":5,\"dur_ns\":10,\"fields\":{\"rows_out\":2}}"
        );
        let bare = TraceEvent {
            name: "q",
            detail: String::new(),
            start_ns: 0,
            dur_ns: 1,
            fields: vec![],
        };
        assert_eq!(
            bare.to_json(),
            "{\"name\":\"q\",\"start_ns\":0,\"dur_ns\":1}"
        );
    }

    #[test]
    fn json_fields_are_key_sorted_regardless_of_emission_order() {
        let forward = TraceEvent {
            name: "gmdj.eval",
            detail: String::new(),
            start_ns: 0,
            dur_ns: 1,
            fields: vec![("agg_updates", 3), ("theta_evals", 7)],
        };
        let reversed = TraceEvent {
            fields: vec![("theta_evals", 7), ("agg_updates", 3)],
            ..forward.clone()
        };
        assert_eq!(forward.to_json(), reversed.to_json());
        assert!(forward
            .to_json()
            .contains("{\"agg_updates\":3,\"theta_evals\":7}"));
        // Lookup still honors emission order (first match wins).
        assert_eq!(reversed.field("theta_evals"), Some(7));
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join("gmdj_trace_test.jsonl");
        {
            let sink = JsonLinesSink::create(&path).unwrap();
            Span::begin(&sink, "a").finish();
            Span::begin(&sink, "b").finish();
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"name\":\"b\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escaping_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn event(name: &'static str, start_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            detail: String::new(),
            start_ns,
            dur_ns: 1,
            fields: vec![],
        }
    }

    #[test]
    fn flight_recorder_retains_a_suffix_with_visible_loss() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(event("e", i));
        }
        let (events, dropped) = fr.snapshot();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "ring keeps the newest events oldest-first"
        );
        let json = fr.dump_json();
        assert!(json.starts_with("{\"capacity\":3,\"dropped\":2,\"events\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn flight_recorder_below_capacity_is_lossless() {
        let fr = FlightRecorder::with_capacity(8);
        for i in 0..5u64 {
            fr.record(event("e", i));
        }
        let (events, dropped) = fr.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn flight_recorder_can_be_disabled() {
        let fr = FlightRecorder::with_capacity(4);
        fr.set_enabled(false);
        assert!(!fr.is_enabled());
        fr.record(event("e", 0));
        assert_eq!(fr.snapshot().0.len(), 0);
        fr.set_enabled(true);
        fr.record(event("e", 1));
        assert_eq!(fr.snapshot().0.len(), 1);
    }

    #[test]
    fn tee_sink_feeds_both_sinks() {
        let a = Arc::new(CollectingSink::new());
        let b = Arc::new(FlightRecorder::with_capacity(8));
        let tee = TeeSink::new(a.clone(), b.clone());
        assert!(tee.is_enabled());
        Span::begin(&tee, "x").finish();
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.snapshot().0.len(), 1);
        // A disabled leg is skipped without disabling the tee.
        b.set_enabled(false);
        Span::begin(&tee, "y").finish();
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.snapshot().0.len(), 1);
    }

    #[test]
    fn global_flight_recorder_is_always_on() {
        assert!(flight().is_enabled());
        assert_eq!(flight().capacity(), FLIGHT_CAPACITY);
    }

    #[test]
    fn intern_table_covers_every_emitted_name_and_rejects_strangers() {
        // Every span name in the module table round-trips to the same
        // static, as do the counter families that ride on them.
        for name in ["site.eval", "gmdj.kernel", "detail_scanned", "wall_ns"] {
            let interned = intern_static(name).expect(name);
            assert_eq!(interned, name);
        }
        assert_eq!(intern_static("no.such.span"), None);
        assert_eq!(intern_static(""), None);
        // No duplicates: interning must be unambiguous.
        let mut sorted = WIRE_INTERN_TABLE.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), WIRE_INTERN_TABLE.len());
    }
}
