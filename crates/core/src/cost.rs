//! A cost model for GMDJ expressions.
//!
//! Section 6 of the paper: "Because the GMDJ evaluation has a well-defined
//! cost, it is easy to incorporate the GMDJ algorithm proposed in this
//! paper into a cost-based framework … allowing the cost-based query
//! optimizer to select between a rich set of alternatives."
//!
//! The model mirrors the evaluator in [`crate::eval`]: per (lᵢ, θᵢ) block
//! it determines which probe plan the evaluator would choose (hash,
//! interval, or active-scan) from the *syntactic shape* of θᵢ, and charges
//!
//! * **io** — tuples read from base tables (the dominant cost the paper
//!   optimizes: "the GMDJ can typically be evaluated in a single scan of
//!   the detail relation");
//! * **cpu** — probe candidates and predicate evaluations;
//! * **memory** — resident base tuples × aggregate state.
//!
//! [`cost_based_optimize`] runs the rewrite pipeline under every flag
//! combination and returns the cheapest plan — a miniature version of the
//! alternative-generation the paper proposes for the APPLY-style
//! optimizers of [14].

use gmdj_relation::error::Result;
use gmdj_relation::expr::{CmpOp, Predicate, ScalarExpr};
use gmdj_relation::schema::ColumnRef;

use crate::completion::CompletionPlan;
use crate::optimize::{optimize_with, OptFlags};
use crate::plan::GmdjExpr;
use crate::spec::GmdjSpec;

/// Table cardinalities for estimation.
pub trait StatsProvider {
    /// Row count of a base table.
    fn table_rows(&self, name: &str) -> Result<u64>;
}

/// Every [`crate::exec::TableProvider`] knows its cardinalities.
impl<T: crate::exec::TableProvider + ?Sized> StatsProvider for T {
    fn table_rows(&self, name: &str) -> Result<u64> {
        Ok(self.table(name)?.len() as u64)
    }
}

/// An estimated cost, decomposed by resource.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Tuples read from stored relations.
    pub io: f64,
    /// Probe candidates + predicate evaluations.
    pub cpu: f64,
    /// Peak resident state (base tuples × aggregates).
    pub memory: f64,
}

impl Cost {
    /// Scalar figure used for plan comparison. IO dominates (the paper's
    /// experiments are disk-bound; in memory the same term counts cache
    /// traffic), with CPU close behind and memory as a light tiebreaker.
    pub fn total(&self) -> f64 {
        4.0 * self.io + self.cpu + 0.01 * self.memory
    }

    fn add(&mut self, other: &Cost) {
        self.io += other.io;
        self.cpu += other.cpu;
        self.memory = self.memory.max(other.memory);
    }
}

/// An estimate: output cardinality plus accumulated cost.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    pub rows: f64,
    pub cost: Cost,
}

/// Fold an executed plan's recorded statistics tree back into the cost
/// model's units — the observed counterpart of [`estimate`], closing the
/// loop between the optimizer's predictions and what the runtime actually
/// did. `io` counts tuples actually read (table-scan rows plus detail
/// tuples streamed by GMDJ scans), `cpu` counts probe candidates, θ
/// evaluations, aggregate updates and relational-operator input rows, and
/// `memory` peaks at the largest resident base partition.
pub fn observed_cost(stats: &crate::runtime::PlanNodeStats) -> Cost {
    let mut cost = Cost {
        io: (stats.scanned_rows + stats.eval.detail_scanned) as f64,
        cpu: (stats.eval.probe_candidates
            + stats.eval.theta_evals
            + stats.eval.agg_updates
            + stats.ops.rows_in) as f64,
        memory: if stats.eval.partitions > 0 {
            (stats.eval.base_rows as f64 / stats.eval.partitions as f64).ceil()
        } else {
            0.0
        },
    };
    for child in &stats.children {
        cost.add(&observed_cost(child));
    }
    cost
}

/// Default selectivity heuristics (System-R vintage).
const SEL_EQ: f64 = 0.1;
const SEL_RANGE: f64 = 0.33;
const SEL_DEFAULT: f64 = 0.5;

fn predicate_selectivity(p: &Predicate) -> f64 {
    p.split_conjuncts()
        .iter()
        .map(|c| match c {
            Predicate::Cmp { op: CmpOp::Eq, .. } => SEL_EQ,
            Predicate::Cmp { op: CmpOp::Ne, .. } => 1.0 - SEL_EQ,
            Predicate::Cmp { .. } => SEL_RANGE,
            Predicate::IsNull(_) | Predicate::IsNotNull(_) => SEL_DEFAULT,
            Predicate::Literal(_) => 1.0,
            _ => SEL_DEFAULT,
        })
        .product()
}

/// Which probe plan the evaluator would pick for a block's θ, judged
/// syntactically exactly like `eval::choose_access` (but without schemas:
/// a conjunct `X.a = Y.b` over two different qualifiers counts as an
/// equality key; a ≥/< pair over the same column counts as a band).
fn block_access(theta: &Predicate) -> Access {
    let conjuncts = theta.split_conjuncts();
    let col_pair = |l: &ScalarExpr, r: &ScalarExpr| -> Option<(ColumnRef, ColumnRef)> {
        match (l, r) {
            (ScalarExpr::Column(a), ScalarExpr::Column(b))
                if a.qualifier.is_some() && b.qualifier.is_some() && a.qualifier != b.qualifier =>
            {
                Some((a.clone(), b.clone()))
            }
            _ => None,
        }
    };
    let mut lowers: Vec<ColumnRef> = Vec::new();
    let mut uppers: Vec<ColumnRef> = Vec::new();
    for c in &conjuncts {
        if let Predicate::Cmp { op, left, right } = c {
            if let Some((a, b)) = col_pair(left, right) {
                match op {
                    CmpOp::Eq => return Access::Hash,
                    CmpOp::Ge => lowers.push(a.clone()),
                    CmpOp::Le | CmpOp::Lt => uppers.push(a.clone()),
                    CmpOp::Gt => uppers.push(b.clone()),
                    _ => {}
                }
            }
        }
    }
    if lowers.iter().any(|l| uppers.iter().any(|u| u == l)) {
        Access::Interval
    } else {
        Access::Scan
    }
}

enum Access {
    Hash,
    Interval,
    Scan,
}

/// Forwarding shim so unsized providers (e.g. `&dyn TableProvider`) can
/// be passed to the object-taking internals.
struct FwdStats<'a, S: ?Sized>(&'a S);

impl<S: StatsProvider + ?Sized> StatsProvider for FwdStats<'_, S> {
    fn table_rows(&self, name: &str) -> Result<u64> {
        self.0.table_rows(name)
    }
}

/// Estimate the cost of evaluating a GMDJ expression.
pub fn estimate<S: StatsProvider + ?Sized>(expr: &GmdjExpr, stats: &S) -> Result<Estimate> {
    estimate_dyn(expr, &FwdStats(stats))
}

fn estimate_dyn(expr: &GmdjExpr, stats: &dyn StatsProvider) -> Result<Estimate> {
    match expr {
        GmdjExpr::Table { name, .. } => {
            let rows = stats.table_rows(name)? as f64;
            // Scan cost charged here; consumed relations are in memory.
            Ok(Estimate {
                rows,
                cost: Cost {
                    io: rows,
                    cpu: 0.0,
                    memory: rows,
                },
            })
        }
        GmdjExpr::Select { input, predicate } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows;
            e.rows *= predicate_selectivity(predicate);
            Ok(e)
        }
        GmdjExpr::Project {
            input, distinct, ..
        } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows;
            if *distinct {
                e.rows *= 0.7;
            }
            Ok(e)
        }
        GmdjExpr::AggProject { input, .. } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows;
            e.rows = 1.0;
            Ok(e)
        }
        GmdjExpr::DropComputed { input, .. } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows;
            Ok(e)
        }
        GmdjExpr::GroupBy { input, keys, .. } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows;
            e.rows = if keys.is_empty() {
                1.0
            } else {
                (e.rows * 0.3).max(1.0)
            };
            Ok(e)
        }
        GmdjExpr::OrderBy { input, .. } => {
            let mut e = estimate_dyn(input, stats)?;
            e.cost.cpu += e.rows * e.rows.max(2.0).log2();
            Ok(e)
        }
        GmdjExpr::Limit { input, n } => {
            let mut e = estimate_dyn(input, stats)?;
            e.rows = e.rows.min(*n as f64);
            Ok(e)
        }
        GmdjExpr::Join { left, right, on } => {
            let l = estimate_dyn(left, stats)?;
            let r = estimate_dyn(right, stats)?;
            let mut cost = l.cost;
            cost.add(&r.cost);
            let has_equi = on
                .split_conjuncts()
                .iter()
                .any(|c| matches!(c, Predicate::Cmp { op: CmpOp::Eq, .. }));
            let rows;
            if has_equi {
                cost.cpu += l.rows + r.rows;
                rows = (l.rows * r.rows * SEL_EQ).max(l.rows.max(r.rows) * SEL_DEFAULT);
            } else if matches!(on, Predicate::Literal(_)) {
                cost.cpu += l.rows * r.rows;
                rows = l.rows * r.rows;
            } else {
                cost.cpu += l.rows * r.rows;
                rows = l.rows * r.rows * predicate_selectivity(on);
            }
            cost.memory = cost.memory.max(rows);
            Ok(Estimate { rows, cost })
        }
        GmdjExpr::Gmdj { base, detail, spec } => {
            let b = estimate_dyn(base, stats)?;
            let d = estimate_dyn(detail, stats)?;
            let mut cost = b.cost;
            cost.add(&d.cost);
            cost.add(&gmdj_block_cost(spec, b.rows, d.rows, None));
            Ok(Estimate { rows: b.rows, cost })
        }
        GmdjExpr::FilteredGmdj {
            base,
            detail,
            spec,
            selection,
            completion,
            ..
        } => {
            let b = estimate_dyn(base, stats)?;
            let d = estimate_dyn(detail, stats)?;
            let mut cost = b.cost;
            cost.add(&d.cost);
            cost.add(&gmdj_block_cost(spec, b.rows, d.rows, completion.as_ref()));
            let rows = b.rows * predicate_selectivity(selection);
            Ok(Estimate { rows, cost })
        }
    }
}

/// Per-block evaluation cost of one GMDJ over `base` × `detail` rows.
fn gmdj_block_cost(
    spec: &GmdjSpec,
    base: f64,
    detail: f64,
    completion: Option<&CompletionPlan>,
) -> Cost {
    let mut cpu = 0.0;
    // The active base set is shared across blocks: any fail-fast rule
    // shrinks the candidates every scan block sees.
    let has_dead_rule = completion
        .map(|c| !c.dead_rules.is_empty())
        .unwrap_or(false);
    for block in &spec.blocks {
        match block_access(&block.theta) {
            // Hash probe: one candidate group per detail tuple; candidates
            // ≈ base / distinct-keys, bounded below by 1.
            Access::Hash => cpu += detail * (1.0 + (base * SEL_EQ).clamp(1.0, 8.0)),
            Access::Interval => cpu += detail * (1.0 + base.max(2.0).log2()),
            Access::Scan => {
                // Active-base scan: base candidates per detail tuple —
                // unless fail-fast completion applies, in which case the
                // active set decays harmonically
                // (Σ_t base·min(1, 1/t) ≈ base·ln(detail)).
                if has_dead_rule && detail > 1.0 {
                    cpu += base * detail.ln().max(1.0) + detail;
                } else {
                    cpu += base * detail;
                }
            }
        }
    }
    // Finish-early completion halves the expected probe work.
    if completion.map(|c| c.finish_early).unwrap_or(false) {
        cpu *= 0.5;
    }
    Cost {
        io: detail,
        cpu,
        memory: base * spec.agg_count() as f64,
    }
}

/// Try every rewrite-flag combination and return the plan with the lowest
/// estimated cost, together with its estimate.
pub fn cost_based_optimize<S: StatsProvider + ?Sized>(
    expr: &GmdjExpr,
    stats: &S,
) -> Result<(GmdjExpr, Estimate)> {
    cost_based_optimize_dyn(expr, &FwdStats(stats))
}

fn cost_based_optimize_dyn(
    expr: &GmdjExpr,
    stats: &dyn StatsProvider,
) -> Result<(GmdjExpr, Estimate)> {
    let candidates = [
        OptFlags {
            hoist: false,
            coalesce: false,
            completion: false,
        },
        OptFlags {
            hoist: true,
            coalesce: false,
            completion: false,
        },
        OptFlags {
            hoist: true,
            coalesce: true,
            completion: false,
        },
        OptFlags {
            hoist: false,
            coalesce: false,
            completion: true,
        },
        OptFlags {
            hoist: true,
            coalesce: true,
            completion: true,
        },
    ];
    let mut best: Option<(GmdjExpr, Estimate)> = None;
    for flags in candidates {
        let plan = optimize_with(expr, &flags);
        let est = estimate_dyn(&plan, stats)?;
        let better = match &best {
            None => true,
            Some((_, b)) => est.cost.total() < b.cost.total(),
        };
        if better {
            best = Some((plan, est));
        }
    }
    Ok(best.expect("at least one candidate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::expr::{col, lit};

    struct FixedStats;
    impl StatsProvider for FixedStats {
        fn table_rows(&self, name: &str) -> Result<u64> {
            Ok(match name {
                "B" => 1_000,
                "R" => 300_000,
                other => panic!("unknown table {other}"),
            })
        }
    }

    fn exists_chain(n: usize) -> GmdjExpr {
        let mut cur = GmdjExpr::table("B", "B");
        let mut names = Vec::new();
        for i in 0..n {
            let name = format!("c{i}");
            cur = cur.gmdj(
                GmdjExpr::table("R", format!("R{i}")),
                GmdjSpec::new(vec![AggBlock::count(
                    col("B.k").eq(col(&format!("R{i}.k"))),
                    name.clone(),
                )]),
            );
            names.push(name);
        }
        let sel = Predicate::conjoin(names.iter().map(|n| col(n).gt(lit(0))));
        GmdjExpr::DropComputed {
            input: Box::new(cur.select(sel)),
            names,
        }
    }

    #[test]
    fn coalesced_plan_costs_less_than_chain() {
        let chain = exists_chain(3);
        let coalesced = optimize_with(&chain, &OptFlags::default());
        let e1 = estimate(&chain, &FixedStats).unwrap();
        let e2 = estimate(&coalesced, &FixedStats).unwrap();
        // Three detail scans vs one.
        assert!(e2.cost.io < e1.cost.io, "{} !< {}", e2.cost.io, e1.cost.io);
        assert!(e2.cost.total() < e1.cost.total());
    }

    #[test]
    fn completion_discounts_scan_blocks() {
        // ALL-shape: scan access (no equi pair, <> correlation).
        let theta = col("B.k").ne(col("R.k"));
        let spec = GmdjSpec::new(vec![
            AggBlock::count(theta.clone().and(col("B.v").ge(col("R.v"))), "c1"),
            AggBlock::count(theta, "c2"),
        ]);
        let sel = col("c1").eq(col("c2"));
        let plain = GmdjExpr::table("B", "B")
            .gmdj(GmdjExpr::table("R", "R"), spec.clone())
            .select(sel.clone());
        let fused = optimize_with(
            &GmdjExpr::DropComputed {
                input: Box::new(plain.clone()),
                names: vec!["c1".into(), "c2".into()],
            },
            &OptFlags::default(),
        );
        assert!(fused.uses_completion(), "{fused}");
        let e_plain = estimate(&plain, &FixedStats).unwrap();
        let e_fused = estimate(&fused, &FixedStats).unwrap();
        assert!(
            e_fused.cost.cpu < e_plain.cost.cpu / 10.0,
            "completion should slash the quadratic scan term: {} vs {}",
            e_fused.cost.cpu,
            e_plain.cost.cpu
        );
    }

    #[test]
    fn cost_based_optimizer_picks_the_optimized_plan() {
        let chain = exists_chain(3);
        let (best, est) = cost_based_optimize(&chain, &FixedStats).unwrap();
        assert_eq!(best.gmdj_count(), 1, "{best}");
        assert!(best.uses_completion());
        assert!(est.cost.total() <= estimate(&chain, &FixedStats).unwrap().cost.total());
    }

    #[test]
    fn access_classification_matches_evaluator_shapes() {
        assert!(matches!(
            block_access(&col("B.k").eq(col("R.k"))),
            Access::Hash
        ));
        assert!(matches!(
            block_access(&col("R.t").ge(col("B.lo")).and(col("R.t").lt(col("B.hi")))),
            Access::Interval
        ));
        assert!(matches!(
            block_access(&col("B.k").ne(col("R.k"))),
            Access::Scan
        ));
        // Local constants don't create keys.
        assert!(matches!(block_access(&col("R.v").eq(lit(1))), Access::Scan));
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let plan = exists_chain(2);
        let e = estimate(&plan, &FixedStats).unwrap();
        assert!(e.rows.is_finite() && e.rows >= 0.0);
        assert!(e.cost.total().is_finite() && e.cost.total() > 0.0);
    }

    #[test]
    fn observed_cost_reads_the_stats_tree_back() {
        use crate::exec::{execute, ExecContext, MemoryCatalog};
        use gmdj_relation::relation::RelationBuilder;
        use gmdj_relation::schema::DataType;

        let mut b = RelationBuilder::new("B").column("k", DataType::Int);
        for i in 0..4i64 {
            b = b.row(vec![i.into()]);
        }
        let mut r = RelationBuilder::new("R").column("k", DataType::Int);
        for i in 0..10i64 {
            r = r.row(vec![(i % 4).into()]);
        }
        let catalog = MemoryCatalog::new()
            .with("B", b.build().unwrap())
            .with("R", r.build().unwrap());
        let expr = GmdjExpr::table("B", "B")
            .gmdj(
                GmdjExpr::table("R", "R"),
                GmdjSpec::new(vec![AggBlock::count(col("B.k").eq(col("R.k")), "c")]),
            )
            .select(col("c").gt(lit(0)));
        let mut ctx = ExecContext::new();
        execute(&expr, &catalog, &mut ctx).unwrap();
        let tree = ctx.plan_stats.as_ref().unwrap();
        let cost = observed_cost(tree);
        // 4 base rows + 10 detail rows scanned from tables, plus the GMDJ
        // streaming the 10 detail rows once.
        assert_eq!(cost.io, 24.0);
        assert!(cost.cpu > 0.0);
        assert_eq!(cost.memory, 4.0);
        assert!(cost.total().is_finite());
    }
}
