//! Distributed GMDJ evaluation — a coordinator/site simulation of the
//! strategy Section 6 points at ("the GMDJ operator is well-suited to
//! evaluation in a parallel or distributed DBMS environment [3]",
//! following Akinde, Böhlen, Johnson, Lakshmanan & Srivastava,
//! EDBT 2002).
//!
//! The detail relation lives horizontally fragmented across N sites (in a
//! distributed data warehouse each site already holds the detail tuples
//! it produced — e.g. flows observed by the local router). The
//! coordinator:
//!
//! 1. **broadcasts** the base-values relation (and the GMDJ spec) to every
//!    site;
//! 2. each site evaluates the GMDJ **locally** over its fragment,
//!    producing one partial accumulator per (base tuple, aggregate);
//! 3. sites ship their partial-aggregate matrices back;
//! 4. the coordinator **merges** them (exact for every supported
//!    aggregate, [`Accumulator::merge`]) and finalizes.
//!
//! The crucial property — the reason the GMDJ distributes so well — is
//! that network traffic is `O(sites × (|B| + |B|·aggs))`, *independent of
//! the detail cardinality*, where a join-based plan would ship detail
//! tuples. [`NetworkStats`] counts simulated traffic so tests and benches
//! can verify that claim.
//!
//! This module is the standalone coordinator simulation: sites finalize
//! their partial aggregates to *values* before shipping, which is why
//! non-decomposable aggregates (AVG, COUNT DISTINCT) are rejected here.
//! The unified execution pipeline ([`crate::runtime::Runtime`] with
//! [`crate::runtime::ExecMode::Distributed`]) runs the same two-wave
//! protocol but ships accumulator *state* and merges it exactly, so every
//! aggregate — including AVG and COUNT DISTINCT — distributes.

use gmdj_relation::agg::Accumulator;
use gmdj_relation::error::{Error, Result};
use gmdj_relation::relation::{Relation, Tuple};
use gmdj_relation::value::Value;

use crate::eval::{
    eval_gmdj, new_accumulators, plan_blocks, scan_detail_plain, scan_detail_vectorized, EvalStats,
    GmdjOptions, KernelStats,
};
use crate::spec::GmdjSpec;
use crate::trace::TraceEvent;

/// Network accounting. The closed-form counters (`broadcast_values`,
/// `collected_states`, `messages`) are transport-independent: they count
/// logical units ([`Value`]s, accumulator states, protocol frames) and
/// are byte-identical between the in-process simulation and real socket
/// sites. The `bytes_*` counters are physical: actual bytes moved over
/// the wire, zero under the in-process transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Values broadcast from the coordinator to the sites (base tuples ×
    /// sites).
    pub broadcast_values: u64,
    /// Partial-aggregate states shipped back from the sites.
    pub collected_states: u64,
    /// Data-bearing protocol frames, **two per site round-trip**: the
    /// broadcast wave out (base partition + spec) and the state wave
    /// back (partial accumulator matrix). The socket transport counts
    /// exactly these two frames per successful round-trip; its
    /// handshake frames are transport overhead and land only in the
    /// byte counters.
    pub messages: u64,
    /// Bytes written to the sites by the socket transport (handshake,
    /// broadcast frames, across all attempts). Zero in-process.
    pub bytes_sent: u64,
    /// Bytes read back from the sites by the socket transport. Zero
    /// in-process.
    pub bytes_received: u64,
}

impl NetworkStats {
    /// Total shipped logical units (values + states; bytes excluded —
    /// they measure the same traffic in a different unit).
    pub fn total(&self) -> u64 {
        self.broadcast_values + self.collected_states
    }

    /// Fold another counter block into this one (used when rolling up a
    /// per-plan-node statistics tree, [`crate::runtime::PlanNodeStats`]).
    pub fn merge(&mut self, other: &NetworkStats) {
        self.broadcast_values += other.broadcast_values;
        self.collected_states += other.collected_states;
        self.messages += other.messages;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }

    /// Field-wise difference `self − earlier`: the traffic delta
    /// attributable to a span that snapshotted `earlier` at entry.
    pub fn minus(&self, earlier: &NetworkStats) -> NetworkStats {
        NetworkStats {
            broadcast_values: self.broadcast_values - earlier.broadcast_values,
            collected_states: self.collected_states - earlier.collected_states,
            messages: self.messages - earlier.messages,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
        }
    }

    /// The counters as named trace-span fields.
    pub fn trace_fields(&self) -> [(&'static str, u64); 5] {
        [
            ("broadcast_values", self.broadcast_values),
            ("bytes_received", self.bytes_received),
            ("bytes_sent", self.bytes_sent),
            ("collected_states", self.collected_states),
            ("messages", self.messages),
        ]
    }
}

/// One site of the simulated warehouse: a named fragment of the detail
/// relation.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    pub fragment: Relation,
}

/// A distributed detail relation plus the coordinator's evaluation logic.
#[derive(Debug)]
pub struct DistributedWarehouse {
    sites: Vec<Site>,
}

impl DistributedWarehouse {
    /// Assemble from explicit fragments (every fragment must share a
    /// schema arity).
    pub fn new(sites: Vec<Site>) -> Result<Self> {
        if sites.is_empty() {
            return Err(Error::invalid(
                "a distributed warehouse needs at least one site",
            ));
        }
        let arity = sites[0].fragment.schema().len();
        for s in &sites {
            if s.fragment.schema().len() != arity {
                return Err(Error::invalid(format!(
                    "site {} fragment arity differs",
                    s.name
                )));
            }
        }
        Ok(DistributedWarehouse { sites })
    }

    /// Round-robin fragmentation of a detail relation across `n` sites —
    /// the synthetic stand-in for "each router keeps its own flows".
    pub fn fragment_round_robin(detail: &Relation, n: usize) -> Result<Self> {
        let n = n.max(1);
        let mut rows: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        for (i, row) in detail.rows().iter().enumerate() {
            rows[i % n].push(row.clone());
        }
        let sites = rows
            .into_iter()
            .enumerate()
            .map(|(i, r)| Site {
                name: format!("site{i}"),
                fragment: Relation::from_parts(detail.schema().clone(), r),
            })
            .collect();
        DistributedWarehouse::new(sites)
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total detail tuples across all fragments.
    pub fn total_detail_rows(&self) -> usize {
        self.sites.iter().map(|s| s.fragment.len()).sum()
    }

    /// Coordinator evaluation of `MD(base, detail, spec)` where `detail`
    /// is the union of the site fragments. Returns the result plus the
    /// combined evaluation statistics and the simulated network traffic.
    pub fn eval_gmdj(
        &self,
        base: &Relation,
        spec: &GmdjSpec,
        opts: &GmdjOptions,
    ) -> Result<(Relation, EvalStats, NetworkStats)> {
        let mut net = NetworkStats::default();
        let mut eval_stats = EvalStats::default();
        let total_aggs = spec.agg_count();

        // Wave 1: broadcast the base-values relation.
        net.messages += self.sites.len() as u64;
        net.broadcast_values += (self.sites.len() * base.len() * base.schema().len()) as u64;

        // Local evaluation per site. Each site's partial result is the
        // GMDJ over its fragment; we reconstruct the partial accumulators
        // from it for the merge. (A real deployment ships accumulator
        // state directly; re-running `update` over the produced values is
        // equivalent for decomposable aggregates because a partial GMDJ
        // output *is* the accumulator state rendered as values — counts,
        // partial sums, partial minima. AVG is the one aggregate whose
        // state (sum, n) is not recoverable from its output, so it is
        // rejected here rather than silently mis-merged.)
        for block in &spec.blocks {
            for agg in &block.aggs {
                use gmdj_relation::agg::AggFunc;
                if matches!(agg.func, AggFunc::Avg | AggFunc::CountDistinct) {
                    return Err(Error::invalid(format!(
                        "{} cannot be merged from partial outputs in this simulation \
                         (its partial state is not its output); decompose AVG into \
                         SUM and COUNT, or ship distinct values explicitly",
                        agg.func
                    )));
                }
            }
        }

        let mut merged: Option<Vec<Accumulator>> = None;
        for site in &self.sites {
            let mut local_stats = EvalStats::default();
            let local = eval_gmdj(base, &site.fragment, spec, opts, &mut local_stats)?;
            eval_stats.merge(&local_stats);
            // Wave 2: ship |B| × aggs partial states back.
            net.messages += 1;
            net.collected_states += (base.len() * total_aggs) as u64;

            // Fold the site's partial outputs into the merged accumulators.
            let mut site_accs: Vec<Accumulator> = Vec::with_capacity(base.len() * total_aggs);
            for row in local.rows() {
                let mut k = base.schema().len();
                for block in &spec.blocks {
                    for agg in &block.aggs {
                        let mut acc = Accumulator::new(agg.func);
                        absorb_partial(&mut acc, agg.func, &row[k]);
                        site_accs.push(acc);
                        k += 1;
                    }
                }
            }
            match &mut merged {
                None => merged = Some(site_accs),
                Some(m) => {
                    for (a, b) in m.iter_mut().zip(&site_accs) {
                        a.merge(b);
                    }
                }
            }
        }
        let merged = merged.expect("at least one site");

        // Finalize at the coordinator.
        let out_schema = spec.output_schema(base.schema());
        let mut rows = Vec::with_capacity(base.len());
        for (b_idx, b_row) in base.rows().iter().enumerate() {
            let mut full: Vec<Value> = Vec::with_capacity(b_row.len() + total_aggs);
            full.extend(b_row.iter().cloned());
            let start = b_idx * total_aggs;
            for acc in &merged[start..start + total_aggs] {
                full.push(acc.finish());
            }
            rows.push(full.into_boxed_slice());
        }
        Ok((Relation::from_parts(out_schema, rows), eval_stats, net))
    }
}

/// Load a partial aggregate *output value* back into accumulator state.
/// Valid exactly for the decomposable aggregates (COUNT/SUM/MIN/MAX).
fn absorb_partial(acc: &mut Accumulator, func: gmdj_relation::agg::AggFunc, v: &Value) {
    use gmdj_relation::agg::AggFunc;
    match func {
        AggFunc::CountStar => {
            *acc = Accumulator::CountStar {
                n: v.as_i64().unwrap_or(0),
            };
        }
        AggFunc::Count => {
            *acc = Accumulator::Count {
                n: v.as_i64().unwrap_or(0),
            };
        }
        // SUM/MIN/MAX: the partial output is a single absorbable value
        // (NULL partials over empty fragments are skipped by `update`).
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => acc.update(v),
        AggFunc::Avg | AggFunc::CountDistinct => unreachable!("rejected before evaluation"),
    }
}

// ---------------------------------------------------------------------
// Site transports: how the unified runtime reaches its sites
// ---------------------------------------------------------------------

/// One coordinator→site evaluation request: the broadcast wave. The base
/// partition and the spec travel to the site; the detail fragment does
/// not — the site already owns it (in a distributed warehouse each site
/// holds the detail tuples it produced), which is precisely why GMDJ
/// traffic is independent of detail cardinality.
#[derive(Debug)]
pub struct SiteEvalRequest<'a> {
    /// Base partition rows (at most `ExecPolicy::partition_rows`).
    pub base: &'a [Tuple],
    /// Schema of the base partition.
    pub base_schema: &'a gmdj_relation::schema::Schema,
    /// The GMDJ to evaluate locally.
    pub spec: &'a GmdjSpec,
    /// Evaluator options (probe choice, vectorization).
    pub opts: &'a GmdjOptions,
    /// Aggregates per base row, `spec.agg_count()`.
    pub total_aggs: usize,
    /// Cross-process trace context: the coordinator evaluation this
    /// request belongs to ([`crate::trace::next_trace_id`]).
    pub query_id: u64,
    /// The coordinator `site.roundtrip` span id this request rides under.
    pub parent_span: u64,
    /// Whether the site should collect and ship its span deltas back
    /// (the coordinator's sink is enabled). Wall-clock and counters ship
    /// either way.
    pub trace: bool,
}

/// One site→coordinator reply: the state wave. Partial accumulator state
/// (not finalized values), which is what makes the coordinator merge
/// exact for every aggregate including AVG and COUNT DISTINCT.
#[derive(Debug)]
pub struct SiteEvalResponse {
    /// `base.len() × total_aggs` partial accumulators, row-major.
    pub accs: Vec<Accumulator>,
    /// The site's local evaluator counters (probe index builds
    /// included), merged into the coordinator's running totals.
    pub stats: EvalStats,
    /// The site's kernel dispatch mix.
    pub kernel: KernelStats,
    /// Detail rows in the site's fragment (progress accounting).
    pub fragment_rows: u64,
    /// Bytes the transport wrote for this round-trip (all attempts).
    /// Zero for the in-process transport.
    pub bytes_sent: u64,
    /// Bytes the transport read back. Zero in-process.
    pub bytes_received: u64,
    /// Attempts the round-trip took (1 = no retries).
    pub attempts: u64,
    /// Site-local evaluation wall-clock (the `site.eval` span), on the
    /// site's own monotonic clock — a duration, never an absolute time.
    pub site_wall_ns: u64,
    /// The site executor's span deltas for the *successful* attempt,
    /// shipped back alongside the state matrix and stitched under the
    /// coordinator's `site.roundtrip` span. Empty when the request did
    /// not ask for tracing. Failed attempts never contribute spans —
    /// their sink dies with the attempt — so stitched trees count site
    /// work exactly once.
    pub spans: Vec<TraceEvent>,
}

/// How the distributed runtime reaches site `0..site_count()`. The
/// in-process implementation calls [`eval_site_fragment`] directly; the
/// socket implementation ([`crate::wire::TcpSites`]) speaks the
/// length-prefixed frame protocol to a listener that calls the same
/// function — which is what keeps every gated counter byte-identical
/// between the two transports.
pub trait SiteTransport {
    /// Number of sites this transport fans out to.
    fn site_count(&self) -> usize;
    /// Span detail for site `site`'s `site.roundtrip` span.
    fn site_label(&self, site: usize) -> String;
    /// One two-wave round-trip: ship the request, evaluate at the site,
    /// return the partial state matrix. Must either succeed, or fail
    /// with a diagnostic naming the site — never hang.
    fn eval_partition(
        &mut self,
        site: usize,
        req: &SiteEvalRequest<'_>,
    ) -> Result<SiteEvalResponse>;
}

/// The site-local evaluation both transports share: plan probe blocks
/// over the broadcast base partition, scan the owned fragment, return
/// partial accumulator state. Counter semantics are identical to the
/// sequential evaluator's inner loop; `stats.index_builds` counts per
/// (partition, site) because every site builds its own probe indexes
/// over the broadcast partition.
pub(crate) fn eval_site_fragment(
    base: &[Tuple],
    base_schema: &gmdj_relation::schema::Schema,
    fragment: &Relation,
    spec: &GmdjSpec,
    opts: &GmdjOptions,
    total_aggs: usize,
    sink: &dyn crate::trace::TraceSink,
) -> Result<(Vec<Accumulator>, EvalStats, KernelStats)> {
    let mut stats = EvalStats::default();
    let mut kernel = KernelStats::default();
    let plans = plan_blocks(base, base_schema, fragment.schema(), spec, opts, &mut stats)?;
    let mut accs = new_accumulators(&plans, base.len(), total_aggs);
    if opts.vectorized {
        scan_detail_vectorized(
            fragment.cols(),
            0..fragment.len(),
            &plans,
            base,
            total_aggs,
            &mut accs,
            &mut stats,
            &mut kernel,
            sink,
        )?;
    } else {
        scan_detail_plain(
            fragment.rows(),
            &plans,
            base,
            total_aggs,
            &mut accs,
            &mut stats,
        )?;
        kernel.morsels += 1;
    }
    Ok((accs, stats, kernel))
}

/// Everything one traced site evaluation produces: the state matrix,
/// the counters, the measured site wall-clock and the span deltas to
/// ship. Both transports produce this via [`eval_site_fragment_traced`],
/// so the coordinator stitches one shape regardless of the wire.
pub(crate) struct TracedSiteEval {
    pub accs: Vec<Accumulator>,
    pub stats: EvalStats,
    pub kernel: KernelStats,
    /// `site.eval` span duration on the site's monotonic clock.
    pub wall_ns: u64,
    /// Spans recorded during this evaluation (empty unless `collect`),
    /// `site.eval` last.
    pub spans: Vec<TraceEvent>,
}

/// [`eval_site_fragment`] wrapped in a per-attempt `site.eval` span.
/// The span sink lives and dies with the attempt: a faulted attempt's
/// spans are dropped with it and can never reach the coordinator, which
/// is what makes stitched trees exactly-once under retries. `flight` is
/// the site's own always-on recorder (socket sites; `None` in-process —
/// the coordinator's ring sees the stitched copy instead).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_site_fragment_traced(
    base: &[Tuple],
    base_schema: &gmdj_relation::schema::Schema,
    fragment: &Relation,
    spec: &GmdjSpec,
    opts: &GmdjOptions,
    total_aggs: usize,
    site: usize,
    attempt: u32,
    query_id: u64,
    parent_span: u64,
    collect: bool,
    flight: Option<&std::sync::Arc<crate::trace::FlightRecorder>>,
) -> Result<TracedSiteEval> {
    use crate::trace::{CollectingSink, NullSink, Span, TeeSink, TraceSink};
    use std::sync::Arc;

    let collecting = Arc::new(CollectingSink::new());
    let primary: Arc<dyn TraceSink> = if collect {
        collecting.clone()
    } else {
        Arc::new(NullSink)
    };
    let sink: Arc<dyn TraceSink> = match flight {
        Some(f) => Arc::new(TeeSink::new(primary, f.clone())),
        None => primary,
    };
    let mut sspan = Span::begin(sink.as_ref(), "site.eval").with_detail(format!("site{site}"));
    let (accs, stats, kernel) = eval_site_fragment(
        base,
        base_schema,
        fragment,
        spec,
        opts,
        total_aggs,
        sink.as_ref(),
    )?;
    sspan.field("site", site as u64);
    sspan.field("attempt", attempt as u64);
    sspan.field("fragment_rows", fragment.len() as u64);
    sspan.field("query_id", query_id);
    sspan.field("parent_span", parent_span);
    sspan.fields(stats.trace_fields());
    let wall_ns = sspan.finish().as_nanos() as u64;
    Ok(TracedSiteEval {
        accs,
        stats,
        kernel,
        wall_ns,
        spans: collecting.take(),
    })
}

// ---------------------------------------------------------------------
// Process-global per-site observations: the `/sites` surface
// ---------------------------------------------------------------------

/// One coordinator-side observation of a completed site round-trip — the
/// durations-only decomposition the coordinator can measure without
/// comparing clocks across processes: its own wall-clock around the
/// round-trip, the site's shipped wall-clock (a duration on the site's
/// monotonic clock), and the coordinator's merge time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteRoundtrip {
    /// Coordinator wall-clock, request written → state matrix read.
    pub roundtrip_ns: u64,
    /// Site-local evaluation wall-clock (shipped `site.eval` duration).
    pub site_wall_ns: u64,
    /// Coordinator time merging this site's accumulator states.
    pub merge_ns: u64,
    /// Detail rows the site scanned this round-trip.
    pub rows_scanned: u64,
    /// Detail rows in the site's fragment.
    pub fragment_rows: u64,
    /// Wire bytes written to the site (all attempts; zero in-process).
    pub bytes_sent: u64,
    /// Wire bytes read back (zero in-process).
    pub bytes_received: u64,
    /// Attempts the round-trip took (1 = no retries).
    pub attempts: u64,
}

/// Running totals for one site index across every query this process has
/// coordinated.
#[derive(Debug, Clone, Default)]
struct SiteTotals {
    label: String,
    roundtrips: u64,
    sum: SiteRoundtrip,
}

fn site_store() -> &'static std::sync::Mutex<std::collections::BTreeMap<usize, SiteTotals>> {
    static STORE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::BTreeMap<usize, SiteTotals>>,
    > = std::sync::OnceLock::new();
    STORE.get_or_init(|| std::sync::Mutex::new(std::collections::BTreeMap::new()))
}

/// Fold one completed round-trip into the process-global per-site totals
/// (both transports; called by the coordinator's scan loop). The most
/// recent label wins — a site index that was in-process in one query and
/// socket-backed in the next reports its latest address.
pub fn record_site_roundtrip(site: usize, label: &str, obs: SiteRoundtrip) {
    let mut store = site_store().lock().expect("site stats poisoned");
    let t = store.entry(site).or_default();
    t.label = label.to_string();
    t.roundtrips += 1;
    t.sum.roundtrip_ns += obs.roundtrip_ns;
    t.sum.site_wall_ns += obs.site_wall_ns;
    t.sum.merge_ns += obs.merge_ns;
    t.sum.rows_scanned += obs.rows_scanned;
    t.sum.fragment_rows = obs.fragment_rows;
    t.sum.bytes_sent += obs.bytes_sent;
    t.sum.bytes_received += obs.bytes_received;
    t.sum.attempts += obs.attempts;
}

/// The per-site totals as one deterministic JSON object (sites in index
/// order, fixed key order) — the body of the `/sites` endpoint and the
/// shell's `\sites json`.
pub fn sites_json() -> String {
    let store = site_store().lock().expect("site stats poisoned");
    let mut out = String::from("{\"sites\":[");
    for (i, (site, t)) in store.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":{},\"label\":\"{}\",\"roundtrips\":{},\
             \"attempts\":{},\"roundtrip_ns\":{},\"site_wall_ns\":{},\
             \"merge_ns\":{},\"rows_scanned\":{},\"fragment_rows\":{},\
             \"bytes_sent\":{},\"bytes_received\":{}}}",
            site,
            crate::trace::json_escape(&t.label),
            t.roundtrips,
            t.sum.attempts,
            t.sum.roundtrip_ns,
            t.sum.site_wall_ns,
            t.sum.merge_ns,
            t.sum.rows_scanned,
            t.sum.fragment_rows,
            t.sum.bytes_sent,
            t.sum.bytes_received,
        ));
    }
    out.push_str("]}");
    out
}

/// Human-readable rendering of the per-site totals, one line per site
/// (the shell's `\sites`).
pub fn sites_text() -> String {
    let store = site_store().lock().expect("site stats poisoned");
    if store.is_empty() {
        return "no site round-trips recorded\n".to_string();
    }
    let mut out = String::new();
    for (site, t) in store.iter() {
        out.push_str(&format!(
            "site{} ({}) roundtrips={} attempts={} rt={:.3}ms site={:.3}ms \
             wire={:.3}ms merge={:.3}ms rows={} frag={} bytes[sent={} recv={}]\n",
            site,
            t.label,
            t.roundtrips,
            t.sum.attempts,
            t.sum.roundtrip_ns as f64 / 1e6,
            t.sum.site_wall_ns as f64 / 1e6,
            t.sum.roundtrip_ns.saturating_sub(t.sum.site_wall_ns) as f64 / 1e6,
            t.sum.merge_ns as f64 / 1e6,
            t.sum.rows_scanned,
            t.sum.fragment_rows,
            t.sum.bytes_sent,
            t.sum.bytes_received,
        ));
    }
    out
}

/// The in-process transport: sites are plain function calls over
/// fragments held by the coordinator. This is the default for
/// `ExecMode::Distributed` — a deterministic simulation with the exact
/// counter semantics of the real protocol and zero byte traffic.
pub struct InProcessSites {
    fragments: Vec<Relation>,
    sink: std::sync::Arc<dyn crate::trace::TraceSink>,
}

impl InProcessSites {
    /// One site per fragment, tracing kernel spans into `sink`.
    pub fn new(
        fragments: Vec<Relation>,
        sink: std::sync::Arc<dyn crate::trace::TraceSink>,
    ) -> Self {
        InProcessSites { fragments, sink }
    }
}

impl SiteTransport for InProcessSites {
    fn site_count(&self) -> usize {
        self.fragments.len()
    }

    fn site_label(&self, site: usize) -> String {
        format!("site{site}")
    }

    fn eval_partition(
        &mut self,
        site: usize,
        req: &SiteEvalRequest<'_>,
    ) -> Result<SiteEvalResponse> {
        let frag = &self.fragments[site];
        // Collect-and-ship exactly like the socket transport: the site's
        // spans come back in the response and the coordinator stitches
        // them, so the trace tree has one shape for both transports and
        // site work is never double-recorded.
        let traced = eval_site_fragment_traced(
            req.base,
            req.base_schema,
            frag,
            req.spec,
            req.opts,
            req.total_aggs,
            site,
            0,
            req.query_id,
            req.parent_span,
            req.trace || self.sink.is_enabled(),
            None,
        )?;
        Ok(SiteEvalResponse {
            accs: traced.accs,
            stats: traced.stats,
            kernel: traced.kernel,
            fragment_rows: frag.len() as u64,
            bytes_sent: 0,
            bytes_received: 0,
            attempts: 1,
            site_wall_ns: traced.wall_ns,
            spans: traced.spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::agg::{AggFunc, NamedAgg};
    use gmdj_relation::expr::{col, lit, Predicate};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;

    fn base() -> Relation {
        RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .row(vec![2.into()])
            .row(vec![3.into()])
            .build()
            .unwrap()
    }

    fn detail(n: usize) -> Relation {
        let mut b = RelationBuilder::new("R")
            .column("k", DataType::Int)
            .column("v", DataType::Int);
        for i in 0..n {
            b = b.row(vec![((i % 4) as i64).into(), (i as i64).into()]);
        }
        b.build().unwrap()
    }

    fn spec() -> GmdjSpec {
        GmdjSpec::new(vec![
            AggBlock::count(col("B.k").eq(col("R.k")), "cnt"),
            AggBlock::new(
                col("B.k").eq(col("R.k")).and(col("R.v").ge(lit(10))),
                vec![
                    NamedAgg::sum(col("R.v"), "s"),
                    NamedAgg::new(AggFunc::Max, col("R.v"), "m"),
                ],
            ),
        ])
    }

    #[test]
    fn distributed_equals_centralized_for_any_site_count() {
        let d = detail(97);
        for sites in [1usize, 2, 3, 7] {
            let wh = DistributedWarehouse::fragment_round_robin(&d, sites).unwrap();
            assert_eq!(wh.site_count(), sites);
            assert_eq!(wh.total_detail_rows(), 97);
            let (dist, _, net) = wh
                .eval_gmdj(&base(), &spec(), &GmdjOptions::default())
                .unwrap();
            let mut st = EvalStats::default();
            let central =
                eval_gmdj(&base(), &d, &spec(), &GmdjOptions::default(), &mut st).unwrap();
            assert!(dist.multiset_eq(&central), "{sites} sites");
            // Two message waves per site.
            assert_eq!(net.messages, 2 * sites as u64);
        }
    }

    #[test]
    fn network_traffic_is_independent_of_detail_size() {
        let wh_small = DistributedWarehouse::fragment_round_robin(&detail(40), 4).unwrap();
        let wh_large = DistributedWarehouse::fragment_round_robin(&detail(4000), 4).unwrap();
        let (_, _, net_small) = wh_small
            .eval_gmdj(&base(), &spec(), &GmdjOptions::default())
            .unwrap();
        let (_, _, net_large) = wh_large
            .eval_gmdj(&base(), &spec(), &GmdjOptions::default())
            .unwrap();
        // 100× more detail tuples, identical traffic: the GMDJ ships base
        // tuples out and aggregate states back, never detail tuples.
        assert_eq!(net_small.total(), net_large.total());
        assert!(net_large.total() > 0);
    }

    #[test]
    fn avg_is_rejected_with_guidance() {
        let d = detail(10);
        let wh = DistributedWarehouse::fragment_round_robin(&d, 2).unwrap();
        let bad = GmdjSpec::new(vec![AggBlock::new(
            Predicate::true_(),
            vec![NamedAgg::new(AggFunc::Avg, col("R.v"), "a")],
        )]);
        let err = wh
            .eval_gmdj(&base(), &bad, &GmdjOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("SUM and COUNT"));
    }

    #[test]
    fn empty_fragments_are_fine() {
        // More sites than tuples: some fragments are empty.
        let d = detail(3);
        let wh = DistributedWarehouse::fragment_round_robin(&d, 8).unwrap();
        let (dist, _, _) = wh
            .eval_gmdj(&base(), &spec(), &GmdjOptions::default())
            .unwrap();
        let mut st = EvalStats::default();
        let central = eval_gmdj(&base(), &d, &spec(), &GmdjOptions::default(), &mut st).unwrap();
        assert!(dist.multiset_eq(&central));
    }

    #[test]
    fn mismatched_fragment_schemas_rejected() {
        let a = detail(4);
        let b = base(); // different arity
        let err = DistributedWarehouse::new(vec![
            Site {
                name: "a".into(),
                fragment: a,
            },
            Site {
                name: "b".into(),
                fragment: b,
            },
        ])
        .unwrap_err();
        assert!(err.to_string().contains("arity"));
        assert!(DistributedWarehouse::new(vec![]).is_err());
    }
}
