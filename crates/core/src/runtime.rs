//! The unified execution pipeline: one way to run a GMDJ, whatever the
//! physical execution mode.
//!
//! A [`Runtime`] owns an [`ExecPolicy`] — sequential, partitioned,
//! parallel, or distributed — constructed once per query and threaded
//! through plan walking ([`crate::exec::execute`]), GMDJ evaluation, and
//! the relational operators. Call sites never pick an evaluator function
//! themselves; they hand the (filtered) GMDJ to [`Runtime::eval`] and the
//! policy decides:
//!
//! * **Sequential** — the reference single-scan evaluator
//!   ([`crate::eval::eval_gmdj_filtered`]), including base-tuple
//!   completion (Theorems 4.1/4.2) when a [`CompletionPlan`] is supplied.
//! * **Parallel { threads }** — the detail relation is dealt out as
//!   morsels from a shared atomic cursor; `threads` OS workers pull
//!   morsels until the queue runs dry, each folding into a private
//!   accumulator matrix, and the workers are merged exactly
//!   ([`Accumulator::merge`](gmdj_relation::agg::Accumulator::merge)), so
//!   results are bit-identical to sequential for every aggregate.
//! * **Distributed { sites }** — the detail relation is horizontally
//!   fragmented round-robin across simulated sites; the coordinator
//!   broadcasts each base partition, sites evaluate locally and ship
//!   accumulator *state* back, and the coordinator merges. Shipping state
//!   (rather than finalized partial values, as the standalone
//!   [`crate::distributed`] coordinator does) makes every aggregate —
//!   including AVG and COUNT DISTINCT — distribute exactly, and keeps
//!   network traffic independent of the detail cardinality.
//!
//! All three modes honor `partition_rows`: when the base-values relation
//! exceeds the memory budget it is split into resident partitions and the
//! detail is scanned once per partition, exactly like the sequential
//! evaluator — so [`EvalStats::partitions`] and
//! [`EvalStats::detail_scanned`] mean the same thing under every mode.
//!
//! # Completion under parallelism
//!
//! Base-tuple completion is scan-order-dependent: a dead rule or the
//! finish-early rule fires at the detail tuple that proves the selection's
//! outcome, and "the rest of the scan" is then skipped *for that base
//! tuple*. Chunked scans have no single scan order, and a tuple completed
//! in one chunk would still be probed by the others, so completion under
//! `Parallel`/`Distributed` would need dead-tuple pruning at chunk-merge
//! barriers to save any work. Completion never changes the *answer* — it
//! is purely a pruning optimization (a tuple goes `Dead` only when the
//! selection is provably false, `Done` only when the output row is already
//! determined) — so the runtime takes the simple, always-correct route:
//! it evaluates the plain filtered form and records the skipped plan in
//! [`EvalStats::completion_fallbacks`]. The cost model can read the flag
//! back and prefer sequential execution when completion is expected to
//! prune aggressively.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gmdj_relation::agg::Accumulator;
use gmdj_relation::columnar::COLUMN_CHUNK_ROWS;
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::Predicate;
use gmdj_relation::ops::OpStats;
use gmdj_relation::relation::{Relation, Tuple};

use crate::completion::CompletionPlan;
use crate::distributed::{InProcessSites, NetworkStats, SiteEvalRequest, SiteTransport};
use crate::eval::{
    eval_gmdj_filtered_full, materialize_filtered, new_accumulators, plan_blocks,
    referenced_detail_cols, scan_detail_plain, scan_detail_vectorized, EvalStats, GmdjOptions,
    Keep, KernelStats, ProbeStrategy,
};
use crate::metrics;
use crate::progress::QueryProgress;
use crate::spec::GmdjSpec;
use crate::trace::{NullSink, Span, TraceSink};

/// Physical execution mode for GMDJ evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded reference evaluator (with completion support).
    #[default]
    Sequential,
    /// Chunk the detail scan across `threads` OS threads.
    Parallel {
        /// Worker thread count (must be ≥ 1).
        threads: usize,
    },
    /// Simulate `sites` warehouse sites holding round-robin fragments of
    /// the detail relation; merge accumulator state at the coordinator.
    Distributed {
        /// Site count (must be ≥ 1).
        sites: usize,
    },
}

/// Default morsel size for the parallel detail scan, in detail rows.
/// Four column chunks: big enough that queue traffic (one atomic
/// `fetch_add` per morsel) is noise, small enough that skewed morsels
/// rebalance across workers.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// How a plan executes: the one policy object threaded through plan
/// walking, GMDJ evaluation, and the relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Physical execution mode.
    pub mode: ExecMode,
    /// Probe plan selection for GMDJ blocks.
    pub probe: ProbeStrategy,
    /// Maximum number of base tuples resident per detail scan (the memory
    /// budget of Section 4's partitioned evaluation). `None` keeps the
    /// whole base-values relation in memory.
    pub partition_rows: Option<usize>,
    /// Run the detail scan through the columnar batch kernels when a
    /// probe shape specializes (default). The kernels are counter-exact
    /// and bit-exact with the row path; switching this off is an
    /// ablation axis, not a semantic choice.
    pub vectorized: bool,
    /// Morsel size (detail rows) for the parallel scan's work queue.
    /// `None` uses [`DEFAULT_MORSEL_ROWS`]. Morsel size is pure
    /// scheduling: every gated [`EvalStats`] counter and the result
    /// multiset are identical for every setting — it only moves where
    /// worker time is spent, which is what the bench ablation measures.
    pub morsel_size: Option<usize>,
    /// Run `ExecMode::Distributed` over real socket-backed sites
    /// ([`crate::wire`]) instead of the in-process transport. Pure
    /// transport choice: sites evaluate the identical kernel path, so
    /// every gated counter and the result multiset are unchanged — only
    /// the `bytes_sent` / `bytes_received` counters (zero in-process)
    /// and wall-clock move. Deliberately absent from [`Self::label`],
    /// which keys bench baseline entries.
    pub real_sites: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            mode: ExecMode::default(),
            probe: ProbeStrategy::default(),
            partition_rows: None,
            vectorized: true,
            morsel_size: None,
            real_sites: false,
        }
    }
}

impl ExecPolicy {
    /// The default policy: sequential, auto probe, unpartitioned.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel policy with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self {
            mode: ExecMode::Parallel { threads },
            ..Self::default()
        }
    }

    /// Distributed policy with `sites` simulated sites.
    pub fn distributed(sites: usize) -> Self {
        Self {
            mode: ExecMode::Distributed { sites },
            ..Self::default()
        }
    }

    /// Override the probe strategy.
    pub fn with_probe(mut self, probe: ProbeStrategy) -> Self {
        self.probe = probe;
        self
    }

    /// Override the base-partition memory budget.
    pub fn with_partition_rows(mut self, rows: Option<usize>) -> Self {
        self.partition_rows = rows;
        self
    }

    /// Enable or disable the vectorized detail-scan kernels.
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// Override the parallel scan's morsel size (detail rows per queue
    /// pull). `None` restores [`DEFAULT_MORSEL_ROWS`].
    pub fn with_morsel_size(mut self, rows: Option<usize>) -> Self {
        self.morsel_size = rows;
        self
    }

    /// Choose the socket transport for `ExecMode::Distributed` sites.
    pub fn with_real_sites(mut self, real: bool) -> Self {
        self.real_sites = real;
        self
    }

    /// Stable, filename-safe label: `seq`, `par4`, `dist2`, with
    /// `+partN` / `+mN` suffixes for the memory budget and morsel size.
    /// Used by bench artifact names and the progress registry.
    pub fn label(&self) -> String {
        let mut label = match self.mode {
            ExecMode::Sequential => "seq".to_string(),
            ExecMode::Parallel { threads } => format!("par{threads}"),
            ExecMode::Distributed { sites } => format!("dist{sites}"),
        };
        if let Some(rows) = self.partition_rows {
            label.push_str(&format!("+part{rows}"));
        }
        if let Some(rows) = self.morsel_size {
            label.push_str(&format!("+m{rows}"));
        }
        label
    }

    /// Reject degenerate modes (`threads == 0`, `sites == 0`,
    /// `morsel_size == Some(0)`).
    pub fn validate(&self) -> Result<()> {
        if self.morsel_size == Some(0) {
            return Err(Error::invalid(
                "ExecPolicy::morsel_size must be at least one row",
            ));
        }
        match self.mode {
            ExecMode::Parallel { threads: 0 } => Err(Error::invalid(
                "ExecMode::Parallel requires at least one thread",
            )),
            ExecMode::Distributed { sites: 0 } => Err(Error::invalid(
                "ExecMode::Distributed requires at least one site",
            )),
            _ => Ok(()),
        }
    }

    /// The evaluator-level options this policy implies.
    pub(crate) fn gmdj_options(&self) -> GmdjOptions {
        GmdjOptions {
            probe: self.probe,
            partition_rows: self.partition_rows,
            vectorized: self.vectorized,
        }
    }
}

/// Per-plan-node statistics: one node per operator in the executed plan,
/// mirroring its shape. Leaf table scans record `scanned_rows`; relational
/// operators record row flow in `ops`; GMDJ nodes record evaluator work in
/// `eval` and (under `ExecMode::Distributed`) simulated traffic in
/// `network`. [`crate::cost::observed_cost`] reads the tree back into the
/// cost model's units.
#[derive(Debug, Clone, Default)]
pub struct PlanNodeStats {
    /// Operator label, e.g. `"GMDJ"`, `"Select"`, `"Table(orders)"`.
    pub label: String,
    /// Output cardinality of this node.
    pub rows_out: u64,
    /// Rows read from a stored table at this node (table-scan leaves).
    pub scanned_rows: u64,
    /// Row flow through the plain relational operators at this node.
    pub ops: OpStats,
    /// GMDJ evaluator work at this node.
    pub eval: EvalStats,
    /// Vectorized-kernel dispatch mix at this node: how much of the
    /// detail scan ran through the batch kernels vs the row fallback.
    /// Kept apart from [`EvalStats`] deliberately — the semantic
    /// counters are identical across execution modes and vectorization
    /// settings, while the kernel mix is a property of the physical path
    /// taken.
    pub kernel: KernelStats,
    /// Network traffic at this node (distributed mode): closed-form
    /// value counts for both transports, measured wire bytes under
    /// `ExecPolicy::real_sites`.
    pub network: NetworkStats,
    /// Wall-clock time executing this node, children included.
    pub elapsed_ns: u64,
    /// Number of times this node was executed.
    pub invocations: u64,
    /// Critical-path worker time: the slowest worker (or site) per
    /// partition, summed over partitions. Under `Parallel{threads}` the
    /// ratio `worker_wall_sum_ns / worker_wall_max_ns` is the achieved
    /// scan speedup.
    pub worker_wall_max_ns: u64,
    /// Total worker (or site) time across every chunk — the total work
    /// the scan represents, independent of how it was divided.
    pub worker_wall_sum_ns: u64,
    /// Per-site breakdown under `ExecMode::Distributed` (indexed by site,
    /// aggregated over base partitions); empty for the other modes.
    pub sites: Vec<SiteBreakdown>,
    /// Child operators, in plan order.
    pub children: Vec<PlanNodeStats>,
}

/// Per-site observed breakdown for one GMDJ node under
/// `ExecMode::Distributed`: the coordinator-side decomposition of each
/// site's round-trips into site compute, wire time, and coordinator merge
/// time, aggregated over base partitions. Durations only — the site
/// wall-clock is measured on the site's own monotonic clock and shipped
/// back as a duration, so no absolute timestamps are ever compared across
/// processes; wire time is derived as `roundtrip − site_wall`
/// (saturating, [`SiteBreakdown::wire_ns`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteBreakdown {
    /// Site index in the transport's fan-out order.
    pub site: u64,
    /// Transport label, e.g. `site0` (in-process) or the socket address.
    pub label: String,
    /// Round-trips to this site (one per base partition).
    pub roundtrips: u64,
    /// Attempts across those round-trips (`> roundtrips` means retries).
    pub attempts: u64,
    /// Coordinator wall-clock across the round-trips (request written →
    /// state matrix read), site compute and wire time included.
    pub roundtrip_ns: u64,
    /// Site-local evaluation wall-clock: the shipped `site.eval` span
    /// duration, on the site's own clock.
    pub site_wall_ns: u64,
    /// Coordinator time merging this site's accumulator states.
    pub merge_ns: u64,
    /// Detail rows the site scanned — its share of the gated
    /// `detail_scanned` counter, which the shares sum to exactly.
    pub rows_scanned: u64,
    /// Detail rows in the site's fragment.
    pub fragment_rows: u64,
    /// Wire bytes written to this site (all attempts; zero in-process).
    pub bytes_sent: u64,
    /// Wire bytes read back from this site (zero in-process).
    pub bytes_received: u64,
}

impl SiteBreakdown {
    /// Round-trip time not spent in site compute: wire transfer plus
    /// framing/handshake overhead. Saturating — the two durations come
    /// from different processes' clocks.
    pub fn wire_ns(&self) -> u64 {
        self.roundtrip_ns.saturating_sub(self.site_wall_ns)
    }
}

impl PlanNodeStats {
    /// A fresh node with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        PlanNodeStats {
            label: label.into(),
            ..PlanNodeStats::default()
        }
    }

    /// Evaluator work rolled up over this node and its subtree.
    pub fn total_eval(&self) -> EvalStats {
        let mut total = self.eval;
        for c in &self.children {
            total.merge(&c.total_eval());
        }
        total
    }

    /// Kernel dispatch mix rolled up over this node and its subtree.
    pub fn total_kernel(&self) -> KernelStats {
        let mut total = self.kernel;
        for c in &self.children {
            total.merge(&c.total_kernel());
        }
        total
    }

    /// Network traffic rolled up over this node and its subtree.
    pub fn total_network(&self) -> NetworkStats {
        let mut total = self.network;
        for c in &self.children {
            total.merge(&c.total_network());
        }
        total
    }

    /// Table rows scanned over this node and its subtree.
    pub fn total_scanned(&self) -> u64 {
        self.scanned_rows
            + self
                .children
                .iter()
                .map(PlanNodeStats::total_scanned)
                .sum::<u64>()
    }

    /// Operator row flow rolled up over this node and its subtree.
    pub fn total_ops(&self) -> OpStats {
        let mut total = self.ops;
        for c in &self.children {
            total.merge(&c.total_ops());
        }
        total
    }

    /// Indented one-line-per-node rendering of the tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.label);
        out.push_str(&format!(" [rows_out={}", self.rows_out));
        if self.scanned_rows > 0 {
            out.push_str(&format!(" scanned={}", self.scanned_rows));
        }
        if self.eval != EvalStats::default() {
            out.push_str(&format!(" eval_work={}", self.eval.work()));
        }
        if self.network != NetworkStats::default() {
            out.push_str(&format!(" net={}", self.network.total()));
        }
        out.push(']');
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Time spent in this node excluding its children (saturating: a
    /// parent measured around cheap children can round below their sum).
    pub fn self_time_ns(&self) -> u64 {
        let child: u64 = self.children.iter().map(|c| c.elapsed_ns).sum();
        self.elapsed_ns.saturating_sub(child)
    }

    /// EXPLAIN ANALYZE rendering: the plan tree annotated with wall-clock
    /// time (total and self), percentage of the root's time, a
    /// `predicted` column — the cost model's figure for the work each
    /// node recorded ([`crate::cost::observed_cost`], inclusive of
    /// children) and its share of the root's predicted cost, so a node
    /// whose predicted share diverges from its observed time share
    /// exposes cost-model error in place — row counts, and the per-node
    /// work counters.
    pub fn render_analyze(&self) -> String {
        let total = self.elapsed_ns.max(1);
        let total_cost = crate::cost::observed_cost(self)
            .total()
            .max(f64::MIN_POSITIVE);
        let mut out = String::new();
        self.render_analyze_into(0, total, total_cost, &mut out);
        out
    }

    fn render_analyze_into(&self, depth: usize, total_ns: u64, total_cost: f64, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let ms = self.elapsed_ns as f64 / 1e6;
        let pct = 100.0 * self.elapsed_ns as f64 / total_ns as f64;
        let cost = crate::cost::observed_cost(self).total();
        out.push_str(&format!(
            "{} [time={:.3}ms ({:.1}%) self={:.3}ms predicted={:.0} ({:.1}%) rows={}",
            self.label,
            ms,
            pct,
            self.self_time_ns() as f64 / 1e6,
            cost,
            100.0 * cost / total_cost,
            self.rows_out
        ));
        if self.scanned_rows > 0 {
            out.push_str(&format!(" scanned={}", self.scanned_rows));
        }
        let e = &self.eval;
        if *e != EvalStats::default() {
            out.push_str(&format!(
                " detail={} theta={} agg={} early={}",
                e.detail_scanned,
                e.theta_evals,
                e.agg_updates,
                e.dead_early + e.done_early
            ));
            if e.partitions > 1 {
                out.push_str(&format!(" partitions={}", e.partitions));
            }
            if e.completion_fallbacks > 0 {
                out.push_str(&format!(" fallbacks={}", e.completion_fallbacks));
            }
        }
        let k = &self.kernel;
        if *k != KernelStats::default() {
            out.push_str(&format!(
                " kernel[batches={} morsels={} vec={} row={}]",
                k.batches, k.morsels, k.rows_vectorized, k.rows_row_path
            ));
        }
        if self.network != NetworkStats::default() {
            out.push_str(&format!(
                " net={} msgs={}",
                self.network.total(),
                self.network.messages
            ));
            // Wire bytes appear only under the socket transport.
            if self.network.bytes_sent + self.network.bytes_received > 0 {
                out.push_str(&format!(
                    " bytes[sent={} recv={}]",
                    self.network.bytes_sent, self.network.bytes_received
                ));
            }
        }
        if self.worker_wall_sum_ns > 0 {
            out.push_str(&format!(
                " workers[crit={:.3}ms total={:.3}ms]",
                self.worker_wall_max_ns as f64 / 1e6,
                self.worker_wall_sum_ns as f64 / 1e6
            ));
        }
        out.push_str("]\n");
        // Distributed nodes: one indented line per site decomposing each
        // round-trip into site compute, wire time, and coordinator merge.
        for s in &self.sites {
            for _ in 0..depth + 1 {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} [rt={:.3}ms site={:.3}ms wire={:.3}ms merge={:.3}ms \
                 rows={} frag={} attempts={}",
                s.label,
                s.roundtrip_ns as f64 / 1e6,
                s.site_wall_ns as f64 / 1e6,
                s.wire_ns() as f64 / 1e6,
                s.merge_ns as f64 / 1e6,
                s.rows_scanned,
                s.fragment_rows,
                s.attempts
            ));
            if s.bytes_sent + s.bytes_received > 0 {
                out.push_str(&format!(
                    " bytes[sent={} recv={}]",
                    s.bytes_sent, s.bytes_received
                ));
            }
            out.push_str("]\n");
        }
        for c in &self.children {
            c.render_analyze_into(depth + 1, total_ns, total_cost, out);
        }
    }

    /// Machine-readable rendering of the annotated tree as one nested
    /// JSON object (the per-node stats persisted by `repro
    /// --profile-json`).
    pub fn to_json(&self) -> String {
        let e = &self.eval;
        let n = &self.network;
        let mut out = format!(
            "{{\"label\":\"{}\",\"rows_out\":{},\"scanned_rows\":{},\
             \"elapsed_ns\":{},\"self_ns\":{},\"invocations\":{},\
             \"worker_wall_max_ns\":{},\"worker_wall_sum_ns\":{},\
             \"ops\":{{\"rows_in\":{},\"rows_out\":{}}},\
             \"eval\":{{\"detail_scanned\":{},\"probe_candidates\":{},\
             \"theta_evals\":{},\"agg_updates\":{},\"base_rows\":{},\
             \"dead_early\":{},\"done_early\":{},\"index_builds\":{},\
             \"partitions\":{},\"completion_fallbacks\":{},\
             \"col_chunk_reads\":{},\"row_page_reads\":{}}},\
             \"kernel\":{{\"batches\":{},\"morsels\":{},\"rows_vectorized\":{},\
             \"rows_row_path\":{}}},\
             \"network\":{{\"broadcast_values\":{},\"bytes_received\":{},\
             \"bytes_sent\":{},\"collected_states\":{},\
             \"messages\":{}}}",
            crate::trace::json_escape(&self.label),
            self.rows_out,
            self.scanned_rows,
            self.elapsed_ns,
            self.self_time_ns(),
            self.invocations,
            self.worker_wall_max_ns,
            self.worker_wall_sum_ns,
            self.ops.rows_in,
            self.ops.rows_out,
            e.detail_scanned,
            e.probe_candidates,
            e.theta_evals,
            e.agg_updates,
            e.base_rows,
            e.dead_early,
            e.done_early,
            e.index_builds,
            e.partitions,
            e.completion_fallbacks,
            e.col_chunk_reads,
            e.row_page_reads,
            self.kernel.batches,
            self.kernel.morsels,
            self.kernel.rows_vectorized,
            self.kernel.rows_row_path,
            n.broadcast_values,
            n.bytes_received,
            n.bytes_sent,
            n.collected_states,
            n.messages,
        );
        // Per-site breakdown: present exactly when the node ran
        // distributed (mirrors the render; absent otherwise so
        // non-distributed profiles are unchanged).
        if !self.sites.is_empty() {
            out.push_str(",\"sites\":[");
            for (i, s) in self.sites.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"site\":{},\"label\":\"{}\",\"roundtrips\":{},\
                     \"attempts\":{},\"roundtrip_ns\":{},\"site_wall_ns\":{},\
                     \"merge_ns\":{},\"rows_scanned\":{},\"fragment_rows\":{},\
                     \"bytes_sent\":{},\"bytes_received\":{}}}",
                    s.site,
                    crate::trace::json_escape(&s.label),
                    s.roundtrips,
                    s.attempts,
                    s.roundtrip_ns,
                    s.site_wall_ns,
                    s.merge_ns,
                    s.rows_scanned,
                    s.fragment_rows,
                    s.bytes_sent,
                    s.bytes_received,
                ));
            }
            out.push(']');
        }
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The execution engine: an [`ExecPolicy`] plus the dispatch that makes
/// it the single entry point for (filtered) GMDJ evaluation. The runtime
/// carries a [`TraceSink`]; every evaluation emits a `gmdj.eval` span
/// whose counter fields are the exact delta recorded into the node, and
/// the mode-specific scans emit `gmdj.partition` / `gmdj.worker` /
/// `site.roundtrip` spans beneath it.
#[derive(Debug, Clone)]
pub struct Runtime {
    policy: ExecPolicy,
    sink: Arc<dyn TraceSink>,
    progress: Option<Arc<QueryProgress>>,
    shared: Option<Arc<crate::shared::SharedScanPool>>,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime {
            policy: ExecPolicy::default(),
            sink: Arc::new(NullSink),
            progress: None,
            shared: None,
        }
    }
}

impl Runtime {
    /// A runtime executing under `policy`, tracing to nowhere.
    pub fn new(policy: ExecPolicy) -> Self {
        Runtime {
            policy,
            sink: Arc::new(NullSink),
            progress: None,
            shared: None,
        }
    }

    /// A runtime executing under `policy`, emitting spans into `sink`.
    pub fn with_sink(policy: ExecPolicy, sink: Arc<dyn TraceSink>) -> Self {
        Runtime {
            policy,
            sink,
            progress: None,
            shared: None,
        }
    }

    /// Attach a live progress handle: every evaluation announces its
    /// closed-form morsel schedule up front and the scan loops tick
    /// completed morsels/rows into it (relaxed atomics; see
    /// [`crate::progress`]).
    pub fn with_progress(mut self, progress: Arc<QueryProgress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Attach a cross-query shared-scan pool: [`Runtime::submit`] routes
    /// shareable evaluations through it so concurrently submitted GMDJs
    /// over the same detail table coalesce into one morsel pass (see
    /// [`crate::shared`]). [`Runtime::eval`] is unaffected.
    pub fn with_shared_pool(mut self, pool: Arc<crate::shared::SharedScanPool>) -> Self {
        self.shared = Some(pool);
        self
    }

    /// The shared-scan pool submissions coalesce through, if attached.
    pub fn shared_pool(&self) -> Option<&Arc<crate::shared::SharedScanPool>> {
        self.shared.as_ref()
    }

    /// The default sequential runtime.
    pub fn sequential() -> Self {
        Runtime::default()
    }

    /// The policy this runtime executes under.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The trace sink this runtime emits spans into.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The progress handle evaluations feed, if one is attached.
    pub fn progress(&self) -> Option<&Arc<QueryProgress>> {
        self.progress.as_ref()
    }

    /// Closed-form number of scheduling morsels one evaluation will
    /// complete — known before any worker starts, which is what makes
    /// progress a true fraction. Per base partition: the sequential scan
    /// runs one detail pass, the parallel queue deals
    /// `ceil(detail / morsel)` morsels (zero for an empty detail: the
    /// workers break before pulling), and the distributed coordinator
    /// round-trips every site once.
    fn scheduled_morsels(&self, base_len: usize, detail_len: usize) -> u64 {
        let partition = self.policy.partition_rows.unwrap_or(usize::MAX).max(1);
        let partitions = if base_len == 0 {
            1
        } else {
            base_len.div_ceil(partition)
        } as u64;
        let per_partition = match self.policy.mode {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { .. } => {
                let morsel = self
                    .policy
                    .morsel_size
                    .unwrap_or(DEFAULT_MORSEL_ROWS)
                    .max(1)
                    .min(detail_len.max(1));
                detail_len.div_ceil(morsel) as u64
            }
            ExecMode::Distributed { sites } => sites.max(1) as u64,
        };
        partitions * per_partition
    }

    /// Plain GMDJ: `MD(base, detail, spec)` under the policy. Work
    /// counters, network traffic and worker timing land in `node`.
    pub fn eval_gmdj(
        &self,
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        node: &mut PlanNodeStats,
    ) -> Result<Relation> {
        self.eval(base, detail, spec, None, Keep::All, None, node)
    }

    /// Filtered GMDJ: `π[keep](σ[selection](MD(base, detail, spec)))`
    /// under the policy. This is the one evaluation entry point — the
    /// mode decides sequential, parallel, or distributed execution, and
    /// every mode returns bit-identical results. Counters accumulate
    /// into `node` ([`PlanNodeStats::eval`] / [`PlanNodeStats::network`]
    /// plus the worker wall-clock fields), a `gmdj.eval` span carrying
    /// the same deltas goes to the sink, and the global
    /// [`metrics`] registry receives the cross-query totals.
    #[allow(clippy::too_many_arguments)]
    pub fn eval(
        &self,
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        selection: Option<&Predicate>,
        keep: Keep,
        completion: Option<&CompletionPlan>,
        node: &mut PlanNodeStats,
    ) -> Result<Relation> {
        self.policy.validate()?;
        if let Some(p) = &self.progress {
            p.add_morsels_total(self.scheduled_morsels(base.len(), detail.len()));
        }
        let eval_before = node.eval;
        let net_before = node.network;
        let span = Span::begin(self.sink.as_ref(), "gmdj.eval");
        let result = match self.policy.mode {
            ExecMode::Sequential => eval_gmdj_filtered_full(
                base,
                detail,
                spec,
                selection,
                keep,
                completion,
                &self.policy.gmdj_options(),
                &mut node.eval,
                &mut node.kernel,
                self.sink.as_ref(),
                self.progress.as_deref(),
            ),
            ExecMode::Parallel { threads } => self.eval_chunked(
                base,
                detail,
                spec,
                selection,
                keep,
                completion,
                node,
                |cx| cx.scan_parallel(threads),
            ),
            ExecMode::Distributed { sites } => {
                let fragments = round_robin_fragments(detail, sites);
                if self.policy.real_sites {
                    // Real sites: each fragment is owned by a socket
                    // site executor from the start (the paper's model —
                    // detail tuples live at the site that produced them;
                    // only base tuples and accumulator states cross the
                    // wire).
                    let cluster = crate::wire::SiteCluster::spawn(fragments)?;
                    let mut transport = crate::wire::TcpSites::new(cluster.addrs().to_vec());
                    self.eval_chunked(
                        base,
                        detail,
                        spec,
                        selection,
                        keep,
                        completion,
                        node,
                        |cx| cx.scan_sites(&mut transport),
                    )
                } else {
                    let mut transport = InProcessSites::new(fragments, self.sink.clone());
                    self.eval_chunked(
                        base,
                        detail,
                        spec,
                        selection,
                        keep,
                        completion,
                        node,
                        |cx| cx.scan_sites(&mut transport),
                    )
                }
            }
        }?;
        let eval_delta = node.eval.minus(&eval_before);
        let net_delta = node.network.minus(&net_before);
        let mut span = span;
        span.fields(eval_delta.trace_fields());
        span.fields(net_delta.trace_fields());
        let dur = span.finish();
        node.invocations += 1;
        node.elapsed_ns += dur.as_nanos() as u64;

        let m = metrics::global();
        m.inc("gmdj_evals_total", 1);
        m.inc("gmdj_detail_scanned_total", eval_delta.detail_scanned);
        m.inc("gmdj_probe_candidates_total", eval_delta.probe_candidates);
        m.inc("gmdj_theta_evals_total", eval_delta.theta_evals);
        m.inc("gmdj_agg_updates_total", eval_delta.agg_updates);
        m.inc(
            "completion_fallbacks_total",
            eval_delta.completion_fallbacks,
        );
        m.inc("network_broadcast_values_total", net_delta.broadcast_values);
        m.inc("network_collected_states_total", net_delta.collected_states);
        m.inc("network_messages_total", net_delta.messages);
        m.inc("network_bytes_sent_total", net_delta.bytes_sent);
        m.inc("network_bytes_received_total", net_delta.bytes_received);
        m.observe("gmdj_eval_latency_us", dur.as_micros() as u64);
        Ok(result)
    }

    /// Concurrent submission entry point: like [`Runtime::eval`], but
    /// when a shared-scan pool is attached ([`Runtime::with_shared_pool`])
    /// and the policy is shareable (in-process, unpartitioned), the
    /// evaluation routes through the pool where concurrently submitted
    /// GMDJs over the same detail table coalesce — per the extended
    /// Prop. 4.1 — into one shared morsel-driven detail pass (see
    /// [`crate::shared`]). Without a pool, or for distributed /
    /// memory-partitioned policies, this is exactly [`Runtime::eval`]:
    /// standalone execution stays byte-identical and sharing only
    /// engages on concurrent submission.
    ///
    /// The per-query counters recorded into `node` are identical to what
    /// `eval` would record (logical accounting); the physical
    /// amortization shows up only in the pool's `shared_scan_*` metrics
    /// and the `gmdj.shared_scan` span.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        selection: Option<&Predicate>,
        keep: Keep,
        completion: Option<&CompletionPlan>,
        node: &mut PlanNodeStats,
    ) -> Result<Relation> {
        let pool = match &self.shared {
            Some(pool)
                if !matches!(self.policy.mode, ExecMode::Distributed { .. })
                    && self.policy.partition_rows.is_none() =>
            {
                pool
            }
            _ => return self.eval(base, detail, spec, selection, keep, completion, node),
        };
        self.policy.validate()?;
        if completion.is_some() && selection.is_none() {
            return Err(Error::invalid("completion plan requires a selection"));
        }
        let sched = pool.scheduled_morsels(detail.len());
        if let Some(p) = &self.progress {
            p.add_morsels_total(sched);
            p.set_state("coalescing");
        }
        let span = Span::begin(self.sink.as_ref(), "gmdj.eval");
        let out = pool.submit(
            base,
            detail,
            spec,
            selection,
            keep,
            &self.policy.gmdj_options(),
            completion.is_some(),
            self.sink.as_ref(),
        );
        if let Some(p) = &self.progress {
            p.set_state("running");
        }
        let out = out?;
        if let Some(p) = &self.progress {
            p.add_morsels_done(sched);
            p.add_rows(detail.len() as u64);
        }
        node.eval.merge(&out.eval);
        node.kernel.merge(&out.kernel);
        node.worker_wall_max_ns = node.worker_wall_max_ns.max(out.worker_max_ns);
        node.worker_wall_sum_ns += out.worker_sum_ns;
        let mut span = span;
        span.fields(out.eval.trace_fields());
        span.field("shared_queries", out.pass_queries);
        let dur = span.finish();
        node.invocations += 1;
        node.elapsed_ns += dur.as_nanos() as u64;

        let m = metrics::global();
        m.inc("gmdj_evals_total", 1);
        m.inc("gmdj_detail_scanned_total", out.eval.detail_scanned);
        m.inc("gmdj_probe_candidates_total", out.eval.probe_candidates);
        m.inc("gmdj_theta_evals_total", out.eval.theta_evals);
        m.inc("gmdj_agg_updates_total", out.eval.agg_updates);
        m.inc("completion_fallbacks_total", out.eval.completion_fallbacks);
        m.observe("gmdj_eval_latency_us", dur.as_micros() as u64);
        Ok(out.relation)
    }

    /// Shared driver for the merge-based modes: partition the base by the
    /// memory budget, build probe plans per partition, run a mode-specific
    /// detail scan that fills a merged accumulator matrix, then
    /// materialize with selection and projection — the same outer loop
    /// and counter semantics as the sequential evaluator. Each partition
    /// is emitted as a `gmdj.partition` span with its exact counter
    /// delta; worker/site wall-clock lands in the node's
    /// `worker_wall_max_ns` (critical path) and `worker_wall_sum_ns`
    /// (total work).
    #[allow(clippy::too_many_arguments)]
    fn eval_chunked(
        &self,
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        selection: Option<&Predicate>,
        keep: Keep,
        completion: Option<&CompletionPlan>,
        node: &mut PlanNodeStats,
        mut scan: impl FnMut(&mut PartitionCx) -> Result<ScanOutcome>,
    ) -> Result<Relation> {
        if completion.is_some() && selection.is_none() {
            return Err(Error::invalid("completion plan requires a selection"));
        }
        if completion.is_some() {
            // See the module docs: completion is scan-order-dependent, so
            // chunked scans run the plain filtered form. Same answer.
            node.eval.completion_fallbacks += 1;
        }
        let out_schema = spec.output_schema(base.schema());
        let result_schema = match keep {
            Keep::All => out_schema.clone(),
            Keep::BaseOnly => base.schema().clone(),
        };
        let bound_selection = match selection {
            Some(p) => Some(p.bind(&[&out_schema])?),
            None => None,
        };
        let total_aggs = spec.agg_count();

        // Logical column-chunk I/O, closed-form like the sequential
        // evaluator: every partition pass reads each referenced detail
        // column's chunks once, however the scan is divided across
        // morsels, workers, or sites.
        let io_pages = detail.len().div_ceil(COLUMN_CHUNK_ROWS) as u64;
        let io_referenced = referenced_detail_cols(spec, base.schema(), detail.schema())? as u64;
        let io_schema_cols = detail.schema().len() as u64;

        let partition = self.policy.partition_rows.unwrap_or(usize::MAX).max(1);
        // One trace context per evaluation: rides the wire to the sites
        // and comes back echoed on their shipped `site.eval` spans, so a
        // stitched tree is attributable even across concurrent queries.
        let query_id = crate::trace::next_trace_id();
        let mut out_rows: Vec<Tuple> = Vec::new();
        let mut start = 0usize;
        while start < base.len() || (base.is_empty() && start == 0) {
            let end = (start + partition).min(base.len());
            let base_rows = &base.rows()[start..end];
            let before = node.eval;
            let pspan = Span::begin(self.sink.as_ref(), "gmdj.partition");
            node.eval.partitions += 1;
            node.eval.base_rows += base_rows.len() as u64;
            node.eval.col_chunk_reads += io_pages * io_referenced;
            node.eval.row_page_reads += io_pages * io_schema_cols;

            let mut cx = PartitionCx {
                base: base_rows,
                base_schema: base.schema(),
                detail,
                spec,
                opts: self.policy.gmdj_options(),
                morsel_rows: self
                    .policy
                    .morsel_size
                    .unwrap_or(DEFAULT_MORSEL_ROWS)
                    .max(1),
                total_aggs,
                query_id,
                stats: &mut node.eval,
                kernel: &mut node.kernel,
                network: &mut node.network,
                sites: &mut node.sites,
                sink: self.sink.as_ref(),
                progress: self.progress.as_deref(),
            };
            let outcome = scan(&mut cx)?;
            node.worker_wall_max_ns += outcome.worker_max_ns;
            node.worker_wall_sum_ns += outcome.worker_sum_ns;
            materialize_filtered(
                base_rows,
                &outcome.accs,
                total_aggs,
                bound_selection.as_ref(),
                keep,
                &mut out_rows,
            )?;
            let mut pspan = pspan;
            pspan.fields(node.eval.minus(&before).trace_fields());
            pspan.finish();
            start = end;
            if base.is_empty() {
                break;
            }
        }
        Ok(Relation::from_parts(result_schema, out_rows))
    }
}

/// Result of one mode-specific partition scan: the merged accumulator
/// matrix plus worker wall-clock (critical path and total).
struct ScanOutcome {
    accs: Vec<Accumulator>,
    worker_max_ns: u64,
    worker_sum_ns: u64,
}

/// Everything a mode-specific detail scan needs for one base partition.
struct PartitionCx<'a> {
    base: &'a [Tuple],
    base_schema: &'a gmdj_relation::schema::Schema,
    detail: &'a Relation,
    spec: &'a GmdjSpec,
    opts: GmdjOptions,
    morsel_rows: usize,
    total_aggs: usize,
    query_id: u64,
    stats: &'a mut EvalStats,
    kernel: &'a mut KernelStats,
    network: &'a mut NetworkStats,
    sites: &'a mut Vec<SiteBreakdown>,
    sink: &'a dyn TraceSink,
    progress: Option<&'a QueryProgress>,
}

impl PartitionCx<'_> {
    /// Morsel-driven parallel scan: a shared atomic cursor deals the
    /// detail out in morsels of `morsel_rows`; `threads` scoped workers
    /// pull morsels until the queue runs dry, each folding into a private
    /// accumulator matrix; merge exactly in worker order. Pull-based
    /// scheduling is self-balancing — a worker stuck on a skewed morsel
    /// simply pulls fewer, instead of stranding the rest of a
    /// statically-assigned range. Worker panics and errors both surface
    /// as `Err` — never a process abort. Each worker is emitted as a
    /// `gmdj.worker` span carrying its private counter delta plus the
    /// rows and morsels it pulled, so summed worker spans reconcile
    /// exactly with the merged scan counters.
    fn scan_parallel(&mut self, threads: usize) -> Result<ScanOutcome> {
        let plans = plan_blocks(
            self.base,
            self.base_schema,
            self.detail.schema(),
            self.spec,
            &self.opts,
            self.stats,
        )?;
        let detail = self.detail;
        let detail_len = detail.len();
        let morsel = self.morsel_rows.min(detail_len.max(1));
        // No point spawning workers that can never pull a morsel; an
        // empty detail keeps one worker so the merge stays uniform.
        let n_morsels = detail_len.div_ceil(morsel).max(1);
        let workers = threads.min(n_morsels).max(1);
        let cursor = AtomicUsize::new(0);

        let base_rows = self.base;
        let total_aggs = self.total_aggs;
        let sink = self.sink;
        let progress = self.progress;
        let vectorized = self.opts.vectorized;
        // The row-path twin scans late-materialized tuples; build the row
        // view once, outside the scope, so workers share one cache.
        let detail_rows: Option<&[Tuple]> = if vectorized {
            None
        } else {
            Some(detail.rows())
        };
        type WorkerResult = Result<(Vec<Accumulator>, EvalStats, KernelStats, u64)>;
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let plans = &plans;
            let cursor = &cursor;
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    scope.spawn(move || -> WorkerResult {
                        let mut wspan =
                            Span::begin(sink, "gmdj.worker").with_detail(format!("worker{i}"));
                        let mut accs = new_accumulators(plans, base_rows.len(), total_aggs);
                        let mut local = EvalStats::default();
                        let mut local_kernel = KernelStats::default();
                        let mut rows_pulled = 0u64;
                        let mut morsels_pulled = 0u64;
                        loop {
                            let start = cursor.fetch_add(morsel, Ordering::Relaxed);
                            if start >= detail_len {
                                break;
                            }
                            let end = (start + morsel).min(detail_len);
                            // Chunked scans never carry a completion plan
                            // (it fell back above), so the vectorized
                            // path is always eligible here.
                            if vectorized {
                                scan_detail_vectorized(
                                    detail.cols(),
                                    start..end,
                                    plans,
                                    base_rows,
                                    total_aggs,
                                    &mut accs,
                                    &mut local,
                                    &mut local_kernel,
                                    sink,
                                )?;
                            } else {
                                let rows = detail_rows.expect("row twin pre-materializes");
                                scan_detail_plain(
                                    &rows[start..end],
                                    plans,
                                    base_rows,
                                    total_aggs,
                                    &mut accs,
                                    &mut local,
                                )?;
                                local_kernel.morsels += 1;
                            }
                            rows_pulled += (end - start) as u64;
                            morsels_pulled += 1;
                            if let Some(p) = progress {
                                p.add_morsels_done(1);
                                p.add_rows((end - start) as u64);
                            }
                        }
                        wspan.field("chunk_rows", rows_pulled);
                        wspan.field("morsels", morsels_pulled);
                        wspan.fields(local.trace_fields());
                        let dur = wspan.finish();
                        Ok((accs, local, local_kernel, dur.as_nanos() as u64))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| Err(worker_panic_error(&payload)))
                })
                .collect()
        });

        let mut merged = new_accumulators(&plans, base_rows.len(), total_aggs);
        let mut worker_max_ns = 0u64;
        let mut worker_sum_ns = 0u64;
        for res in results {
            let (accs, local, local_kernel, wall_ns) = res?;
            self.stats.merge(&local);
            self.kernel.merge(&local_kernel);
            worker_max_ns = worker_max_ns.max(wall_ns);
            worker_sum_ns += wall_ns;
            for (m, a) in merged.iter_mut().zip(&accs) {
                m.merge(a);
            }
        }
        Ok(ScanOutcome {
            accs: merged,
            worker_max_ns,
            worker_sum_ns,
        })
    }

    /// Two-wave coordinator protocol over a [`SiteTransport`]: broadcast
    /// the base partition (plus the GMDJ spec and options), let each site
    /// scan its fragment locally, ship accumulator *state* back, merge
    /// exactly at the coordinator. Each site round-trip is one
    /// `site.roundtrip` span carrying the site's evaluator and network
    /// deltas. Both transports run the identical site-local evaluation —
    /// each site builds its own probe indexes over the broadcast base
    /// partition, so `index_builds` counts per (partition, site) here
    /// where sequential counts per partition — which keeps every gated
    /// counter byte-identical between the in-process and socket paths;
    /// only `bytes_sent` / `bytes_received` (zero in-process, measured
    /// on the wire) differ.
    fn scan_sites(&mut self, transport: &mut dyn SiteTransport) -> Result<ScanOutcome> {
        let mut merged: Option<Vec<Accumulator>> = None;
        let mut worker_max_ns = 0u64;
        let mut worker_sum_ns = 0u64;
        for site in 0..transport.site_count() {
            let eval_before = *self.stats;
            let net_before = *self.network;
            let label = transport.site_label(site);
            let mut sspan = Span::begin(self.sink, "site.roundtrip").with_detail(label.clone());
            // The trace context rides the broadcast wave: the site echoes
            // `query_id` / `parent_span` on its shipped `site.eval` span,
            // tying the remote events to this exact round-trip.
            let req = SiteEvalRequest {
                base: self.base,
                base_schema: self.base_schema,
                spec: self.spec,
                opts: &self.opts,
                total_aggs: self.total_aggs,
                query_id: self.query_id,
                parent_span: sspan.id(),
                trace: self.sink.is_enabled(),
            };
            let start = Instant::now();
            // Wave 1: base values (and the spec) to this site.
            self.network.messages += 1;
            self.network.broadcast_values += (self.base.len() * self.base_schema.len()) as u64;
            let resp = transport.eval_partition(site, &req)?;
            self.stats.merge(&resp.stats);
            self.kernel.merge(&resp.kernel);
            // Wave 2: accumulator states back to the coordinator. State
            // shipping is what lets AVG / COUNT DISTINCT distribute.
            self.network.messages += 1;
            self.network.collected_states += (self.base.len() * self.total_aggs) as u64;
            self.network.bytes_sent += resp.bytes_sent;
            self.network.bytes_received += resp.bytes_received;
            let wall_ns = start.elapsed().as_nanos() as u64;
            worker_max_ns = worker_max_ns.max(wall_ns);
            worker_sum_ns += wall_ns;
            // Stitch the site's shipped spans into the coordinator trace,
            // re-anchored inside this round-trip's window: durations are
            // site-measured and kept verbatim, while start offsets are
            // re-based so the earliest site event opens at the round-trip
            // start (the two processes' clocks are never compared).
            if self.sink.is_enabled() && !resp.spans.is_empty() {
                let min_start = resp.spans.iter().map(|e| e.start_ns).min().unwrap_or(0);
                let anchor = sspan.start_ns();
                for e in &resp.spans {
                    let mut e = e.clone();
                    e.start_ns = anchor + (e.start_ns - min_start);
                    self.sink.record(e);
                }
            }
            sspan.field("site", site as u64);
            sspan.field("attempt", resp.attempts);
            sspan.field("wall_ns", resp.site_wall_ns);
            sspan.fields(self.stats.minus(&eval_before).trace_fields());
            sspan.fields(self.network.minus(&net_before).trace_fields());
            sspan.finish();
            if let Some(p) = self.progress {
                // One progress morsel per site round-trip.
                p.add_morsels_done(1);
                p.add_rows(resp.fragment_rows);
            }
            let merge_start = Instant::now();
            match &mut merged {
                None => merged = Some(resp.accs),
                Some(m) => {
                    for (m, a) in m.iter_mut().zip(&resp.accs) {
                        m.merge(a);
                    }
                }
            }
            let merge_ns = merge_start.elapsed().as_nanos() as u64;
            if self.sites.len() <= site {
                self.sites.resize_with(site + 1, SiteBreakdown::default);
            }
            let b = &mut self.sites[site];
            b.site = site as u64;
            b.label = label.clone();
            b.roundtrips += 1;
            b.attempts += resp.attempts;
            b.roundtrip_ns += wall_ns;
            b.site_wall_ns += resp.site_wall_ns;
            b.merge_ns += merge_ns;
            b.rows_scanned += resp.stats.detail_scanned;
            b.fragment_rows = resp.fragment_rows;
            b.bytes_sent += resp.bytes_sent;
            b.bytes_received += resp.bytes_received;
            crate::distributed::record_site_roundtrip(
                site,
                &label,
                crate::distributed::SiteRoundtrip {
                    roundtrip_ns: wall_ns,
                    site_wall_ns: resp.site_wall_ns,
                    merge_ns,
                    rows_scanned: resp.stats.detail_scanned,
                    fragment_rows: resp.fragment_rows,
                    bytes_sent: resp.bytes_sent,
                    bytes_received: resp.bytes_received,
                    attempts: resp.attempts,
                },
            );
        }
        let accs = merged
            .ok_or_else(|| Error::invalid("ExecMode::Distributed requires at least one site"))?;
        Ok(ScanOutcome {
            accs,
            worker_max_ns,
            worker_sum_ns,
        })
    }
}

/// Round-robin horizontal fragmentation of the detail relation — in a
/// real warehouse each site already holds its fragment; round-robin keeps
/// the simulation deterministic. Fragments are gathered column-wise into
/// full columnar relations (sharing each string column's dictionary with
/// the parent), so every site scans its fragment through the same
/// vectorized kernels as local execution.
fn round_robin_fragments(detail: &Relation, sites: usize) -> Vec<Relation> {
    let sites = sites.max(1);
    let mut picks: Vec<Vec<usize>> = vec![Vec::new(); sites];
    for i in 0..detail.len() {
        picks[i % sites].push(i);
    }
    picks
        .into_iter()
        .map(|idx| {
            Relation::from_columns(
                detail.schema().clone(),
                Arc::new(detail.cols().gather(&idx)),
            )
        })
        .collect()
}

/// Turn a worker panic payload into an error value instead of poisoning
/// the whole process. The flight recorder's tail goes to stderr so the
/// spans leading up to the panic survive the unwind.
fn worker_panic_error(payload: &(dyn std::any::Any + Send)) -> Error {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    crate::trace::flight_dump_on_failure("worker panic");
    Error::invalid(format!("parallel GMDJ worker panicked: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::derive_completion;
    use crate::eval::{eval_gmdj, eval_gmdj_filtered};
    use crate::spec::AggBlock;
    use gmdj_relation::agg::{AggFunc, NamedAgg};
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn hours() -> Relation {
        RelationBuilder::new("H")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .row(vec![3.into(), 121.into(), 180.into()])
            .build()
            .unwrap()
    }

    fn flows() -> Relation {
        RelationBuilder::new("F")
            .column("StartTime", DataType::Int)
            .column("Protocol", DataType::Str)
            .column("NumBytes", DataType::Int)
            .row(vec![43.into(), "HTTP".into(), 12.into()])
            .row(vec![86.into(), "HTTP".into(), 36.into()])
            .row(vec![99.into(), "FTP".into(), 48.into()])
            .row(vec![132.into(), "HTTP".into(), 24.into()])
            .row(vec![156.into(), "HTTP".into(), 24.into()])
            .row(vec![161.into(), "FTP".into(), 48.into()])
            .build()
            .unwrap()
    }

    fn example_2_1_spec() -> GmdjSpec {
        let in_hour = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")));
        GmdjSpec::new(vec![
            AggBlock::new(
                in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
                vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
            ),
            AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
        ])
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let mut s1 = EvalStats::default();
        let expected = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        for threads in [1usize, 2, 3, 5] {
            let rt = Runtime::new(ExecPolicy::parallel(threads));
            let mut node = PlanNodeStats::new("GMDJ");
            let out = rt
                .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
                .unwrap();
            assert!(out.multiset_eq(&expected), "threads={threads}");
            // One logical scan of the detail relation, whatever the
            // thread count.
            assert_eq!(node.eval.detail_scanned, 6, "threads={threads}");
            assert_eq!(node.network, NetworkStats::default());
            assert_eq!(node.invocations, 1);
            assert!(node.worker_wall_sum_ns >= node.worker_wall_max_ns);
        }
    }

    #[test]
    fn parallel_stats_match_sequential_without_completion() {
        // With no completion plan every mode does exactly the same probe
        // and aggregate work — the counters agree, not just the answers.
        let mut s1 = EvalStats::default();
        let mut node = PlanNodeStats::new("GMDJ");
        eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        Runtime::new(ExecPolicy::parallel(3))
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap();
        assert_eq!(s1, node.eval);
    }

    #[test]
    fn parallel_honors_partition_rows() {
        let mut s1 = EvalStats::default();
        let expected = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        let rt = Runtime::new(ExecPolicy::parallel(2).with_partition_rows(Some(2)));
        let mut node = PlanNodeStats::new("GMDJ");
        let out = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap();
        assert!(out.multiset_eq(&expected));
        // 3 base rows at 2 per partition → 2 partitions → 2 detail scans.
        assert_eq!(node.eval.partitions, 2);
        assert_eq!(node.eval.detail_scanned, 12);
        assert_eq!(node.eval.base_rows, 3);
    }

    #[test]
    fn morsel_queue_adapts_workers_and_reconciles_spans() {
        use crate::trace::CollectingSink;
        let mut s1 = EvalStats::default();
        let expected = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        // 6 detail rows at 4-row morsels → 2 morsels, so only 2 of the 8
        // requested workers are spawned; together they scan every row
        // exactly once and the gated counters match sequential in full.
        let sink = Arc::new(CollectingSink::new());
        let rt = Runtime::with_sink(
            ExecPolicy::parallel(8).with_morsel_size(Some(4)),
            sink.clone(),
        );
        let mut node = PlanNodeStats::new("GMDJ");
        let out = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap();
        assert!(out.multiset_eq(&expected));
        assert_eq!(node.eval, s1);
        assert_eq!(sink.by_name("gmdj.worker").len(), 2);
        assert_eq!(sink.sum_field("gmdj.worker", "chunk_rows"), 6);
        assert_eq!(sink.sum_field("gmdj.worker", "morsels"), 2);
        assert_eq!(node.kernel.morsels, 2);

        // A whole-relation morsel degenerates to one worker doing all the
        // work — the skew the queue exists to avoid — without touching
        // anything gated.
        let sink = Arc::new(CollectingSink::new());
        let rt = Runtime::with_sink(
            ExecPolicy::parallel(8).with_morsel_size(Some(usize::MAX)),
            sink.clone(),
        );
        let mut node = PlanNodeStats::new("GMDJ");
        let out = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap();
        assert!(out.multiset_eq(&expected));
        assert_eq!(node.eval, s1);
        assert_eq!(sink.by_name("gmdj.worker").len(), 1);
        assert_eq!(sink.sum_field("gmdj.worker", "chunk_rows"), 6);
        assert_eq!(node.kernel.morsels, 1);

        // Single-row morsels: 6 morsels shared by the 3 requested
        // workers; each morsel is pulled exactly once no matter how the
        // workers race.
        let sink = Arc::new(CollectingSink::new());
        let rt = Runtime::with_sink(
            ExecPolicy::parallel(3).with_morsel_size(Some(1)),
            sink.clone(),
        );
        let mut node = PlanNodeStats::new("GMDJ");
        let out = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap();
        assert!(out.multiset_eq(&expected));
        assert_eq!(node.eval, s1);
        assert_eq!(sink.by_name("gmdj.worker").len(), 3);
        assert_eq!(sink.sum_field("gmdj.worker", "morsels"), 6);
        assert_eq!(sink.sum_field("gmdj.worker", "chunk_rows"), 6);
        assert_eq!(node.kernel.morsels, 6);
    }

    #[test]
    fn distributed_runtime_matches_sequential_including_avg() {
        // AVG and COUNT DISTINCT distribute under the runtime because it
        // ships accumulator state (the standalone coordinator rejects
        // them).
        let in_hour = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")));
        let spec = GmdjSpec::new(vec![AggBlock::new(
            in_hour,
            vec![
                NamedAgg::new(AggFunc::Avg, col("F.NumBytes"), "avg_bytes"),
                NamedAgg::new(AggFunc::CountDistinct, col("F.Protocol"), "protos"),
            ],
        )]);
        let mut s1 = EvalStats::default();
        let expected =
            eval_gmdj(&hours(), &flows(), &spec, &GmdjOptions::default(), &mut s1).unwrap();
        for sites in [1usize, 2, 4] {
            let rt = Runtime::new(ExecPolicy::distributed(sites));
            let mut node = PlanNodeStats::new("GMDJ");
            let out = rt.eval_gmdj(&hours(), &flows(), &spec, &mut node).unwrap();
            assert!(out.multiset_eq(&expected), "sites={sites}");
            // Two message waves; traffic independent of detail size.
            assert_eq!(node.network.messages, 2 * sites as u64);
            assert_eq!(node.network.broadcast_values, (sites * 3 * 3) as u64);
            assert_eq!(node.network.collected_states, (sites * 3 * 2) as u64);
            // The fragments partition the detail: one logical scan total.
            assert_eq!(node.eval.detail_scanned, 6);
        }
    }

    #[test]
    fn completion_falls_back_under_parallel_with_identical_answer() {
        // EXISTS shape: count per hour, keep hours with ≥ 1 HTTP flow.
        let in_hour = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")));
        let spec = GmdjSpec::new(vec![AggBlock::count(
            in_hour.and(col("F.Protocol").eq(lit("HTTP"))),
            "cnt",
        )]);
        let selection = col("cnt").gt(lit(0));
        let completion = derive_completion(&selection, &spec, true);
        assert!(
            completion.is_some(),
            "EXISTS shape should derive a completion plan"
        );

        let mut s1 = EvalStats::default();
        let seq = eval_gmdj_filtered(
            &hours(),
            &flows(),
            &spec,
            Some(&selection),
            Keep::BaseOnly,
            completion.as_ref(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();

        for threads in [1usize, 2, 8] {
            let rt = Runtime::new(ExecPolicy::parallel(threads));
            let mut node = PlanNodeStats::new("GMDJ");
            let par = rt
                .eval(
                    &hours(),
                    &flows(),
                    &spec,
                    Some(&selection),
                    Keep::BaseOnly,
                    completion.as_ref(),
                    &mut node,
                )
                .unwrap();
            assert!(par.multiset_eq(&seq), "threads={threads}");
            assert_eq!(node.eval.completion_fallbacks, 1, "threads={threads}");
            assert_eq!(node.eval.dead_early + node.eval.done_early, 0);
        }
    }

    #[test]
    fn empty_base_and_empty_detail_are_fine() {
        let empty_base = Relation::from_parts(hours().schema().clone(), vec![]);
        let empty_detail = Relation::from_parts(flows().schema().clone(), vec![]);
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy::parallel(4),
            ExecPolicy::distributed(3),
        ] {
            let rt = Runtime::new(policy);
            let mut node = PlanNodeStats::new("GMDJ");
            let out = rt
                .eval_gmdj(&empty_base, &flows(), &example_2_1_spec(), &mut node)
                .unwrap();
            assert!(out.is_empty(), "{policy:?}");
            let mut node = PlanNodeStats::new("GMDJ");
            let out = rt
                .eval_gmdj(&hours(), &empty_detail, &example_2_1_spec(), &mut node)
                .unwrap();
            // No detail → every aggregate finishes on its empty state.
            assert_eq!(out.len(), 3, "{policy:?}");
            for row in out.rows() {
                assert_eq!(row[3], Value::Null, "{policy:?}");
                assert_eq!(row[4], Value::Null, "{policy:?}");
            }
        }
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        let rt = Runtime::new(ExecPolicy::parallel(0));
        let mut node = PlanNodeStats::new("GMDJ");
        let err = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap_err();
        assert!(err.to_string().contains("at least one thread"), "{err}");
        let rt = Runtime::new(ExecPolicy::distributed(0));
        let err = rt
            .eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
            .unwrap_err();
        assert!(err.to_string().contains("at least one site"), "{err}");
    }

    #[test]
    fn progress_schedule_reconciles_under_every_mode() {
        use crate::progress::ProgressRegistry;
        let reg: &'static ProgressRegistry = Box::leak(Box::new(ProgressRegistry::new()));
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy::sequential().with_partition_rows(Some(2)),
            ExecPolicy::parallel(3).with_morsel_size(Some(2)),
            ExecPolicy::parallel(2).with_partition_rows(Some(1)),
            ExecPolicy::distributed(2),
            ExecPolicy::distributed(3).with_partition_rows(Some(2)),
        ] {
            let ticket = reg.register("q", "s", "p");
            let progress = ticket.progress();
            let rt = Runtime::new(policy).with_progress(progress.clone());
            let mut node = PlanNodeStats::new("GMDJ");
            rt.eval_gmdj(&hours(), &flows(), &example_2_1_spec(), &mut node)
                .unwrap();
            // Announced schedule fully consumed, never exceeded; rows
            // reconcile exactly with the gated scan counter.
            assert!(progress.morsels_total() > 0, "{policy:?}");
            assert_eq!(
                progress.morsels_done(),
                progress.morsels_total(),
                "{policy:?}"
            );
            assert_eq!(progress.rows_done(), node.eval.detail_scanned, "{policy:?}");
        }
        // Empty detail under the morsel queue: zero morsels scheduled,
        // zero pulled — the invariant holds degenerately.
        let empty_detail = Relation::from_parts(flows().schema().clone(), vec![]);
        let ticket = reg.register("q", "s", "p");
        let progress = ticket.progress();
        let rt = Runtime::new(ExecPolicy::parallel(4)).with_progress(progress.clone());
        let mut node = PlanNodeStats::new("GMDJ");
        rt.eval_gmdj(&hours(), &empty_detail, &example_2_1_spec(), &mut node)
            .unwrap();
        assert_eq!(progress.morsels_total(), 0);
        assert_eq!(progress.morsels_done(), 0);
    }

    #[test]
    fn plan_node_stats_roll_up() {
        let mut leaf = PlanNodeStats::new("Table(orders)");
        leaf.scanned_rows = 100;
        leaf.rows_out = 100;
        let mut gmdj = PlanNodeStats::new("GMDJ");
        gmdj.eval.detail_scanned = 100;
        gmdj.rows_out = 10;
        gmdj.children.push(leaf);
        let mut root = PlanNodeStats::new("Select");
        root.ops.record(10, 4);
        root.rows_out = 4;
        root.children.push(gmdj);

        assert_eq!(root.total_scanned(), 100);
        assert_eq!(root.total_eval().detail_scanned, 100);
        assert_eq!(root.total_ops().rows_in, 10);
        let text = root.render();
        assert!(text.contains("Select"), "{text}");
        assert!(text.contains("  GMDJ"), "{text}");
        assert!(text.contains("    Table(orders)"), "{text}");
    }
}
