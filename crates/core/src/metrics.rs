//! A process-wide metrics registry: named monotonic counters and
//! log₂-bucket histograms, rendered as Prometheus text or JSON.
//!
//! The [`Runtime`](crate::runtime::Runtime) reports evaluator work into
//! the [`global`] registry after every GMDJ evaluation
//! (`gmdj_detail_scanned_total`, `completion_fallbacks_total`,
//! `network_messages_total`, …) and the engine's strategy layer reports
//! query-level aggregates (`queries_total`, the `query_latency_us`
//! histogram). Cross-query dashboards — "how much detail did this
//! process scan, how did latency distribute" — read the registry; a
//! single query's breakdown comes from [`crate::trace`] instead.
//!
//! Metric keys are plain strings; Prometheus-style labels are part of
//! the key (e.g. `queries_total{strategy="gmdj-opt"}`), which keeps the
//! registry dependency-free while rendering correctly. Build labeled
//! keys with [`labeled`] — it escapes label values per the exposition
//! format (`\\`, `\"`, `\n`) — and the renderer splices histogram
//! suffixes *inside* the label set (`name_bucket{site="0",le="3"}`), so
//! per-site series like `site_frame_us{frame="hello",site="0"}` scrape
//! as proper label dimensions rather than opaque family names.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets: bucket `i` counts observations `v` with
/// `floor(log2(v)) + 1 == i` (zero lands in bucket 0), i.e. upper bound
/// `2^i − 1`. 64 buckets cover the full `u64` range.
const BUCKETS: usize = 65;

/// A log₂-bucket histogram: counts, total, and per-bucket tallies.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Index of the log₂ bucket for a value.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`).
fn bucket_upper(i: usize) -> u128 {
    (1u128 << i) - 1
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u128, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// Estimated quantile (`0.0 ..= 1.0`) from the log₂ buckets: walk the
    /// cumulative distribution to the bucket holding the q-th
    /// observation, then interpolate linearly inside the bucket's
    /// `[lower, upper]` value range. Exact for values that land alone in
    /// a bucket; otherwise within a factor of 2 (the bucket width).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 {
                    0u128
                } else {
                    bucket_upper(i - 1) + 1
                };
                let upper = bucket_upper(i);
                // Position of the target rank inside this bucket.
                let frac = (rank - seen) as f64 / c as f64;
                let width = (upper - lower) as f64;
                return (lower as f64 + width * frac).round() as u64;
            }
            seen += c;
        }
        bucket_upper(BUCKETS - 1).min(u64::MAX as u128) as u64
    }

    /// The standard dashboard quantiles `(p50, p95, p99)`.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters and histograms. Usually accessed through
/// [`global`], but independently constructible for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named monotonic counter (created at zero).
    pub fn inc(&self, name: &str, by: u64) {
        if by == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to an absolute value (created on first use).
    /// Unlike counters, gauges move both ways — they model levels
    /// (`queries_active`, ring-buffer loss) rather than totals.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Add `delta` (possibly negative) to the named gauge.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let g = inner.gauges.entry(name.to_string()).or_insert(0);
        *g = g.saturating_add(delta);
    }

    /// Increment the named gauge by one.
    pub fn gauge_inc(&self, name: &str) {
        self.gauge_add(name, 1);
    }

    /// Decrement the named gauge by one.
    pub fn gauge_dec(&self, name: &str) {
        self.gauge_add(name, -1);
    }

    /// Current value of a gauge (zero if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// Names of all registered counters, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .keys()
            .cloned()
            .collect()
    }

    /// Reset everything to empty (tests; the registry is process-global).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Prometheus text exposition: counters as `name value`, histograms
    /// as cumulative `_bucket{le="…"}` series plus quantile gauges and
    /// `_sum` / `_count`. Output order is fully deterministic — metric
    /// families sorted by name (`BTreeMap` iteration), one `# TYPE` line
    /// per family even when labeled variants share the base name — so
    /// two renders of the same registry state are byte-identical.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for (name, v) in &inner.counters {
            let family = base_name(name);
            if last_family.as_deref() != Some(family) {
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = Some(family.to_string());
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family = None;
        for (name, v) in &inner.gauges {
            let family = base_name(name);
            if last_family.as_deref() != Some(family) {
                out.push_str(&format!("# TYPE {family} gauge\n"));
                last_family = Some(family.to_string());
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family = None;
        for (name, h) in &inner.histograms {
            let (family, labels) = split_key(name);
            if last_family.as_deref() != Some(family) {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = Some(family.to_string());
            }
            // Histogram suffix series splice their extra label (`le`,
            // `quantile`) inside the key's own label set; `_sum` /
            // `_count` keep the key's labels verbatim.
            let with = |extra: &str| {
                if labels.is_empty() {
                    format!("{{{extra}}}")
                } else {
                    format!("{{{labels},{extra}}}")
                }
            };
            let plain = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let mut cumulative = 0u64;
            for (le, c) in h.nonzero_buckets() {
                cumulative += c;
                out.push_str(&format!(
                    "{family}_bucket{} {cumulative}\n",
                    with(&format!("le=\"{le}\""))
                ));
            }
            out.push_str(&format!(
                "{family}_bucket{} {}\n",
                with("le=\"+Inf\""),
                h.count()
            ));
            let (p50, p95, p99) = h.quantiles();
            out.push_str(&format!("{family}{} {p50}\n", with("quantile=\"0.5\"")));
            out.push_str(&format!("{family}{} {p95}\n", with("quantile=\"0.95\"")));
            out.push_str(&format!("{family}{} {p99}\n", with("quantile=\"0.99\"")));
            out.push_str(&format!(
                "{family}_sum{plain} {}\n{family}_count{plain} {}\n",
                h.sum(),
                h.count()
            ));
        }
        out
    }

    /// JSON rendering:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::trace::json_escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::trace::json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (p50, p95, p99) = h.quantiles();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"buckets\":[",
                crate::trace::json_escape(name),
                h.count(),
                h.sum()
            ));
            for (j, (le, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Strip a trailing `{labels}` suffix for the `# TYPE` line.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Split a metric key into `(family, labels)`, where `labels` is the
/// brace body (`k="v",…`) without braces — empty for unlabeled keys.
fn split_key(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Build a registry key `name{k="v",…}` with properly escaped label
/// values. Label order is preserved as given — callers keep it stable so
/// the same series maps to the same key every time.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// The process-wide registry every component reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = MetricsRegistry::new();
        m.inc("gmdj_detail_scanned_total", 10);
        m.inc("gmdj_detail_scanned_total", 5);
        m.inc("queries_total{strategy=\"gmdj-opt\"}", 1);
        assert_eq!(m.counter("gmdj_detail_scanned_total"), 15);
        assert_eq!(m.counter("missing"), 0);
        let text = m.render_prometheus();
        assert!(text.contains("gmdj_detail_scanned_total 15"));
        assert!(text.contains("# TYPE queries_total counter"));
        assert!(text.contains("queries_total{strategy=\"gmdj-opt\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let buckets = h.nonzero_buckets();
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 1000 → le 1023.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let m = MetricsRegistry::new();
        m.observe("query_latency_us", 1);
        m.observe("query_latency_us", 3);
        m.observe("query_latency_us", 3);
        let text = m.render_prometheus();
        assert!(text.contains("query_latency_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("query_latency_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("query_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("query_latency_us_sum 7"));
        assert!(text.contains("query_latency_us_count 3"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = h.quantiles();
        // Log₂ buckets bound the error by the bucket width (a factor of 2).
        assert!((32..=64).contains(&p50), "p50 = {p50}");
        assert!((64..=127).contains(&p95), "p95 = {p95}");
        assert!((64..=127).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        // A lone observation in its bucket is reported near-exactly.
        let mut lone = Histogram::default();
        lone.observe(1);
        assert_eq!(lone.quantile(0.5), 1);
        assert_eq!(lone.quantile(0.99), 1);
    }

    #[test]
    fn renders_include_quantiles() {
        let m = MetricsRegistry::new();
        m.observe("query_latency_us", 8);
        let text = m.render_prometheus();
        assert!(
            text.contains("query_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("query_latency_us{quantile=\"0.99\"}"),
            "{text}"
        );
        let json = m.render_json();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    #[test]
    fn prometheus_type_lines_dedupe_per_family() {
        let m = MetricsRegistry::new();
        m.inc("queries_total", 1);
        m.inc("queries_total{strategy=\"gmdj\"}", 1);
        m.inc("queries_total{strategy=\"native\"}", 1);
        let text = m.render_prometheus();
        assert_eq!(text.matches("# TYPE queries_total counter").count(), 1);
        // Two identical renders are byte-identical.
        assert_eq!(text, m.render_prometheus());
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let m = MetricsRegistry::new();
        m.inc("a_total", 2);
        m.observe("h", 4);
        let json = m.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a_total\":2"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":4"));
    }

    #[test]
    fn gauges_move_both_ways_and_render() {
        let m = MetricsRegistry::new();
        m.gauge_set("queries_active", 3);
        m.gauge_inc("queries_active");
        m.gauge_dec("queries_active");
        m.gauge_add("queries_active", -2);
        assert_eq!(m.gauge("queries_active"), 1);
        assert_eq!(m.gauge("missing"), 0);
        m.gauge_set("flight_recorder_dropped_events", 7);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE queries_active gauge"), "{text}");
        assert!(text.contains("queries_active 1"), "{text}");
        assert!(text.contains("flight_recorder_dropped_events 7"), "{text}");
        // Gauges render after counters, key-sorted, byte-stable.
        assert_eq!(text, m.render_prometheus());
        let json = m.render_json();
        assert!(
            json.contains("\"gauges\":{\"flight_recorder_dropped_events\":7,\"queries_active\":1}"),
            "{json}"
        );
    }

    #[test]
    fn gauge_type_lines_dedupe_per_family() {
        let m = MetricsRegistry::new();
        m.gauge_set("pool_size", 1);
        m.gauge_set("pool_size{kind=\"a\"}", 2);
        let text = m.render_prometheus();
        assert_eq!(text.matches("# TYPE pool_size gauge").count(), 1);
    }

    #[test]
    fn json_shape_keeps_counters_first() {
        let m = MetricsRegistry::new();
        m.inc("a_total", 1);
        m.gauge_set("g", -4);
        let json = m.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("},\"gauges\":{\"g\":-4},\"histograms\":{"));
    }

    #[test]
    fn reset_clears_everything() {
        let m = MetricsRegistry::new();
        m.inc("x", 1);
        m.gauge_set("g", 2);
        m.observe("y", 1);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.gauge("g"), 0);
        assert!(m.histogram("y").is_none());
        assert!(m.counter_names().is_empty());
    }

    #[test]
    fn labeled_histograms_render_prometheus_labels() {
        let m = MetricsRegistry::new();
        m.observe(
            &labeled("site_frame_us", &[("frame", "hello"), ("site", "0")]),
            3,
        );
        m.observe("site_frame_us", 5);
        let text = m.render_prometheus();
        // One family, two series: the labeled key's histogram suffixes
        // splice their extra label inside the label set.
        assert_eq!(text.matches("# TYPE site_frame_us histogram").count(), 1);
        assert!(
            text.contains("site_frame_us_bucket{frame=\"hello\",site=\"0\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("site_frame_us_bucket{frame=\"hello\",site=\"0\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("site_frame_us{frame=\"hello\",site=\"0\",quantile=\"0.5\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("site_frame_us_sum{frame=\"hello\",site=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("site_frame_us_count{frame=\"hello\",site=\"0\"} 1"),
            "{text}"
        );
        // The unlabeled twin keeps its bare-family rendering.
        assert!(text.contains("site_frame_us_sum 5"), "{text}");
        assert!(
            text.contains("site_frame_us_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert_eq!(text, m.render_prometheus());
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        // Unescape per the exposition format — the inverse of
        // `escape_label_value`, used here to prove the round trip.
        fn unescape(v: &str) -> String {
            let mut out = String::new();
            let mut chars = v.chars();
            while let Some(c) = chars.next() {
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some(other) => out.push(other),
                    None => {}
                }
            }
            out
        }
        let nasty = "we\"ird\\st\nrat";
        assert_eq!(unescape(&escape_label_value(nasty)), nasty);
        let key = labeled("queries_total", &[("strategy", nasty)]);
        assert_eq!(key, "queries_total{strategy=\"we\\\"ird\\\\st\\nrat\"}");
        let m = MetricsRegistry::new();
        m.inc(&key, 2);
        let text = m.render_prometheus();
        // The rendered line carries the escaped value on a single line
        // (the raw newline never leaks into the exposition).
        assert!(text.contains(&format!("{key} 2")), "{text}");
        assert!(text.contains("# TYPE queries_total counter"), "{text}");
        let rendered_value = text
            .lines()
            .find(|l| l.starts_with("queries_total{"))
            .and_then(|l| l.split("strategy=\"").nth(1))
            .and_then(|rest| rest.split("\"}").next())
            .unwrap();
        assert_eq!(unescape(rendered_value), nasty);
        assert!(labeled("plain", &[]) == "plain");
    }

    #[test]
    fn global_registry_is_shared() {
        global().inc("metrics_test_probe_total", 1);
        assert!(global().counter("metrics_test_probe_total") >= 1);
    }
}
