//! Socket transport for distributed GMDJ sites.
//!
//! [`crate::distributed::SiteTransport`] has two implementations: the
//! in-process simulation and this module's real one — N site executors,
//! each a thread owning a `TcpListener` over its detail fragment, and a
//! [`TcpSites`] client the coordinator drives. Both run the exact same
//! site-local evaluation ([`crate::distributed::eval_site_fragment`]),
//! so every gated counter is byte-identical between transports; only
//! the `bytes_sent` / `bytes_received` counters (and wall-clock) differ.
//!
//! # Frame format
//!
//! Every frame is an 11-byte header followed by a length-prefixed
//! payload, all integers little-endian:
//!
//! | offset | size | field                                |
//! |--------|------|--------------------------------------|
//! | 0      | 4    | magic `b"GMDJ"`                      |
//! | 4      | 2    | protocol version ([`WIRE_VERSION`])  |
//! | 6      | 1    | frame type                           |
//! | 7      | 4    | payload length (≤ [`MAX_FRAME_LEN`]) |
//!
//! Frame types: `Hello` / `HelloAck` (handshake, site id echo),
//! `EvalRequest` (broadcast wave: base partition + spec + options +
//! the cross-process trace context — query id, parent `site.roundtrip`
//! span id, attempt number), `StateMatrix` (state wave: partial
//! accumulators + site counters + the site's `site.eval` wall-clock and
//! span deltas + a byte-count echo of the request the site read),
//! `Error` (site-local evaluation failure — **not** retryable; the same
//! query would fail everywhere), and `FlightRequest` / `FlightTail`
//! (post-mortem fetch of a site's flight-recorder tail, used by the
//! coordinator after retry exhaustion).
//!
//! # Cross-process tracing
//!
//! Site executors run each attempt under their own `CollectingSink`
//! (plus a per-site always-on [`crate::trace::FlightRecorder`]), and the
//! `StateMatrix` wave carries the successful attempt's span deltas back.
//! Span start offsets are site-monotonic and meaningless on the
//! coordinator's clock, so the coordinator re-anchors them inside its
//! `site.roundtrip` window when stitching (durations only — no absolute
//! timestamps cross the boundary). A failed attempt's sink dies with the
//! attempt, so its spans can never reach the stitched tree: retried site
//! work is counted exactly once. Decoded span names and field keys are
//! re-interned against [`crate::trace::WIRE_INTERN_TABLE`]; unknown
//! strings are decode errors.
//!
//! Decoding is strict: bad magic, unknown version or frame type,
//! lengths beyond [`MAX_FRAME_LEN`], truncated payloads, expression
//! trees deeper than [`MAX_DEPTH`], and trailing payload bytes are all
//! rejected — a garbled length prefix can therefore cost at most one
//! bounded read, never an unbounded allocation or a hang.
//!
//! # Robustness model
//!
//! One TCP connection per round-trip: connect (bounded by
//! `connect_timeout`) → `Hello`/`HelloAck` → `EvalRequest` →
//! `StateMatrix` | `Error` → close, every socket read/write bounded by
//! `io_timeout`. Connect failures, I/O timeouts and decode errors are
//! *retryable*: the coordinator backs off linearly and retries up to
//! `max_attempts` times, then fails the query with a diagnostic carrying
//! the full per-attempt error chain (error, elapsed, backoff applied) —
//! after fetching the failing site's flight-recorder tail over the wire
//! and dumping it next to the coordinator's own. A remote
//! `Error` frame is *non-retryable* — it is a deterministic evaluation
//! error, not a transport fault. Faults injected via [`FaultPlan`] are
//! keyed on the attempt number carried in the request, which makes
//! chaos tests deterministic: a `FirstAttemptOnly` fault must recover
//! via retry, an `Always` fault must exhaust retries and name the site.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gmdj_relation::agg::{Accumulator, AggFunc, NamedAgg};
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::relation::{Relation, Tuple};
use gmdj_relation::schema::{ColumnRef, DataType, Field, Schema};
use gmdj_relation::value::{Truth, Value};

use crate::distributed::{
    eval_site_fragment_traced, SiteEvalRequest, SiteEvalResponse, SiteTransport,
};
use crate::eval::{EvalStats, GmdjOptions, KernelStats, ProbeStrategy};
use crate::metrics;
use crate::spec::{AggBlock, GmdjSpec};
use crate::trace::{intern_static, FlightRecorder, TraceEvent, FLIGHT_CAPACITY};

/// Frame magic: the first four bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"GMDJ";
/// Protocol version; bumped on any frame-layout change.
///
/// * v1 — PR 8: handshake + two-wave eval protocol.
/// * v2 — trace context in `EvalRequest` (query id, parent span id,
///   trace flag), site wall-clock + span deltas in `StateMatrix`, and
///   the `FlightRequest` / `FlightTail` post-mortem frames.
pub const WIRE_VERSION: u16 = 2;
/// Upper bound on a frame payload. A garbled length prefix beyond this
/// is rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;
/// Maximum expression-tree nesting depth accepted by the decoder.
pub const MAX_DEPTH: u32 = 64;

const FT_HELLO: u8 = 1;
const FT_HELLO_ACK: u8 = 2;
const FT_EVAL_REQUEST: u8 = 3;
const FT_STATE_MATRIX: u8 = 4;
const FT_ERROR: u8 = 5;
const FT_FLIGHT_REQUEST: u8 = 6;
const FT_FLIGHT_TAIL: u8 = 7;

/// How many trailing flight-recorder events a site ships in a
/// `FlightTail` (matches the coordinator's own failure-dump tail).
const FLIGHT_TAIL_EVENTS: usize = 64;

// ---------------------------------------------------------------------
// Configuration and fault injection (process-global, like the metrics
// and progress registries: `ExecPolicy` is a Copy value threaded through
// every strategy, so per-run knobs that don't affect answers live here)
// ---------------------------------------------------------------------

/// Timeouts and retry policy for the socket transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Per-operation socket read/write deadline — the per-site deadline
    /// is `connect_timeout + O(1) × io_timeout` per attempt.
    pub io_timeout: Duration,
    /// Total attempts per site round-trip (1 = no retries).
    pub max_attempts: u32,
    /// Linear backoff unit: attempt `k` (1-based retry) sleeps
    /// `backoff × k` before reconnecting.
    pub backoff: Duration,
}

impl WireConfig {
    /// Production defaults: patient enough for loaded CI runners.
    pub const DEFAULT: WireConfig = WireConfig {
        connect_timeout: Duration::from_millis(1000),
        io_timeout: Duration::from_millis(5000),
        max_attempts: 3,
        backoff: Duration::from_millis(50),
    };
}

impl Default for WireConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

static WIRE_CONFIG: Mutex<WireConfig> = Mutex::new(WireConfig::DEFAULT);

/// The process-wide transport configuration new [`TcpSites`] pick up.
pub fn config() -> WireConfig {
    *WIRE_CONFIG.lock().unwrap()
}

/// Replace the process-wide transport configuration (tests shorten the
/// timeouts; the chaos suite serializes around this).
pub fn set_config(cfg: WireConfig) {
    *WIRE_CONFIG.lock().unwrap() = cfg;
}

/// One injectable site fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Site drops the connection after reading the request, before
    /// evaluating.
    CrashBeforeEval,
    /// Site evaluates, then drops the connection instead of responding.
    CrashAfterEval,
    /// Site sends only the first half of its response frame, then drops.
    TruncateFrame,
    /// Site sleeps this long before evaluating (drive it past
    /// `io_timeout` to simulate a straggler the coordinator abandons).
    Delay { ms: u64 },
    /// Site responds with an absurd payload-length prefix
    /// (`u32::MAX` > [`MAX_FRAME_LEN`]).
    GarbleLengthPrefix,
}

/// When a planned fault fires, keyed on the attempt number the request
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindow {
    /// Fire on attempt 0 only — the retry must recover exactly.
    FirstAttemptOnly,
    /// Fire on every attempt — retries must exhaust into a clean error.
    Always,
}

/// Deterministic fault schedule: which fault fires at which site, and on
/// which attempts. Installed process-wide via [`install_fault_plan`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(usize, Fault, FaultWindow)>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault for `site`.
    pub fn fault(mut self, site: usize, fault: Fault, window: FaultWindow) -> Self {
        self.entries.push((site, fault, window));
        self
    }

    fn lookup(&self, site: usize, attempt: u32) -> Option<Fault> {
        self.entries
            .iter()
            .find(|(s, _, w)| *s == site && (matches!(w, FaultWindow::Always) || attempt == 0))
            .map(|(_, f, _)| *f)
    }
}

static FAULT_PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Install (or with `None` clear) the process-wide fault plan the site
/// executors consult. Chaos tests serialize installs behind a lock.
pub fn install_fault_plan(plan: Option<FaultPlan>) {
    *FAULT_PLAN.lock().unwrap() = plan;
}

fn active_fault(site: usize, attempt: u32) -> Option<Fault> {
    FAULT_PLAN
        .lock()
        .unwrap()
        .as_ref()
        .and_then(|p| p.lookup(site, attempt))
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A transport-layer failure, classified for the retry loop.
#[derive(Debug)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
    /// Whether another attempt could plausibly succeed (I/O, timeout,
    /// decode failures) or not (remote evaluation errors).
    pub retryable: bool,
}

impl WireError {
    fn protocol(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
            retryable: true,
        }
    }

    fn fatal(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
            retryable: false,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError {
            message: format!("i/o: {e}"),
            retryable: true,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// The broadcast wave: everything a site needs to evaluate its fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequestFrame {
    /// 0-based attempt number (rides along so site-side fault injection
    /// is deterministic per attempt).
    pub attempt: u32,
    /// Coordinator evaluation id this request belongs to (trace context).
    pub query_id: u64,
    /// The coordinator `site.roundtrip` span id this request rides under
    /// (trace context; site-side spans echo it back as a field).
    pub parent_span: u64,
    /// Whether the site should collect its span deltas and ship them in
    /// the `StateMatrix` wave. Counters and wall-clock ship either way.
    pub trace: bool,
    /// Probe plan selection.
    pub probe: ProbeStrategy,
    /// Base-partition memory budget (forwarded verbatim so site-side
    /// planning sees exactly the coordinator's options).
    pub partition_rows: Option<u64>,
    /// Kernel dispatch flag.
    pub vectorized: bool,
    /// Aggregates per base row.
    pub total_aggs: u32,
    /// Base partition schema.
    pub base_fields: Vec<Field>,
    /// Base partition rows.
    pub base_rows: Vec<Tuple>,
    /// The GMDJ to evaluate.
    pub spec: GmdjSpec,
}

/// The state wave: the site's partial accumulator matrix plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMatrixFrame {
    /// Bytes of the `EvalRequest` frame the site read — echoed back so
    /// the coordinator can assert both ends counted the same traffic.
    pub request_bytes: u64,
    /// Detail rows in the site's fragment.
    pub fragment_rows: u64,
    /// Site-local evaluator counters.
    pub stats: EvalStats,
    /// Site-local kernel dispatch mix.
    pub kernel: KernelStats,
    /// The site's `site.eval` wall-clock in nanoseconds — a duration on
    /// the site's own monotonic clock, never an absolute timestamp.
    pub site_wall_ns: u64,
    /// Span deltas from the successful attempt (empty unless the request
    /// asked for tracing). Start offsets are site-monotonic; the
    /// coordinator re-anchors them when stitching.
    pub spans: Vec<TraceEvent>,
    /// `base_rows × total_aggs` partial accumulators, row-major.
    pub accs: Vec<Accumulator>,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → site: open a round-trip with the expected site id.
    Hello { site: u32 },
    /// Site → client: site id confirmed.
    HelloAck { site: u32 },
    /// Client → site: the broadcast wave.
    EvalRequest(Box<EvalRequestFrame>),
    /// Site → client: the state wave.
    StateMatrix(Box<StateMatrixFrame>),
    /// Site → client: deterministic evaluation failure (non-retryable).
    Error { message: String },
    /// Client → site: fetch the site's flight-recorder tail (post-mortem
    /// after retry exhaustion; never part of the eval path, so injected
    /// eval faults cannot block it).
    FlightRequest { site: u32 },
    /// Site → client: the trailing flight-recorder events, plus how many
    /// older events were dropped or omitted before the tail.
    FlightTail {
        dropped: u64,
        events: Vec<TraceEvent>,
    },
}

impl Frame {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FT_HELLO,
            Frame::HelloAck { .. } => FT_HELLO_ACK,
            Frame::EvalRequest(_) => FT_EVAL_REQUEST,
            Frame::StateMatrix(_) => FT_STATE_MATRIX,
            Frame::Error { .. } => FT_ERROR,
            Frame::FlightRequest { .. } => FT_FLIGHT_REQUEST,
            Frame::FlightTail { .. } => FT_FLIGHT_TAIL,
        }
    }
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::protocol("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::result::Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::result::Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> std::result::Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> std::result::Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> std::result::Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::protocol(format!("bad bool byte {b}"))),
        }
    }

    /// Length-prefixed count, additionally bounded by the bytes that
    /// remain: every counted element is at least one byte, so a garbled
    /// count can never drive a huge allocation.
    fn count(&mut self) -> std::result::Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(WireError::protocol(format!(
                "element count {n} exceeds payload"
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> std::result::Result<String, WireError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::protocol("invalid utf-8"))
    }

    fn done(&self) -> std::result::Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::protocol(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn enc_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

fn dec_value(r: &mut Reader) -> std::result::Result<Value, WireError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Str(r.str()?.into()),
        4 => Value::Bool(r.bool()?),
        t => return Err(WireError::protocol(format!("bad value tag {t}"))),
    })
}

fn enc_column_ref(out: &mut Vec<u8>, c: &ColumnRef) {
    match &c.qualifier {
        Some(q) => {
            out.push(1);
            put_str(out, q);
        }
        None => out.push(0),
    }
    put_str(out, &c.name);
}

fn dec_column_ref(r: &mut Reader) -> std::result::Result<ColumnRef, WireError> {
    let qualifier = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        t => return Err(WireError::protocol(format!("bad qualifier tag {t}"))),
    };
    Ok(ColumnRef {
        qualifier,
        name: r.str()?,
    })
}

fn enc_scalar(out: &mut Vec<u8>, e: &ScalarExpr) {
    match e {
        ScalarExpr::Column(c) => {
            out.push(0);
            enc_column_ref(out, c);
        }
        ScalarExpr::Literal(v) => {
            out.push(1);
            enc_value(out, v);
        }
        ScalarExpr::Binary { op, left, right } => {
            out.push(2);
            out.push(match op {
                ArithOp::Add => 0,
                ArithOp::Sub => 1,
                ArithOp::Mul => 2,
                ArithOp::Div => 3,
            });
            enc_scalar(out, left);
            enc_scalar(out, right);
        }
        ScalarExpr::Case {
            branches,
            otherwise,
        } => {
            out.push(3);
            put_u32(out, branches.len() as u32);
            for (p, e) in branches {
                enc_predicate(out, p);
                enc_scalar(out, e);
            }
            match otherwise {
                Some(e) => {
                    out.push(1);
                    enc_scalar(out, e);
                }
                None => out.push(0),
            }
        }
    }
}

fn dec_scalar(r: &mut Reader, depth: u32) -> std::result::Result<ScalarExpr, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::protocol("expression nesting too deep"));
    }
    Ok(match r.u8()? {
        0 => ScalarExpr::Column(dec_column_ref(r)?),
        1 => ScalarExpr::Literal(dec_value(r)?),
        2 => {
            let op = match r.u8()? {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                2 => ArithOp::Mul,
                3 => ArithOp::Div,
                t => return Err(WireError::protocol(format!("bad arith op {t}"))),
            };
            ScalarExpr::Binary {
                op,
                left: Box::new(dec_scalar(r, depth + 1)?),
                right: Box::new(dec_scalar(r, depth + 1)?),
            }
        }
        3 => {
            let n = r.count()?;
            let mut branches = Vec::with_capacity(n);
            for _ in 0..n {
                let p = dec_predicate(r, depth + 1)?;
                let e = dec_scalar(r, depth + 1)?;
                branches.push((p, e));
            }
            let otherwise = match r.u8()? {
                0 => None,
                1 => Some(Box::new(dec_scalar(r, depth + 1)?)),
                t => return Err(WireError::protocol(format!("bad otherwise tag {t}"))),
            };
            ScalarExpr::Case {
                branches,
                otherwise,
            }
        }
        t => return Err(WireError::protocol(format!("bad scalar tag {t}"))),
    })
}

fn cmp_op_byte(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_op_from(b: u8) -> std::result::Result<CmpOp, WireError> {
    Ok(match b {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(WireError::protocol(format!("bad cmp op {t}"))),
    })
}

fn enc_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::Literal(t) => {
            out.push(0);
            out.push(match t {
                Truth::True => 0,
                Truth::False => 1,
                Truth::Unknown => 2,
            });
        }
        Predicate::Cmp { op, left, right } => {
            out.push(1);
            out.push(cmp_op_byte(*op));
            enc_scalar(out, left);
            enc_scalar(out, right);
        }
        Predicate::IsNull(e) => {
            out.push(2);
            enc_scalar(out, e);
        }
        Predicate::IsNotNull(e) => {
            out.push(3);
            enc_scalar(out, e);
        }
        Predicate::And(a, b) => {
            out.push(4);
            enc_predicate(out, a);
            enc_predicate(out, b);
        }
        Predicate::Or(a, b) => {
            out.push(5);
            enc_predicate(out, a);
            enc_predicate(out, b);
        }
        Predicate::Not(a) => {
            out.push(6);
            enc_predicate(out, a);
        }
    }
}

fn dec_predicate(r: &mut Reader, depth: u32) -> std::result::Result<Predicate, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::protocol("predicate nesting too deep"));
    }
    Ok(match r.u8()? {
        0 => Predicate::Literal(match r.u8()? {
            0 => Truth::True,
            1 => Truth::False,
            2 => Truth::Unknown,
            t => return Err(WireError::protocol(format!("bad truth byte {t}"))),
        }),
        1 => Predicate::Cmp {
            op: cmp_op_from(r.u8()?)?,
            left: dec_scalar(r, depth + 1)?,
            right: dec_scalar(r, depth + 1)?,
        },
        2 => Predicate::IsNull(dec_scalar(r, depth + 1)?),
        3 => Predicate::IsNotNull(dec_scalar(r, depth + 1)?),
        4 => Predicate::And(
            Box::new(dec_predicate(r, depth + 1)?),
            Box::new(dec_predicate(r, depth + 1)?),
        ),
        5 => Predicate::Or(
            Box::new(dec_predicate(r, depth + 1)?),
            Box::new(dec_predicate(r, depth + 1)?),
        ),
        6 => Predicate::Not(Box::new(dec_predicate(r, depth + 1)?)),
        t => return Err(WireError::protocol(format!("bad predicate tag {t}"))),
    })
}

fn agg_func_byte(f: AggFunc) -> u8 {
    match f {
        AggFunc::CountStar => 0,
        AggFunc::Count => 1,
        AggFunc::CountDistinct => 2,
        AggFunc::Sum => 3,
        AggFunc::Min => 4,
        AggFunc::Max => 5,
        AggFunc::Avg => 6,
    }
}

fn agg_func_from(b: u8) -> std::result::Result<AggFunc, WireError> {
    Ok(match b {
        0 => AggFunc::CountStar,
        1 => AggFunc::Count,
        2 => AggFunc::CountDistinct,
        3 => AggFunc::Sum,
        4 => AggFunc::Min,
        5 => AggFunc::Max,
        6 => AggFunc::Avg,
        t => return Err(WireError::protocol(format!("bad agg func {t}"))),
    })
}

fn enc_spec(out: &mut Vec<u8>, spec: &GmdjSpec) {
    put_u32(out, spec.blocks.len() as u32);
    for block in &spec.blocks {
        enc_predicate(out, &block.theta);
        put_u32(out, block.aggs.len() as u32);
        for agg in &block.aggs {
            out.push(agg_func_byte(agg.func));
            match &agg.input {
                Some(e) => {
                    out.push(1);
                    enc_scalar(out, e);
                }
                None => out.push(0),
            }
            put_str(out, &agg.output);
        }
    }
}

fn dec_spec(r: &mut Reader) -> std::result::Result<GmdjSpec, WireError> {
    let nblocks = r.count()?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let theta = dec_predicate(r, 0)?;
        let naggs = r.count()?;
        let mut aggs = Vec::with_capacity(naggs);
        for _ in 0..naggs {
            let func = agg_func_from(r.u8()?)?;
            let input = match r.u8()? {
                0 => None,
                1 => Some(dec_scalar(r, 0)?),
                t => return Err(WireError::protocol(format!("bad agg input tag {t}"))),
            };
            let output = r.str()?;
            aggs.push(NamedAgg {
                func,
                input,
                output,
            });
        }
        blocks.push(AggBlock { theta, aggs });
    }
    Ok(GmdjSpec { blocks })
}

fn data_type_byte(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn data_type_from(b: u8) -> std::result::Result<DataType, WireError> {
    Ok(match b {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        t => return Err(WireError::protocol(format!("bad data type {t}"))),
    })
}

fn enc_accumulator(out: &mut Vec<u8>, a: &Accumulator) {
    match a {
        Accumulator::CountStar { n } => {
            out.push(0);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Accumulator::Count { n } => {
            out.push(1);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Accumulator::CountDistinct { seen } => {
            out.push(2);
            put_u32(out, seen.len() as u32);
            for v in seen {
                enc_value(out, v);
            }
        }
        Accumulator::Sum {
            sum_i,
            sum_f,
            any_float,
            seen,
        } => {
            out.push(3);
            out.extend_from_slice(&sum_i.to_le_bytes());
            put_u64(out, sum_f.to_bits());
            out.push(*any_float as u8);
            out.push(*seen as u8);
        }
        Accumulator::Min { current } => {
            out.push(4);
            enc_opt_value(out, current);
        }
        Accumulator::Max { current } => {
            out.push(5);
            enc_opt_value(out, current);
        }
        Accumulator::Avg { sum, n } => {
            out.push(6);
            put_u64(out, sum.to_bits());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

fn enc_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        Some(v) => {
            out.push(1);
            enc_value(out, v);
        }
        None => out.push(0),
    }
}

fn dec_opt_value(r: &mut Reader) -> std::result::Result<Option<Value>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(dec_value(r)?)),
        t => Err(WireError::protocol(format!("bad option tag {t}"))),
    }
}

fn dec_accumulator(r: &mut Reader) -> std::result::Result<Accumulator, WireError> {
    Ok(match r.u8()? {
        0 => Accumulator::CountStar { n: r.i64()? },
        1 => Accumulator::Count { n: r.i64()? },
        2 => {
            let n = r.count()?;
            let mut seen = gmdj_relation::fxhash::FxHashSet::default();
            for _ in 0..n {
                seen.insert(dec_value(r)?);
            }
            Accumulator::CountDistinct { seen }
        }
        3 => Accumulator::Sum {
            sum_i: r.i64()?,
            sum_f: r.f64()?,
            any_float: r.bool()?,
            seen: r.bool()?,
        },
        4 => Accumulator::Min {
            current: dec_opt_value(r)?,
        },
        5 => Accumulator::Max {
            current: dec_opt_value(r)?,
        },
        6 => Accumulator::Avg {
            sum: r.f64()?,
            n: r.i64()?,
        },
        t => return Err(WireError::protocol(format!("bad accumulator tag {t}"))),
    })
}

const EVAL_STAT_FIELDS: usize = 12;
const KERNEL_STAT_FIELDS: usize = 4;

fn enc_eval_stats(out: &mut Vec<u8>, s: &EvalStats) {
    out.push(EVAL_STAT_FIELDS as u8);
    for v in [
        s.detail_scanned,
        s.probe_candidates,
        s.theta_evals,
        s.agg_updates,
        s.base_rows,
        s.dead_early,
        s.done_early,
        s.index_builds,
        s.partitions,
        s.completion_fallbacks,
        s.col_chunk_reads,
        s.row_page_reads,
    ] {
        put_u64(out, v);
    }
}

fn dec_eval_stats(r: &mut Reader) -> std::result::Result<EvalStats, WireError> {
    if r.u8()? as usize != EVAL_STAT_FIELDS {
        return Err(WireError::protocol("eval stats field count mismatch"));
    }
    Ok(EvalStats {
        detail_scanned: r.u64()?,
        probe_candidates: r.u64()?,
        theta_evals: r.u64()?,
        agg_updates: r.u64()?,
        base_rows: r.u64()?,
        dead_early: r.u64()?,
        done_early: r.u64()?,
        index_builds: r.u64()?,
        partitions: r.u64()?,
        completion_fallbacks: r.u64()?,
        col_chunk_reads: r.u64()?,
        row_page_reads: r.u64()?,
    })
}

fn enc_kernel_stats(out: &mut Vec<u8>, k: &KernelStats) {
    out.push(KERNEL_STAT_FIELDS as u8);
    for v in [k.batches, k.rows_vectorized, k.rows_row_path, k.morsels] {
        put_u64(out, v);
    }
}

fn dec_kernel_stats(r: &mut Reader) -> std::result::Result<KernelStats, WireError> {
    if r.u8()? as usize != KERNEL_STAT_FIELDS {
        return Err(WireError::protocol("kernel stats field count mismatch"));
    }
    Ok(KernelStats {
        batches: r.u64()?,
        rows_vectorized: r.u64()?,
        rows_row_path: r.u64()?,
        morsels: r.u64()?,
    })
}

fn enc_trace_event(out: &mut Vec<u8>, e: &TraceEvent) {
    put_str(out, e.name);
    put_str(out, &e.detail);
    put_u64(out, e.start_ns);
    put_u64(out, e.dur_ns);
    put_u32(out, e.fields.len() as u32);
    for (k, v) in &e.fields {
        put_str(out, k);
        put_u64(out, *v);
    }
}

/// Decode one shipped span. Names and field keys are re-interned against
/// [`crate::trace::WIRE_INTERN_TABLE`] — an unknown string is a protocol
/// error, never a leak into the static lifetime.
fn dec_trace_event(r: &mut Reader) -> std::result::Result<TraceEvent, WireError> {
    let name = r.str()?;
    let name = intern_static(&name)
        .ok_or_else(|| WireError::protocol(format!("unknown span name {name:?}")))?;
    let detail = r.str()?;
    let start_ns = r.u64()?;
    let dur_ns = r.u64()?;
    let n = r.count()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.str()?;
        let key = intern_static(&key)
            .ok_or_else(|| WireError::protocol(format!("unknown span field {key:?}")))?;
        fields.push((key, r.u64()?));
    }
    Ok(TraceEvent {
        name,
        detail,
        start_ns,
        dur_ns,
        fields,
    })
}

fn enc_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Hello { site } | Frame::HelloAck { site } | Frame::FlightRequest { site } => {
            put_u32(&mut out, *site)
        }
        Frame::Error { message } => put_str(&mut out, message),
        Frame::FlightTail { dropped, events } => {
            put_u64(&mut out, *dropped);
            put_u32(&mut out, events.len() as u32);
            for e in events {
                enc_trace_event(&mut out, e);
            }
        }
        Frame::EvalRequest(req) => {
            put_u32(&mut out, req.attempt);
            put_u64(&mut out, req.query_id);
            put_u64(&mut out, req.parent_span);
            out.push(req.trace as u8);
            out.push(match req.probe {
                ProbeStrategy::Auto => 0,
                ProbeStrategy::ForceScan => 1,
            });
            match req.partition_rows {
                Some(n) => {
                    out.push(1);
                    put_u64(&mut out, n);
                }
                None => out.push(0),
            }
            out.push(req.vectorized as u8);
            put_u32(&mut out, req.total_aggs);
            put_u32(&mut out, req.base_fields.len() as u32);
            for f in &req.base_fields {
                put_str(&mut out, &f.qualifier);
                put_str(&mut out, &f.name);
                out.push(data_type_byte(f.data_type));
            }
            put_u32(&mut out, req.base_rows.len() as u32);
            for row in &req.base_rows {
                put_u32(&mut out, row.len() as u32);
                for v in row.iter() {
                    enc_value(&mut out, v);
                }
            }
            enc_spec(&mut out, &req.spec);
        }
        Frame::StateMatrix(sm) => {
            put_u64(&mut out, sm.request_bytes);
            put_u64(&mut out, sm.fragment_rows);
            enc_eval_stats(&mut out, &sm.stats);
            enc_kernel_stats(&mut out, &sm.kernel);
            put_u64(&mut out, sm.site_wall_ns);
            put_u32(&mut out, sm.spans.len() as u32);
            for e in &sm.spans {
                enc_trace_event(&mut out, e);
            }
            put_u32(&mut out, sm.accs.len() as u32);
            for a in &sm.accs {
                enc_accumulator(&mut out, a);
            }
        }
    }
    out
}

fn dec_payload(frame_type: u8, payload: &[u8]) -> std::result::Result<Frame, WireError> {
    let mut r = Reader::new(payload);
    let frame = match frame_type {
        FT_HELLO => Frame::Hello { site: r.u32()? },
        FT_HELLO_ACK => Frame::HelloAck { site: r.u32()? },
        FT_ERROR => Frame::Error { message: r.str()? },
        FT_FLIGHT_REQUEST => Frame::FlightRequest { site: r.u32()? },
        FT_FLIGHT_TAIL => {
            let dropped = r.u64()?;
            let n = r.count()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(dec_trace_event(&mut r)?);
            }
            Frame::FlightTail { dropped, events }
        }
        FT_EVAL_REQUEST => {
            let attempt = r.u32()?;
            let query_id = r.u64()?;
            let parent_span = r.u64()?;
            let trace = r.bool()?;
            let probe = match r.u8()? {
                0 => ProbeStrategy::Auto,
                1 => ProbeStrategy::ForceScan,
                t => return Err(WireError::protocol(format!("bad probe strategy {t}"))),
            };
            let partition_rows = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(WireError::protocol(format!("bad partition tag {t}"))),
            };
            let vectorized = r.bool()?;
            let total_aggs = r.u32()?;
            let nfields = r.count()?;
            let mut base_fields = Vec::with_capacity(nfields);
            for _ in 0..nfields {
                let qualifier = r.str()?;
                let name = r.str()?;
                let data_type = data_type_from(r.u8()?)?;
                base_fields.push(Field::new(qualifier, name, data_type));
            }
            let nrows = r.count()?;
            let mut base_rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let arity = r.count()?;
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(dec_value(&mut r)?);
                }
                base_rows.push(row.into_boxed_slice());
            }
            let spec = dec_spec(&mut r)?;
            Frame::EvalRequest(Box::new(EvalRequestFrame {
                attempt,
                query_id,
                parent_span,
                trace,
                probe,
                partition_rows,
                vectorized,
                total_aggs,
                base_fields,
                base_rows,
                spec,
            }))
        }
        FT_STATE_MATRIX => {
            let request_bytes = r.u64()?;
            let fragment_rows = r.u64()?;
            let stats = dec_eval_stats(&mut r)?;
            let kernel = dec_kernel_stats(&mut r)?;
            let site_wall_ns = r.u64()?;
            let nspans = r.count()?;
            let mut spans = Vec::with_capacity(nspans);
            for _ in 0..nspans {
                spans.push(dec_trace_event(&mut r)?);
            }
            let naccs = r.count()?;
            let mut accs = Vec::with_capacity(naccs);
            for _ in 0..naccs {
                accs.push(dec_accumulator(&mut r)?);
            }
            Frame::StateMatrix(Box::new(StateMatrixFrame {
                request_bytes,
                fragment_rows,
                stats,
                kernel,
                site_wall_ns,
                spans,
                accs,
            }))
        }
        t => return Err(WireError::protocol(format!("unknown frame type {t}"))),
    };
    r.done()?;
    Ok(frame)
}

/// Encode one frame to bytes (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = enc_payload(frame);
    let mut out = Vec::with_capacity(11 + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(frame.frame_type());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Decode one frame from a complete buffer (header validation included;
/// trailing bytes after the payload are rejected).
pub fn decode_frame(bytes: &[u8]) -> std::result::Result<Frame, WireError> {
    if bytes.len() < 11 {
        return Err(WireError::protocol("frame shorter than its header"));
    }
    let (header, payload) = bytes.split_at(11);
    let len = check_header(header)? as usize;
    if payload.len() != len {
        return Err(WireError::protocol(format!(
            "payload length mismatch: header says {len}, got {}",
            payload.len()
        )));
    }
    dec_payload(header[6], payload)
}

/// Validate an 11-byte header; returns (payload length). Rejects bad
/// magic, foreign versions, and lengths beyond [`MAX_FRAME_LEN`].
fn check_header(header: &[u8]) -> std::result::Result<u32, WireError> {
    if header[0..4] != WIRE_MAGIC {
        return Err(WireError::protocol("bad frame magic"));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(WireError::protocol(format!(
            "unsupported protocol version {version} (expected {WIRE_VERSION})"
        )));
    }
    let len = u32::from_le_bytes(header[7..11].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(WireError::protocol(format!(
            "payload length {len} exceeds the {MAX_FRAME_LEN}-byte frame cap"
        )));
    }
    Ok(len)
}

/// Write one frame to a stream; returns the bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<u64> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Read one frame from a stream; returns it with the bytes consumed.
/// A truncated stream surfaces as a retryable [`WireError`]
/// (`UnexpectedEof` from `read_exact`); a garbled length prefix is
/// rejected by [`MAX_FRAME_LEN`] before any payload read.
pub fn read_frame(r: &mut impl Read) -> std::result::Result<(Frame, u64), WireError> {
    let mut header = [0u8; 11];
    r.read_exact(&mut header)?;
    let len = check_header(&header)? as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let frame = dec_payload(header[6], &payload)?;
    Ok((frame, 11 + len as u64))
}

// ---------------------------------------------------------------------
// Site executors (server side)
// ---------------------------------------------------------------------

/// N socket sites on loopback, each a named thread owning a
/// `TcpListener` and its detail fragment. Fragments are handed to the
/// sites at spawn — in the paper's model each site already owns the
/// detail tuples it produced, which is exactly why GMDJ traffic stays
/// independent of detail cardinality (only base tuples and accumulator
/// states cross the wire). Dropping the cluster stops every site:
/// the stop flag flips, a wake-up connection unblocks each accept loop,
/// and the threads are joined.
pub struct SiteCluster {
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl SiteCluster {
    /// Bind one ephemeral loopback listener per fragment and start the
    /// site threads.
    pub fn spawn(fragments: Vec<Relation>) -> Result<SiteCluster> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(fragments.len());
        let mut handles = Vec::with_capacity(fragments.len());
        for (site, fragment) in fragments.into_iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| Error::invalid(format!("site{site}: bind failed: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| Error::invalid(format!("site{site}: local_addr failed: {e}")))?;
            let stop = stop.clone();
            let handle = thread::Builder::new()
                .name(format!("gmdj-site{site}"))
                .spawn(move || serve_site(site, fragment, listener, stop))
                .map_err(|e| Error::invalid(format!("site{site}: spawn failed: {e}")))?;
            addrs.push(addr);
            handles.push(handle);
        }
        Ok(SiteCluster {
            addrs,
            stop,
            handles,
        })
    }

    /// The listen addresses, indexed by site.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

impl Drop for SiteCluster {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for addr in &self.addrs {
            // Wake the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(addr);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn serve_site(site: usize, fragment: Relation, listener: TcpListener, stop: Arc<AtomicBool>) {
    // The site's own always-on flight recorder. It outlives individual
    // connections and attempts, so the tail is still there when a
    // coordinator comes back post-mortem with a `FlightRequest`.
    let flight = Arc::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Connection-level failures (including injected faults) drop the
        // connection; the coordinator's retry loop owns recovery.
        let _ = handle_site_conn(site, &fragment, stream, &flight);
    }
}

fn handle_site_conn(
    site: usize,
    fragment: &Relation,
    mut stream: TcpStream,
    flight: &Arc<FlightRecorder>,
) -> std::result::Result<(), WireError> {
    let cfg = config();
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    stream.set_nodelay(true)?;

    let (hello, _) = read_frame(&mut stream)?;
    let Frame::Hello { site: want } = hello else {
        return Err(WireError::protocol("expected Hello"));
    };
    if want != site as u32 {
        let _ = write_frame(
            &mut stream,
            &Frame::Error {
                message: format!("handshake for site{want} reached site{site}"),
            },
        );
        return Ok(());
    }
    write_frame(&mut stream, &Frame::HelloAck { site: site as u32 })?;

    let (frame, request_bytes) = read_frame(&mut stream)?;
    let req = match frame {
        Frame::EvalRequest(req) => req,
        Frame::FlightRequest { site: want } => {
            // Post-mortem path: ship the recorder tail and close. Eval
            // faults are keyed on EvalRequest attempts and cannot fire
            // here.
            if want != site as u32 {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        message: format!("flight request for site{want} reached site{site}"),
                    },
                );
                return Ok(());
            }
            let (events, dropped) = flight.snapshot();
            let tail_start = events.len().saturating_sub(FLIGHT_TAIL_EVENTS);
            write_frame(
                &mut stream,
                &Frame::FlightTail {
                    dropped: dropped + tail_start as u64,
                    events: events[tail_start..].to_vec(),
                },
            )?;
            return Ok(());
        }
        _ => return Err(WireError::protocol("expected EvalRequest")),
    };

    let fault = active_fault(site, req.attempt);
    match fault {
        Some(Fault::CrashBeforeEval) => return Ok(()), // drop before evaluating
        Some(Fault::Delay { ms }) => thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }

    let schema = Schema::new(req.base_fields.clone());
    let opts = GmdjOptions {
        probe: req.probe,
        partition_rows: req.partition_rows.map(|n| n as usize),
        vectorized: req.vectorized,
    };
    let response = match eval_site_fragment_traced(
        &req.base_rows,
        &schema,
        fragment,
        &req.spec,
        &opts,
        req.total_aggs as usize,
        site,
        req.attempt,
        req.query_id,
        req.parent_span,
        req.trace,
        Some(flight),
    ) {
        Ok(traced) => Frame::StateMatrix(Box::new(StateMatrixFrame {
            request_bytes,
            fragment_rows: fragment.len() as u64,
            stats: traced.stats,
            kernel: traced.kernel,
            site_wall_ns: traced.wall_ns,
            spans: traced.spans,
            accs: traced.accs,
        })),
        Err(e) => Frame::Error {
            message: e.to_string(),
        },
    };

    match fault {
        Some(Fault::CrashAfterEval) => Ok(()), // evaluated, then dropped
        Some(Fault::TruncateFrame) => {
            let bytes = encode_frame(&response);
            stream.write_all(&bytes[..bytes.len() / 2])?;
            Ok(())
        }
        Some(Fault::GarbleLengthPrefix) => {
            let mut bytes = encode_frame(&response);
            bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&bytes)?;
            Ok(())
        }
        _ => {
            write_frame(&mut stream, &response)?;
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator client (the socket SiteTransport)
// ---------------------------------------------------------------------

/// The socket-backed [`SiteTransport`]: one TCP round-trip per
/// (partition, site), with bounded retry and backoff per the process
/// [`WireConfig`]. Byte counters cover every attempt — in a fault-free
/// run that is exactly one attempt, so the counters stay deterministic.
pub struct TcpSites {
    addrs: Vec<SocketAddr>,
    cfg: WireConfig,
}

impl TcpSites {
    /// Client over the given site addresses with the process config.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        TcpSites {
            addrs,
            cfg: config(),
        }
    }
}

impl SiteTransport for TcpSites {
    fn site_count(&self) -> usize {
        self.addrs.len()
    }

    fn site_label(&self, site: usize) -> String {
        format!("site{site}@{}", self.addrs[site])
    }

    fn eval_partition(
        &mut self,
        site: usize,
        req: &SiteEvalRequest<'_>,
    ) -> Result<SiteEvalResponse> {
        let addr = self.addrs[site];
        let m = metrics::global();
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        // Per-attempt error chain: what failed, how long the attempt
        // took, and the backoff that preceded it — the whole history
        // lands in the exhaustion diagnostic, not just the last error.
        let mut history: Vec<String> = Vec::new();
        for attempt in 0..self.cfg.max_attempts {
            let mut backoff_ms = 0u64;
            if attempt > 0 {
                m.inc("site_retries_total", 1);
                m.inc(&format!("site_retries_total{{site=\"{site}\"}}"), 1);
                let backoff = self.cfg.backoff * attempt;
                backoff_ms = backoff.as_millis() as u64;
                m.inc(
                    &format!("site_backoff_ms_total{{site=\"{site}\"}}"),
                    backoff_ms,
                );
                thread::sleep(backoff);
            }
            let started = Instant::now();
            match round_trip(
                addr,
                site,
                attempt,
                req,
                &self.cfg,
                &mut bytes_sent,
                &mut bytes_received,
            ) {
                Ok(mut resp) => {
                    resp.bytes_sent = bytes_sent;
                    resp.bytes_received = bytes_received;
                    resp.attempts = attempt as u64 + 1;
                    m.inc(
                        &format!("site_bytes_sent_total{{site=\"{site}\"}}"),
                        bytes_sent,
                    );
                    m.inc(
                        &format!("site_bytes_received_total{{site=\"{site}\"}}"),
                        bytes_received,
                    );
                    return Ok(resp);
                }
                Err(e) if e.retryable => {
                    history.push(format!(
                        "attempt {attempt}: {} (elapsed {}ms, backoff {}ms)",
                        e.message,
                        started.elapsed().as_millis(),
                        backoff_ms
                    ));
                    continue;
                }
                Err(e) => {
                    return Err(Error::invalid(format!(
                        "site{site} ({addr}): {}",
                        e.message
                    )))
                }
            }
        }
        // Retries exhausted: fetch the *failing site's* flight-recorder
        // tail over the wire and dump it next to the coordinator's own,
        // then fail with the full per-attempt error chain.
        let chain = history.join("; ");
        match fetch_flight_tail(addr, site, &self.cfg) {
            Ok((dropped, events)) => crate::trace::flight_dump_remote(
                &format!("site{site} ({addr}) retries exhausted"),
                dropped,
                &events,
            ),
            Err(e) => eprintln!(
                "gmdj: site{site} ({addr}) flight-tail fetch failed after retry exhaustion: {e}"
            ),
        }
        crate::trace::flight_dump_on_failure(&format!(
            "site{site} ({addr}) retries exhausted: {chain}"
        ));
        Err(Error::invalid(format!(
            "site{site} ({addr}) failed after {} attempts: {chain}",
            self.cfg.max_attempts
        )))
    }
}

/// Post-mortem fetch of a site's flight-recorder tail (fresh connection,
/// outside the eval path — injected eval faults cannot block it).
fn fetch_flight_tail(
    addr: SocketAddr,
    site: usize,
    cfg: &WireConfig,
) -> std::result::Result<(u64, Vec<TraceEvent>), WireError> {
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    stream.set_nodelay(true)?;
    write_frame(&mut stream, &Frame::Hello { site: site as u32 })?;
    match read_frame(&mut stream)?.0 {
        Frame::HelloAck { site: s } if s == site as u32 => {}
        other => {
            return Err(WireError::protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
    }
    write_frame(&mut stream, &Frame::FlightRequest { site: site as u32 })?;
    match read_frame(&mut stream)?.0 {
        Frame::FlightTail { dropped, events } => Ok((dropped, events)),
        Frame::Error { message } => Err(WireError::fatal(message)),
        other => Err(WireError::protocol(format!(
            "expected FlightTail, got {other:?}"
        ))),
    }
}

/// Record one frame round-trip latency into the labeled per-site
/// histogram family `site_frame_us{frame="…",site="N"}`.
fn observe_frame_latency(frame: &str, site: usize, started: Instant) {
    metrics::global().observe(
        &format!("site_frame_us{{frame=\"{frame}\",site=\"{site}\"}}"),
        started.elapsed().as_micros() as u64,
    );
}

/// One attempt: connect, handshake, broadcast, collect. Byte counters
/// accumulate into the caller's totals even on failure — they measure
/// real traffic, and every successful fault-free run performs exactly
/// the same writes and reads.
fn round_trip(
    addr: SocketAddr,
    site: usize,
    attempt: u32,
    req: &SiteEvalRequest<'_>,
    cfg: &WireConfig,
    bytes_sent: &mut u64,
    bytes_received: &mut u64,
) -> std::result::Result<SiteEvalResponse, WireError> {
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    stream.set_nodelay(true)?;

    let t_hello = Instant::now();
    *bytes_sent += write_frame(&mut stream, &Frame::Hello { site: site as u32 })?;
    let (ack, n) = read_frame(&mut stream)?;
    *bytes_received += n;
    observe_frame_latency("hello", site, t_hello);
    match ack {
        Frame::HelloAck { site: s } if s == site as u32 => {}
        Frame::Error { message } => return Err(WireError::fatal(message)),
        other => {
            return Err(WireError::protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
    }

    let request = Frame::EvalRequest(Box::new(EvalRequestFrame {
        attempt,
        query_id: req.query_id,
        parent_span: req.parent_span,
        trace: req.trace,
        probe: req.opts.probe,
        partition_rows: req.opts.partition_rows.map(|n| n as u64),
        vectorized: req.opts.vectorized,
        total_aggs: req.total_aggs as u32,
        base_fields: req.base_schema.fields().to_vec(),
        base_rows: req.base.to_vec(),
        spec: req.spec.clone(),
    }));
    let t_eval = Instant::now();
    let request_bytes = write_frame(&mut stream, &request)?;
    *bytes_sent += request_bytes;
    observe_frame_latency("eval_request", site, t_eval);

    let t_state = Instant::now();
    let (response, n) = read_frame(&mut stream)?;
    *bytes_received += n;
    observe_frame_latency("state_matrix", site, t_state);
    match response {
        Frame::StateMatrix(sm) => {
            if sm.request_bytes != request_bytes {
                return Err(WireError::protocol(format!(
                    "request byte echo mismatch: sent {request_bytes}, site read {}",
                    sm.request_bytes
                )));
            }
            if sm.accs.len() != req.base.len() * req.total_aggs {
                return Err(WireError::protocol(format!(
                    "state matrix arity mismatch: {} accumulators for {} base rows × {} aggs",
                    sm.accs.len(),
                    req.base.len(),
                    req.total_aggs
                )));
            }
            let sm = *sm;
            Ok(SiteEvalResponse {
                accs: sm.accs,
                stats: sm.stats,
                kernel: sm.kernel,
                fragment_rows: sm.fragment_rows,
                bytes_sent: 0,     // filled by the retry loop
                bytes_received: 0, // filled by the retry loop
                attempts: 0,       // filled by the retry loop
                site_wall_ns: sm.site_wall_ns,
                spans: sm.spans,
            })
        }
        Frame::Error { message } => Err(WireError::fatal(format!(
            "remote evaluation failed: {message}"
        ))),
        other => Err(WireError::protocol(format!(
            "expected StateMatrix, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::expr::col;

    #[test]
    fn hello_round_trips() {
        let frame = Frame::Hello { site: 7 };
        let bytes = encode_frame(&frame);
        assert_eq!(&bytes[0..4], b"GMDJ");
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn garbled_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::Hello { site: 0 });
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert!(err.message.contains("frame cap"), "{}", err.message);
        assert!(err.retryable);
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let bytes = encode_frame(&Frame::Error {
            message: "boom".into(),
        });
        let half = &bytes[..bytes.len() / 2];
        assert!(read_frame(&mut &half[..]).is_err());
    }

    #[test]
    fn spec_round_trips_through_an_eval_request() {
        let spec = GmdjSpec::new(vec![AggBlock::count(col("F.T").ge(col("B.Lo")), "cnt")]);
        let frame = Frame::EvalRequest(Box::new(EvalRequestFrame {
            attempt: 2,
            query_id: 41,
            parent_span: 97,
            trace: true,
            probe: ProbeStrategy::Auto,
            partition_rows: Some(8),
            vectorized: true,
            total_aggs: 1,
            base_fields: vec![Field::new("B", "Lo", DataType::Int)],
            base_rows: vec![vec![Value::Int(5)].into_boxed_slice()],
            spec,
        }));
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    fn sample_event() -> TraceEvent {
        TraceEvent {
            name: "site.eval",
            detail: "site3".into(),
            start_ns: 120,
            dur_ns: 999,
            fields: vec![("site", 3), ("attempt", 1), ("detail_scanned", 40)],
        }
    }

    #[test]
    fn flight_tail_round_trips_with_interned_names() {
        let frame = Frame::FlightTail {
            dropped: 7,
            events: vec![sample_event()],
        };
        let bytes = encode_frame(&frame);
        let decoded = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, frame);
        // The decoded name is re-interned, not a leaked allocation.
        let Frame::FlightTail { events, .. } = decoded else {
            unreachable!()
        };
        assert!(
            std::ptr::eq(events[0].name.as_ptr(), "site.eval".as_ptr())
                || events[0].name == "site.eval"
        );
    }

    #[test]
    fn unknown_span_names_are_decode_errors() {
        // Hand-build a FlightTail whose event name is not in the intern
        // table: strict decode must reject it.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // dropped
        put_u32(&mut payload, 1); // one event
        put_str(&mut payload, "no.such.span");
        put_str(&mut payload, "");
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(FT_FLIGHT_TAIL);
        put_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(&payload);
        let err = decode_frame(&bytes).unwrap_err();
        assert!(err.message.contains("unknown span name"), "{}", err.message);
    }

    #[test]
    fn state_matrix_ships_wall_clock_and_spans() {
        let frame = Frame::StateMatrix(Box::new(StateMatrixFrame {
            request_bytes: 100,
            fragment_rows: 9,
            stats: EvalStats::default(),
            kernel: KernelStats::default(),
            site_wall_ns: 1234,
            spans: vec![sample_event()],
            accs: vec![Accumulator::CountStar { n: 4 }],
        }));
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }
}
