//! Executor for GMDJ expressions against a table catalog.

use gmdj_relation::error::{Error, Result};
use gmdj_relation::ops;
use gmdj_relation::relation::Relation;

use crate::eval::{eval_gmdj, eval_gmdj_filtered, EvalStats, GmdjOptions};
use crate::plan::GmdjExpr;
use crate::translate::SchemaInfo;

/// Source of base tables. The engine crate implements this for its
/// catalog; tests implement it over ad-hoc maps.
pub trait TableProvider {
    /// The named base relation.
    fn table(&self, name: &str) -> Result<&Relation>;
}

/// Every [`TableProvider`] can answer the translation's schema questions.
impl<T: TableProvider + ?Sized> SchemaInfo for T {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        Ok(self
            .table(table)?
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect())
    }
}

/// Execution context: evaluation options plus accumulated statistics.
#[derive(Debug, Default)]
pub struct ExecContext {
    /// Options forwarded to every GMDJ evaluation.
    pub opts: GmdjOptions,
    /// Work counters accumulated across the plan.
    pub stats: EvalStats,
}

impl ExecContext {
    /// Fresh context with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh context with specific GMDJ options.
    pub fn with_opts(opts: GmdjOptions) -> Self {
        ExecContext { opts, stats: EvalStats::default() }
    }
}

/// Evaluate a GMDJ expression.
pub fn execute(
    expr: &GmdjExpr,
    tables: &dyn TableProvider,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    match expr {
        GmdjExpr::Table { name, qualifier } => {
            Ok(tables.table(name)?.renamed(qualifier))
        }
        GmdjExpr::Select { input, predicate } => {
            let rel = execute(input, tables, ctx)?;
            ops::select(&rel, predicate)
        }
        GmdjExpr::Project { input, columns, distinct } => {
            let rel = execute(input, tables, ctx)?;
            let projected = ops::project_columns(&rel, columns)?;
            Ok(if *distinct { ops::distinct(&projected) } else { projected })
        }
        GmdjExpr::AggProject { input, agg } => {
            let rel = execute(input, tables, ctx)?;
            ops::group_by(&rel, &[], std::slice::from_ref(agg))
        }
        GmdjExpr::Join { left, right, on } => {
            let l = execute(left, tables, ctx)?;
            let r = execute(right, tables, ctx)?;
            ops::theta_join(&l, &r, on)
        }
        GmdjExpr::DropComputed { input, names } => {
            let rel = execute(input, tables, ctx)?;
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            ops::drop_columns(&rel, &refs)
        }
        GmdjExpr::GroupBy { input, keys, aggs } => {
            let rel = execute(input, tables, ctx)?;
            ops::group_by(&rel, keys, aggs)
        }
        GmdjExpr::OrderBy { input, keys } => {
            let rel = execute(input, tables, ctx)?;
            ops::sort_by(&rel, keys)
        }
        GmdjExpr::Limit { input, n } => {
            let rel = execute(input, tables, ctx)?;
            Ok(ops::limit(&rel, *n))
        }
        GmdjExpr::Gmdj { base, detail, spec } => {
            let b = execute(base, tables, ctx)?;
            let d = execute(detail, tables, ctx)?;
            eval_gmdj(&b, &d, spec, &ctx.opts, &mut ctx.stats)
        }
        GmdjExpr::FilteredGmdj { base, detail, spec, selection, keep, completion } => {
            let b = execute(base, tables, ctx)?;
            let d = execute(detail, tables, ctx)?;
            eval_gmdj_filtered(
                &b,
                &d,
                spec,
                Some(selection),
                *keep,
                completion.as_ref(),
                &ctx.opts,
                &mut ctx.stats,
            )
        }
    }
}

/// A trivial catalog over owned relations, for tests and examples.
#[derive(Debug, Default)]
pub struct MemoryCatalog {
    tables: Vec<(String, Relation)>,
}

impl MemoryCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        if let Some(slot) = self.tables.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = relation;
        } else {
            self.tables.push((name, relation));
        }
    }

    /// Builder-style registration.
    pub fn with(mut self, name: impl Into<String>, relation: Relation) -> Self {
        self.register(name, relation);
        self
    }

    /// Names of registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl TableProvider for MemoryCatalog {
    fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .ok_or_else(|| Error::UnknownTable { name: name.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggBlock, GmdjSpec};
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn catalog() -> MemoryCatalog {
        let hours = RelationBuilder::new("Hours")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .build()
            .unwrap();
        let flow = RelationBuilder::new("Flow")
            .column("StartTime", DataType::Int)
            .column("NumBytes", DataType::Int)
            .row(vec![43.into(), 12.into()])
            .row(vec![86.into(), 36.into()])
            .build()
            .unwrap();
        MemoryCatalog::new().with("Hours", hours).with("Flow", flow)
    }

    #[test]
    fn executes_full_pipeline() {
        let expr = GmdjExpr::table("Hours", "H")
            .gmdj(
                GmdjExpr::table("Flow", "F"),
                GmdjSpec::new(vec![AggBlock::count(
                    col("F.StartTime")
                        .ge(col("H.StartInterval"))
                        .and(col("F.StartTime").lt(col("H.EndInterval"))),
                    "cnt",
                )]),
            )
            .select(col("cnt").gt(lit(0)));
        let mut ctx = ExecContext::new();
        let out = execute(&expr, &catalog(), &mut ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert!(ctx.stats.detail_scanned > 0);
        // DropComputed strips the count.
        let dropped = execute(
            &GmdjExpr::DropComputed { input: Box::new(expr), names: vec!["cnt".into()] },
            &catalog(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(dropped.schema().len(), 3);
    }

    #[test]
    fn table_rename_applies_qualifier() {
        let mut ctx = ExecContext::new();
        let out = execute(&GmdjExpr::table("Flow", "FX"), &catalog(), &mut ctx).unwrap();
        assert_eq!(out.schema().field(0).qualifier, "FX");
    }

    #[test]
    fn missing_table_is_reported() {
        let mut ctx = ExecContext::new();
        let err = execute(&GmdjExpr::table("Nope", "N"), &catalog(), &mut ctx).unwrap_err();
        assert!(matches!(err, Error::UnknownTable { .. }));
    }

    #[test]
    fn agg_project_returns_single_row() {
        let expr = GmdjExpr::AggProject {
            input: Box::new(GmdjExpr::table("Flow", "F")),
            agg: gmdj_relation::agg::NamedAgg::new(
                gmdj_relation::agg::AggFunc::Max,
                col("F.NumBytes"),
                "m",
            ),
        };
        let mut ctx = ExecContext::new();
        let out = execute(&expr, &catalog(), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(36));
    }

    #[test]
    fn schema_info_via_table_provider() {
        use crate::translate::SchemaInfo;
        let cat = catalog();
        let cols = cat.table_columns("Hours").unwrap();
        assert_eq!(cols, vec!["HourDsc", "StartInterval", "EndInterval"]);
    }
}
