//! Executor for GMDJ expressions against a table catalog.
//!
//! [`execute`] walks a [`GmdjExpr`] bottom-up, running relational
//! operators directly and handing every (filtered) GMDJ to the
//! [`Runtime`] the context's [`ExecPolicy`] implies — so one policy
//! object decides sequential, partitioned, parallel, or distributed
//! evaluation for the whole plan. Alongside the result, the executor
//! records a [`PlanNodeStats`] tree mirroring the plan shape; the
//! roll-ups land in [`ExecContext::stats`] / [`ExecContext::network`]
//! and the tree itself in [`ExecContext::plan_stats`], where
//! [`crate::cost::observed_cost`] can read it back.

use std::sync::Arc;
use std::time::Instant;

use gmdj_relation::error::{Error, Result};
use gmdj_relation::ops;
use gmdj_relation::relation::Relation;

use crate::distributed::NetworkStats;
use crate::eval::{EvalStats, GmdjOptions, Keep};
use crate::plan::GmdjExpr;
use crate::progress::QueryProgress;
use crate::runtime::{ExecPolicy, PlanNodeStats, Runtime};
use crate::trace::{NullSink, Span, TraceSink};
use crate::translate::SchemaInfo;

/// Source of base tables. The engine crate implements this for its
/// catalog; tests implement it over ad-hoc maps.
pub trait TableProvider {
    /// The named base relation.
    fn table(&self, name: &str) -> Result<&Relation>;

    /// A stable identity for plan caching: two calls returning the same
    /// `Some(key)` promise the provider's table set (names, schemas,
    /// contents) is unchanged between them, so a plan translated against
    /// the first call is valid against the second. `None` (the default)
    /// opts the provider out of plan caching entirely.
    fn plan_cache_key(&self) -> Option<u64> {
        None
    }
}

/// Every [`TableProvider`] can answer the translation's schema questions.
impl<T: TableProvider + ?Sized> SchemaInfo for T {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        Ok(self
            .table(table)?
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect())
    }
}

/// Execution context: the execution policy plus accumulated statistics
/// and the trace sink every plan node and GMDJ evaluation reports into.
#[derive(Debug)]
pub struct ExecContext {
    /// The policy every GMDJ in the plan executes under.
    pub policy: ExecPolicy,
    /// Evaluator work counters rolled up across the plan.
    pub stats: EvalStats,
    /// Network traffic rolled up across the plan (distributed mode; zero
    /// otherwise). Value counts are closed-form for both transports;
    /// byte counts are measured and nonzero only over real sockets
    /// (`ExecPolicy::real_sites`).
    pub network: NetworkStats,
    /// Per-plan-node statistics tree of the most recent [`execute`] call.
    pub plan_stats: Option<PlanNodeStats>,
    /// Span sink: `plan.node` spans plus everything the [`Runtime`]
    /// emits beneath them. Defaults to [`NullSink`].
    pub sink: Arc<dyn TraceSink>,
    /// Live progress handle fed by the runtime's scan loops and phased
    /// by plan-node labels as the executor walks the tree. `None` when
    /// the query is not registered with [`crate::progress`].
    pub progress: Option<Arc<QueryProgress>>,
    /// Cross-query shared-scan pool: when attached, (filtered) GMDJ
    /// nodes are submitted through it so concurrent plans over the same
    /// detail table coalesce into one shared morsel pass (see
    /// [`crate::shared`]). `None` keeps standalone evaluation.
    pub shared: Option<Arc<crate::shared::SharedScanPool>>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            policy: ExecPolicy::default(),
            stats: EvalStats::default(),
            network: NetworkStats::default(),
            plan_stats: None,
            sink: Arc::new(NullSink),
            progress: None,
            shared: None,
        }
    }
}

impl ExecContext {
    /// Fresh context with the default (sequential) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh context with specific GMDJ options, executing sequentially.
    pub fn with_opts(opts: GmdjOptions) -> Self {
        Self::with_policy(ExecPolicy {
            probe: opts.probe,
            partition_rows: opts.partition_rows,
            ..ExecPolicy::default()
        })
    }

    /// Fresh context executing under `policy`.
    pub fn with_policy(policy: ExecPolicy) -> Self {
        ExecContext {
            policy,
            ..ExecContext::default()
        }
    }

    /// Builder-style: trace into `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Builder-style: feed live progress into `progress`.
    pub fn with_progress(mut self, progress: Arc<QueryProgress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Builder-style: submit GMDJ nodes through a shared-scan pool.
    pub fn with_shared(mut self, pool: Arc<crate::shared::SharedScanPool>) -> Self {
        self.shared = Some(pool);
        self
    }
}

/// Evaluate a GMDJ expression under the context's policy, recording a
/// per-plan-node statistics tree in [`ExecContext::plan_stats`].
pub fn execute(
    expr: &GmdjExpr,
    tables: &dyn TableProvider,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.policy.validate()?;
    let mut runtime = Runtime::with_sink(ctx.policy, ctx.sink.clone());
    if let Some(p) = &ctx.progress {
        runtime = runtime.with_progress(p.clone());
    }
    if let Some(pool) = &ctx.shared {
        runtime = runtime.with_shared_pool(pool.clone());
    }
    let (rel, tree) = execute_node(expr, tables, &runtime)?;
    ctx.stats.merge(&tree.total_eval());
    ctx.network.merge(&tree.total_network());
    ctx.plan_stats = Some(tree);
    Ok(rel)
}

/// A unary-operator node: row flow recorded, child attached.
fn unary_node(label: &str, rows_in: usize, out: &Relation, child: PlanNodeStats) -> PlanNodeStats {
    let mut node = PlanNodeStats::new(label);
    node.ops.record(rows_in, out.len());
    node.rows_out = out.len() as u64;
    node.children.push(child);
    node
}

/// Run one plan node, recording inclusive wall-clock (children included;
/// [`PlanNodeStats::self_time_ns`] recovers self-time) and emitting a
/// `plan.node` span per node.
/// The plan-node phase label progress reports while a node (or its
/// subtree) is executing — cheap static names, set pre-order so the
/// live phase is the node most recently entered.
fn phase_label(expr: &GmdjExpr) -> &'static str {
    match expr {
        GmdjExpr::Table { .. } => "Table",
        GmdjExpr::Select { .. } => "Select",
        GmdjExpr::Project { .. } => "Project",
        GmdjExpr::AggProject { .. } => "AggProject",
        GmdjExpr::Join { .. } => "Join",
        GmdjExpr::DropComputed { .. } => "DropComputed",
        GmdjExpr::GroupBy { .. } => "GroupBy",
        GmdjExpr::OrderBy { .. } => "OrderBy",
        GmdjExpr::Limit { .. } => "Limit",
        GmdjExpr::Gmdj { .. } => "GMDJ",
        GmdjExpr::FilteredGmdj { .. } => "FilteredGMDJ",
    }
}

fn execute_node(
    expr: &GmdjExpr,
    tables: &dyn TableProvider,
    runtime: &Runtime,
) -> Result<(Relation, PlanNodeStats)> {
    if let Some(p) = runtime.progress() {
        p.set_phase(phase_label(expr));
    }
    let span = Span::begin(runtime.sink().as_ref(), "plan.node");
    let start = Instant::now();
    let (rel, mut node) = run_node(expr, tables, runtime)?;
    node.elapsed_ns = start.elapsed().as_nanos() as u64;
    node.invocations = 1;
    let mut span = span.with_detail(node.label.clone());
    span.field("rows_out", node.rows_out);
    span.field("scanned_rows", node.scanned_rows);
    span.finish();
    Ok((rel, node))
}

fn run_node(
    expr: &GmdjExpr,
    tables: &dyn TableProvider,
    runtime: &Runtime,
) -> Result<(Relation, PlanNodeStats)> {
    match expr {
        GmdjExpr::Table { name, qualifier } => {
            let rel = tables.table(name)?.renamed(qualifier);
            let mut node = PlanNodeStats::new(format!("Table({name})"));
            node.scanned_rows = rel.len() as u64;
            node.rows_out = rel.len() as u64;
            Ok((rel, node))
        }
        GmdjExpr::Select { input, predicate } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let out = ops::select(&rel, predicate)?;
            let node = unary_node("Select", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::Project {
            input,
            columns,
            distinct,
        } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let projected = ops::project_columns(&rel, columns)?;
            let out = if *distinct {
                ops::distinct(&projected)
            } else {
                projected
            };
            let node = unary_node("Project", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::AggProject { input, agg } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let out = ops::group_by(&rel, &[], std::slice::from_ref(agg))?;
            let node = unary_node("AggProject", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::Join { left, right, on } => {
            let (l, l_node) = execute_node(left, tables, runtime)?;
            let (r, r_node) = execute_node(right, tables, runtime)?;
            let out = ops::theta_join(&l, &r, on)?;
            let mut node = PlanNodeStats::new("Join");
            node.ops.record(l.len() + r.len(), out.len());
            node.rows_out = out.len() as u64;
            node.children.push(l_node);
            node.children.push(r_node);
            Ok((out, node))
        }
        GmdjExpr::DropComputed { input, names } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let out = ops::drop_columns(&rel, &refs)?;
            let node = unary_node("DropComputed", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::GroupBy { input, keys, aggs } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let out = ops::group_by(&rel, keys, aggs)?;
            let node = unary_node("GroupBy", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::OrderBy { input, keys } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let out = ops::sort_by(&rel, keys)?;
            let node = unary_node("OrderBy", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::Limit { input, n } => {
            let (rel, child) = execute_node(input, tables, runtime)?;
            let out = ops::limit(&rel, *n);
            let node = unary_node("Limit", rel.len(), &out, child);
            Ok((out, node))
        }
        GmdjExpr::Gmdj { base, detail, spec } => {
            let (b, b_node) = execute_node(base, tables, runtime)?;
            let (d, d_node) = execute_node(detail, tables, runtime)?;
            let mut node = PlanNodeStats::new("GMDJ");
            // The scan is the node's own work, after its children — put
            // the phase back on this node for the duration.
            if let Some(p) = runtime.progress() {
                p.set_phase("GMDJ");
            }
            let out = runtime.submit(&b, &d, spec, None, Keep::All, None, &mut node)?;
            node.rows_out = out.len() as u64;
            node.children.push(b_node);
            node.children.push(d_node);
            Ok((out, node))
        }
        GmdjExpr::FilteredGmdj {
            base,
            detail,
            spec,
            selection,
            keep,
            completion,
        } => {
            let (b, b_node) = execute_node(base, tables, runtime)?;
            let (d, d_node) = execute_node(detail, tables, runtime)?;
            let mut node = PlanNodeStats::new("FilteredGMDJ");
            if let Some(p) = runtime.progress() {
                p.set_phase("FilteredGMDJ");
            }
            let out = runtime.submit(
                &b,
                &d,
                spec,
                Some(selection),
                *keep,
                completion.as_ref(),
                &mut node,
            )?;
            node.rows_out = out.len() as u64;
            node.children.push(b_node);
            node.children.push(d_node);
            Ok((out, node))
        }
    }
}

/// A trivial catalog over owned relations, for tests and examples.
#[derive(Debug)]
pub struct MemoryCatalog {
    tables: Vec<(String, Relation)>,
    /// Process-unique content epoch: re-drawn on every mutation, so a
    /// given value pins one exact (catalog, contents) state for plan
    /// caching. Never reused across catalogs.
    epoch: u64,
}

/// Each distinct catalog state gets a fresh epoch — a plan cached
/// against one epoch can never be served for a different catalog or a
/// mutated one.
fn next_catalog_epoch() -> u64 {
    static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Default for MemoryCatalog {
    fn default() -> Self {
        MemoryCatalog {
            tables: Vec::new(),
            epoch: next_catalog_epoch(),
        }
    }
}

impl MemoryCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        if let Some(slot) = self.tables.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = relation;
        } else {
            self.tables.push((name, relation));
        }
        self.epoch = next_catalog_epoch();
    }

    /// Builder-style registration.
    pub fn with(mut self, name: impl Into<String>, relation: Relation) -> Self {
        self.register(name, relation);
        self
    }

    /// Names of registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl TableProvider for MemoryCatalog {
    fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .ok_or_else(|| Error::UnknownTable {
                name: name.to_string(),
            })
    }

    fn plan_cache_key(&self) -> Option<u64> {
        Some(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggBlock, GmdjSpec};
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn catalog() -> MemoryCatalog {
        let hours = RelationBuilder::new("Hours")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .build()
            .unwrap();
        let flow = RelationBuilder::new("Flow")
            .column("StartTime", DataType::Int)
            .column("NumBytes", DataType::Int)
            .row(vec![43.into(), 12.into()])
            .row(vec![86.into(), 36.into()])
            .build()
            .unwrap();
        MemoryCatalog::new().with("Hours", hours).with("Flow", flow)
    }

    #[test]
    fn executes_full_pipeline() {
        let expr = GmdjExpr::table("Hours", "H")
            .gmdj(
                GmdjExpr::table("Flow", "F"),
                GmdjSpec::new(vec![AggBlock::count(
                    col("F.StartTime")
                        .ge(col("H.StartInterval"))
                        .and(col("F.StartTime").lt(col("H.EndInterval"))),
                    "cnt",
                )]),
            )
            .select(col("cnt").gt(lit(0)));
        let mut ctx = ExecContext::new();
        let out = execute(&expr, &catalog(), &mut ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert!(ctx.stats.detail_scanned > 0);
        // DropComputed strips the count.
        let dropped = execute(
            &GmdjExpr::DropComputed {
                input: Box::new(expr),
                names: vec!["cnt".into()],
            },
            &catalog(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(dropped.schema().len(), 3);
    }

    #[test]
    fn parallel_policy_matches_sequential_and_records_plan_stats() {
        let expr = GmdjExpr::table("Hours", "H")
            .gmdj(
                GmdjExpr::table("Flow", "F"),
                GmdjSpec::new(vec![AggBlock::count(
                    col("F.StartTime")
                        .ge(col("H.StartInterval"))
                        .and(col("F.StartTime").lt(col("H.EndInterval"))),
                    "cnt",
                )]),
            )
            .select(col("cnt").gt(lit(0)));
        let mut seq = ExecContext::new();
        let a = execute(&expr, &catalog(), &mut seq).unwrap();
        let mut par = ExecContext::with_policy(ExecPolicy::parallel(3));
        let b = execute(&expr, &catalog(), &mut par).unwrap();
        assert!(a.multiset_eq(&b));
        // Without completion the parallel scan does the same work.
        assert_eq!(seq.stats, par.stats);

        let tree = par.plan_stats.as_ref().unwrap();
        assert_eq!(tree.label, "Select");
        assert_eq!(tree.children[0].label, "GMDJ");
        assert_eq!(tree.total_scanned(), 4); // 2 Hours rows + 2 Flow rows
        assert_eq!(tree.total_eval(), par.stats);
        assert_eq!(tree.rows_out, b.len() as u64);
    }

    #[test]
    fn distributed_policy_rolls_network_into_context() {
        let expr = GmdjExpr::table("Hours", "H").gmdj(
            GmdjExpr::table("Flow", "F"),
            GmdjSpec::new(vec![AggBlock::count(
                col("F.StartTime")
                    .ge(col("H.StartInterval"))
                    .and(col("F.StartTime").lt(col("H.EndInterval"))),
                "cnt",
            )]),
        );
        let mut seq = ExecContext::new();
        let a = execute(&expr, &catalog(), &mut seq).unwrap();
        let mut dist = ExecContext::with_policy(ExecPolicy::distributed(2));
        let b = execute(&expr, &catalog(), &mut dist).unwrap();
        assert!(a.multiset_eq(&b));
        assert_eq!(dist.network.messages, 4); // two waves × two sites
        assert!(dist.network.total() > 0);
        assert_eq!(seq.network, crate::distributed::NetworkStats::default());
    }

    #[test]
    fn table_rename_applies_qualifier() {
        let mut ctx = ExecContext::new();
        let out = execute(&GmdjExpr::table("Flow", "FX"), &catalog(), &mut ctx).unwrap();
        assert_eq!(out.schema().field(0).qualifier, "FX");
    }

    #[test]
    fn missing_table_is_reported() {
        let mut ctx = ExecContext::new();
        let err = execute(&GmdjExpr::table("Nope", "N"), &catalog(), &mut ctx).unwrap_err();
        assert!(matches!(err, Error::UnknownTable { .. }));
    }

    #[test]
    fn agg_project_returns_single_row() {
        let expr = GmdjExpr::AggProject {
            input: Box::new(GmdjExpr::table("Flow", "F")),
            agg: gmdj_relation::agg::NamedAgg::new(
                gmdj_relation::agg::AggFunc::Max,
                col("F.NumBytes"),
                "m",
            ),
        };
        let mut ctx = ExecContext::new();
        let out = execute(&expr, &catalog(), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(36));
    }

    #[test]
    fn schema_info_via_table_provider() {
        use crate::translate::SchemaInfo;
        let cat = catalog();
        let cols = cat.table_columns("Hours").unwrap();
        assert_eq!(cols, vec!["HourDsc", "StartInterval", "EndInterval"]);
    }
}
