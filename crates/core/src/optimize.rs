//! GMDJ optimizations for subquery expressions (Section 4).
//!
//! Three rewrite families, applied bottom-up to a fixpoint:
//!
//! 1. **Hoisting** — selections and column drops commute upward past GMDJ
//!    operators ("the GMDJ can commute with other algebraic operators …
//!    under the appropriate conditions"). Hoisting brings consecutive
//!    GMDJs over the same detail table adjacent to each other, the shape
//!    Example 4.1 reaches by "pushing up the selections".
//! 2. **Coalescing** (Proposition 4.1) — adjacent GMDJs over the same
//!    underlying detail table with independent conditions merge into a
//!    single GMDJ, evaluating *multiple subqueries over the same table in
//!    one scan of that table*.
//! 3. **Completion annotation** — `σ[C](MD(…))` (optionally under the
//!    final π\[A\] drop) fuses into a [`GmdjExpr::FilteredGmdj`] carrying
//!    the base-tuple completion plan derived by
//!    [`crate::completion::derive_completion`] (Theorems 4.1/4.2).

use gmdj_relation::expr::Predicate;

use crate::completion::derive_completion;
use crate::eval::Keep;
use crate::plan::GmdjExpr;
use crate::spec::GmdjSpec;

/// Which rewrites to run. The engine's "basic GMDJ" strategy uses none of
/// them; the "optimized GMDJ" strategy uses all.
#[derive(Debug, Clone, Copy)]
pub struct OptFlags {
    /// Hoist selections/drops above GMDJs and merge adjacent ones.
    pub hoist: bool,
    /// Coalesce adjacent GMDJs over the same detail table (Prop. 4.1).
    pub coalesce: bool,
    /// Fuse count-selections into GMDJs with completion plans (§4.2).
    pub completion: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags {
            hoist: true,
            coalesce: true,
            completion: true,
        }
    }
}

/// Optimize with all rewrites enabled.
pub fn optimize(expr: &GmdjExpr) -> GmdjExpr {
    optimize_with(expr, &OptFlags::default())
}

/// Optimize with a specific rewrite set (used by the ablation benches).
pub fn optimize_with(expr: &GmdjExpr, flags: &OptFlags) -> GmdjExpr {
    let mut cur = expr.clone();
    // Structural rewrites to fixpoint (hoist + coalesce interact).
    for _ in 0..64 {
        let (next, changed) = rewrite(&cur, flags, /*structural_only=*/ true);
        cur = next;
        if !changed {
            break;
        }
    }
    // Completion fusion last (it consumes the Select/Drop shapes the
    // structural pass normalizes).
    if flags.completion {
        let (next, _) = rewrite(&cur, flags, /*structural_only=*/ false);
        cur = next;
    }
    cur
}

/// One bottom-up pass. Returns the rewritten node and whether anything
/// changed.
fn rewrite(e: &GmdjExpr, flags: &OptFlags, structural_only: bool) -> (GmdjExpr, bool) {
    // Rewrite children first.
    let (node, mut changed) = match e {
        GmdjExpr::Table { .. } => (e.clone(), false),
        GmdjExpr::Select { input, predicate } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::Select {
                    input: Box::new(i),
                    predicate: predicate.clone(),
                },
                c,
            )
        }
        GmdjExpr::Project {
            input,
            columns,
            distinct,
        } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::Project {
                    input: Box::new(i),
                    columns: columns.clone(),
                    distinct: *distinct,
                },
                c,
            )
        }
        GmdjExpr::AggProject { input, agg } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::AggProject {
                    input: Box::new(i),
                    agg: agg.clone(),
                },
                c,
            )
        }
        GmdjExpr::DropComputed { input, names } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::DropComputed {
                    input: Box::new(i),
                    names: names.clone(),
                },
                c,
            )
        }
        GmdjExpr::GroupBy { input, keys, aggs } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::GroupBy {
                    input: Box::new(i),
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                },
                c,
            )
        }
        GmdjExpr::OrderBy { input, keys } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::OrderBy {
                    input: Box::new(i),
                    keys: keys.clone(),
                },
                c,
            )
        }
        GmdjExpr::Limit { input, n } => {
            let (i, c) = rewrite(input, flags, structural_only);
            (
                GmdjExpr::Limit {
                    input: Box::new(i),
                    n: *n,
                },
                c,
            )
        }
        GmdjExpr::Join { left, right, on } => {
            let (l, cl) = rewrite(left, flags, structural_only);
            let (r, cr) = rewrite(right, flags, structural_only);
            (
                GmdjExpr::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    on: on.clone(),
                },
                cl || cr,
            )
        }
        GmdjExpr::Gmdj { base, detail, spec } => {
            let (b, cb) = rewrite(base, flags, structural_only);
            let (d, cd) = rewrite(detail, flags, structural_only);
            (
                GmdjExpr::Gmdj {
                    base: Box::new(b),
                    detail: Box::new(d),
                    spec: spec.clone(),
                },
                cb || cd,
            )
        }
        GmdjExpr::FilteredGmdj {
            base,
            detail,
            spec,
            selection,
            keep,
            completion,
        } => {
            let (b, cb) = rewrite(base, flags, structural_only);
            let (d, cd) = rewrite(detail, flags, structural_only);
            (
                GmdjExpr::FilteredGmdj {
                    base: Box::new(b),
                    detail: Box::new(d),
                    spec: spec.clone(),
                    selection: selection.clone(),
                    keep: *keep,
                    completion: completion.clone(),
                },
                cb || cd,
            )
        }
    };
    // Then try local rules at this node.
    let (node, local_changed) = if structural_only {
        apply_structural(node, flags)
    } else {
        apply_completion(node)
    };
    changed |= local_changed;
    (node, changed)
}

fn apply_structural(e: GmdjExpr, flags: &OptFlags) -> (GmdjExpr, bool) {
    if flags.hoist {
        // Select(Select(X)) → Select(X, p1 ∧ p2).
        if let GmdjExpr::Select { input, predicate } = &e {
            if let GmdjExpr::Select {
                input: inner,
                predicate: p1,
            } = input.as_ref()
            {
                return (
                    GmdjExpr::Select {
                        input: inner.clone(),
                        predicate: p1.clone().and(predicate.clone()),
                    },
                    true,
                );
            }
            // Select(DropComputed(X)) → DropComputed(Select(X)) when the
            // selection does not reference the dropped names.
            if let GmdjExpr::DropComputed {
                input: inner,
                names,
            } = input.as_ref()
            {
                if pred_avoids_names(predicate, names) {
                    return (
                        GmdjExpr::DropComputed {
                            input: Box::new(GmdjExpr::Select {
                                input: inner.clone(),
                                predicate: predicate.clone(),
                            }),
                            names: names.clone(),
                        },
                        true,
                    );
                }
            }
        }
        // DropComputed(DropComputed(X)) → DropComputed(X, n1 ∪ n2).
        if let GmdjExpr::DropComputed { input, names } = &e {
            if let GmdjExpr::DropComputed {
                input: inner,
                names: n1,
            } = input.as_ref()
            {
                let mut all = n1.clone();
                all.extend(names.iter().cloned());
                return (
                    GmdjExpr::DropComputed {
                        input: inner.clone(),
                        names: all,
                    },
                    true,
                );
            }
        }
        // MD(σ[p](X), R, s) → σ[p](MD(X, R, s)) and likewise for drops.
        if let GmdjExpr::Gmdj { base, detail, spec } = &e {
            if let GmdjExpr::Select { input, predicate } = base.as_ref() {
                if pred_avoids_names(predicate, &spec_output_names(spec)) {
                    return (
                        GmdjExpr::Select {
                            input: Box::new(GmdjExpr::Gmdj {
                                base: input.clone(),
                                detail: detail.clone(),
                                spec: spec.clone(),
                            }),
                            predicate: predicate.clone(),
                        },
                        true,
                    );
                }
            }
            if let GmdjExpr::DropComputed { input, names } = base.as_ref() {
                if spec_avoids_names(spec, names) {
                    return (
                        GmdjExpr::DropComputed {
                            input: Box::new(GmdjExpr::Gmdj {
                                base: input.clone(),
                                detail: detail.clone(),
                                spec: spec.clone(),
                            }),
                            names: names.clone(),
                        },
                        true,
                    );
                }
            }
        }
    }
    if flags.coalesce {
        // MD(MD(B, R, s1), R, s2) → MD(B, R, s1 ++ s2)  (Prop. 4.1).
        if let GmdjExpr::Gmdj { base, detail, spec } = &e {
            if let GmdjExpr::Gmdj {
                base: b0,
                detail: d1,
                spec: s1,
            } = base.as_ref()
            {
                if let Some(s2) = unify_details(d1, detail, spec) {
                    if spec_avoids_names(&s2, &spec_output_names(s1)) {
                        return (
                            GmdjExpr::Gmdj {
                                base: b0.clone(),
                                detail: d1.clone(),
                                spec: s1.extended_with(&s2),
                            },
                            true,
                        );
                    }
                }
            }
        }
    }
    (e, false)
}

/// Fuse `σ[C](MD(…))`, optionally under the final drop, into a
/// [`GmdjExpr::FilteredGmdj`] with a derived completion plan.
fn apply_completion(e: GmdjExpr) -> (GmdjExpr, bool) {
    // Pattern 1: DropComputed(Select(Gmdj)) with names ⊇ aggregate outputs.
    if let GmdjExpr::DropComputed { input, names } = &e {
        if let GmdjExpr::Select {
            input: sel_in,
            predicate,
        } = input.as_ref()
        {
            if let GmdjExpr::Gmdj { base, detail, spec } = sel_in.as_ref() {
                let outputs: Vec<String> =
                    spec.output_names().iter().map(|s| s.to_string()).collect();
                if outputs.iter().all(|o| names.contains(o)) {
                    let completion = derive_completion(predicate, spec, true);
                    let fused = GmdjExpr::FilteredGmdj {
                        base: base.clone(),
                        detail: detail.clone(),
                        spec: spec.clone(),
                        selection: predicate.clone(),
                        keep: Keep::BaseOnly,
                        completion,
                    };
                    // Names beyond the spec outputs are base columns that
                    // still need dropping.
                    let extra: Vec<String> = names
                        .iter()
                        .filter(|n| !outputs.contains(n))
                        .cloned()
                        .collect();
                    let out = if extra.is_empty() {
                        fused
                    } else {
                        GmdjExpr::DropComputed {
                            input: Box::new(fused),
                            names: extra,
                        }
                    };
                    return (out, true);
                }
            }
        }
    }
    // Pattern 1b: the bottom-up pass may already have fused Select(Gmdj)
    // into a keep-all FilteredGmdj before the enclosing drop is visited;
    // upgrade it to keep-base-only with the stronger completion plan.
    if let GmdjExpr::DropComputed { input, names } = &e {
        if let GmdjExpr::FilteredGmdj {
            base,
            detail,
            spec,
            selection,
            keep: Keep::All,
            ..
        } = input.as_ref()
        {
            let outputs: Vec<String> = spec.output_names().iter().map(|s| s.to_string()).collect();
            if outputs.iter().all(|o| names.contains(o)) {
                let completion = derive_completion(selection, spec, true);
                let fused = GmdjExpr::FilteredGmdj {
                    base: base.clone(),
                    detail: detail.clone(),
                    spec: spec.clone(),
                    selection: selection.clone(),
                    keep: Keep::BaseOnly,
                    completion,
                };
                let extra: Vec<String> = names
                    .iter()
                    .filter(|n| !outputs.contains(n))
                    .cloned()
                    .collect();
                let out = if extra.is_empty() {
                    fused
                } else {
                    GmdjExpr::DropComputed {
                        input: Box::new(fused),
                        names: extra,
                    }
                };
                return (out, true);
            }
        }
    }
    // Pattern 2: bare Select(Gmdj) — fold the selection; only fail-fast
    // rules apply because the aggregates stay in the output.
    if let GmdjExpr::Select { input, predicate } = &e {
        if let GmdjExpr::Gmdj { base, detail, spec } = input.as_ref() {
            let completion = derive_completion(predicate, spec, false);
            return (
                GmdjExpr::FilteredGmdj {
                    base: base.clone(),
                    detail: detail.clone(),
                    spec: spec.clone(),
                    selection: predicate.clone(),
                    keep: Keep::All,
                    completion,
                },
                true,
            );
        }
    }
    (e, false)
}

fn spec_output_names(spec: &GmdjSpec) -> Vec<String> {
    spec.output_names().iter().map(|s| s.to_string()).collect()
}

/// True when no *unqualified* column of `p` matches one of `names`
/// (qualified references denote base-table attributes and cannot clash
/// with computed columns).
fn pred_avoids_names(p: &Predicate, names: &[String]) -> bool {
    p.columns()
        .iter()
        .all(|c| c.qualifier.is_some() || !names.contains(&c.name))
}

/// True when no condition or aggregate input of `spec` references one of
/// `names` unqualified.
fn spec_avoids_names(spec: &GmdjSpec, names: &[String]) -> bool {
    spec.blocks.iter().all(|b| {
        pred_avoids_names(&b.theta, names)
            && b.aggs.iter().all(|a| match &a.input {
                Some(e) => {
                    let mut cols = Vec::new();
                    e.collect_columns(&mut cols);
                    cols.iter()
                        .all(|c| c.qualifier.is_some() || !names.contains(&c.name))
                }
                None => true,
            })
    })
}

/// Check coalescing compatibility of two detail expressions. Returns the
/// second spec rewritten to reference the first detail's qualifier, or
/// `None` when the details differ.
fn unify_details(d1: &GmdjExpr, d2: &GmdjExpr, s2: &GmdjSpec) -> Option<GmdjSpec> {
    if d1 == d2 {
        return Some(s2.clone());
    }
    // Same base table under different qualifiers: rename the second
    // spec's references (`Flow → F_S` vs `Flow → F`, Example 4.1).
    if let (
        GmdjExpr::Table {
            name: n1,
            qualifier: q1,
        },
        GmdjExpr::Table {
            name: n2,
            qualifier: q2,
        },
    ) = (d1, d2)
    {
        if n1 == n2 {
            let map = |c: &gmdj_relation::schema::ColumnRef| {
                if c.qualifier.as_deref() == Some(q2.as_str()) {
                    gmdj_relation::schema::ColumnRef::qualified(q1, &c.name)
                } else {
                    c.clone()
                }
            };
            let blocks = s2
                .blocks
                .iter()
                .map(|b| crate::spec::AggBlock {
                    theta: b.theta.map_columns(&map),
                    aggs: b
                        .aggs
                        .iter()
                        .map(|a| gmdj_relation::agg::NamedAgg {
                            func: a.func,
                            input: a.input.as_ref().map(|e| e.map_columns(&map)),
                            output: a.output.clone(),
                        })
                        .collect(),
                })
                .collect();
            return Some(GmdjSpec::new(blocks));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::expr::{col, lit};

    fn count_block(theta: Predicate, name: &str) -> GmdjSpec {
        GmdjSpec::new(vec![AggBlock::count(theta, name.to_string())])
    }

    /// Three chained GMDJs over the same detail table (Example 3.2's B)
    /// coalesce into one (Example 4.1).
    #[test]
    fn example_4_1_coalesces_to_single_gmdj() {
        let base = GmdjExpr::Project {
            input: Box::new(GmdjExpr::table("Flow", "F0")),
            columns: vec![gmdj_relation::schema::ColumnRef::parse("F0.SourceIP")],
            distinct: true,
        };
        let mk_theta = |q: &str, ip: &str| {
            col("F0.SourceIP")
                .eq(col(&format!("{q}.SourceIP")))
                .and(col(&format!("{q}.DestIP")).eq(lit(ip)))
        };
        let chained = base
            .gmdj(
                GmdjExpr::table("Flow", "F1"),
                count_block(mk_theta("F1", "167"), "c1"),
            )
            .gmdj(
                GmdjExpr::table("Flow", "F2"),
                count_block(mk_theta("F2", "168"), "c2"),
            )
            .gmdj(
                GmdjExpr::table("Flow", "F3"),
                count_block(mk_theta("F3", "169"), "c3"),
            )
            .select(
                col("c1")
                    .eq(lit(0))
                    .and(col("c2").gt(lit(0)))
                    .and(col("c3").eq(lit(0))),
            );
        let expr = GmdjExpr::DropComputed {
            input: Box::new(chained),
            names: vec!["c1".into(), "c2".into(), "c3".into()],
        };
        assert_eq!(expr.gmdj_count(), 3);
        let opt = optimize(&expr);
        assert_eq!(opt.gmdj_count(), 1, "{opt}");
        // Completion fused: dead rules for c1 and c3.
        assert!(opt.uses_completion(), "{opt}");
        let GmdjExpr::FilteredGmdj {
            spec,
            completion,
            keep,
            ..
        } = &opt
        else {
            panic!("expected FilteredGmdj at root: {opt}");
        };
        assert_eq!(spec.blocks.len(), 3);
        assert_eq!(*keep, Keep::BaseOnly);
        let plan = completion.as_ref().unwrap();
        assert_eq!(plan.dead_rules.len(), 2);
        // All θ now reference the first GMDJ's detail qualifier.
        for b in &spec.blocks {
            assert!(b.theta.to_string().contains("F1."), "{}", b.theta);
        }
    }

    #[test]
    fn hoist_moves_selection_above_gmdj() {
        let inner = GmdjExpr::table("Hours", "H")
            .gmdj(
                GmdjExpr::table("Flow", "F1"),
                count_block(Predicate::true_(), "c1"),
            )
            .select(col("c1").gt(lit(0)));
        let outer = inner.gmdj(
            GmdjExpr::table("Flow", "F2"),
            count_block(Predicate::true_(), "c2"),
        );
        let opt = optimize_with(
            &outer,
            &OptFlags {
                hoist: true,
                coalesce: false,
                completion: false,
            },
        );
        // Selection is now above the outer GMDJ.
        assert!(matches!(opt, GmdjExpr::Select { .. }), "{opt}");
    }

    #[test]
    fn coalescing_requires_independence() {
        // Second spec references the first's output: must NOT coalesce.
        let expr = GmdjExpr::table("B", "B")
            .gmdj(
                GmdjExpr::table("R", "R"),
                count_block(Predicate::true_(), "c1"),
            )
            .gmdj(
                GmdjExpr::table("R", "R"),
                count_block(col("c1").gt(lit(0)), "c2"),
            );
        let opt = optimize_with(
            &expr,
            &OptFlags {
                hoist: true,
                coalesce: true,
                completion: false,
            },
        );
        assert_eq!(opt.gmdj_count(), 2);
    }

    #[test]
    fn coalescing_requires_same_detail_table() {
        let expr = GmdjExpr::table("B", "B")
            .gmdj(
                GmdjExpr::table("R", "R1"),
                count_block(Predicate::true_(), "c1"),
            )
            .gmdj(
                GmdjExpr::table("S", "S1"),
                count_block(Predicate::true_(), "c2"),
            );
        let opt = optimize(&expr);
        assert_eq!(opt.gmdj_count(), 2);
    }

    #[test]
    fn select_gmdj_fuses_even_without_drop() {
        let expr = GmdjExpr::table("B", "B")
            .gmdj(
                GmdjExpr::table("R", "R"),
                count_block(Predicate::true_(), "c1"),
            )
            .select(col("c1").gt(lit(0)));
        let opt = optimize(&expr);
        let GmdjExpr::FilteredGmdj {
            keep, completion, ..
        } = &opt
        else {
            panic!("{opt}");
        };
        assert_eq!(*keep, Keep::All);
        // Aggregates kept → Theorem 4.1 does not apply → no plan.
        assert!(completion.is_none());
    }

    #[test]
    fn basic_flags_leave_plan_untouched() {
        let expr = GmdjExpr::table("B", "B")
            .gmdj(
                GmdjExpr::table("R", "R"),
                count_block(Predicate::true_(), "c1"),
            )
            .select(col("c1").gt(lit(0)));
        let opt = optimize_with(
            &expr,
            &OptFlags {
                hoist: false,
                coalesce: false,
                completion: false,
            },
        );
        assert_eq!(opt, expr);
    }
}
