//! Base-tuple completion (Section 4.2, Theorems 4.1 and 4.2).
//!
//! When a GMDJ is consumed by a selection over its count columns — the
//! shape Algorithm SubqueryToGMDJ always produces — the evaluator can often
//! determine a base tuple's fate before the detail scan ends:
//!
//! * **Theorem 4.2** (fail fast): a conjunct `cnt = 0` is irrevocably
//!   false once the tuple's block matches a detail tuple — counts only
//!   grow. The tuple is *completed* (it will be rejected) and can be
//!   dropped from all further probing. Likewise, a conjunct
//!   `cnt₁ = cnt₂` where θ₁ = θ₂ ∧ extra (so RNG₁ ⊆ RNG₂) is irrevocably
//!   false once a detail tuple matches θ₂ but not θ₁ — this is exactly the
//!   ALL-subquery shape, and the rule reproduces the "smart nested loop"
//!   the paper observed in its target DBMS.
//! * **Theorem 4.1** (finish fast): when the consuming projection drops
//!   every aggregate column (`A ∩ (l₁ ∪ … ∪ lₘ) = ∅`) and the selection is
//!   a conjunction of `cntᵢ > 0` conditions, a tuple whose required blocks
//!   have all matched is completed (it will be accepted with certainty)
//!   and needs no further — or precise — aggregation.
//!
//! [`derive_completion`] inspects the selection predicate and the GMDJ
//! spec and produces a [`CompletionPlan`]; the evaluator in [`crate::eval`]
//! enforces it. Derivation is conservative: conjuncts it cannot analyze
//! simply contribute no rule (dead rules from other conjuncts remain sound,
//! because falsifying any conjunct falsifies the conjunction).

use gmdj_relation::expr::{CmpOp, Predicate, ScalarExpr};
use gmdj_relation::value::Value;

use crate::spec::GmdjSpec;

/// A fail-fast rule: while processing a detail tuple that matches block
/// `on_block`'s θ, the base tuple is completed-as-rejected unless the same
/// detail tuple also satisfies block `unless_also`'s θ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadRule {
    /// Block whose match triggers the rule (the superset range θ₂).
    pub on_block: usize,
    /// `None` for `cnt = 0` conjuncts; `Some(sub)` for `cnt_sub = cnt_sup`
    /// conjuncts with RNG(sub) ⊆ RNG(sup).
    pub unless_also: Option<usize>,
}

/// The completion behaviour derived for one `σ[sel](MD(…))` consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionPlan {
    /// Fail-fast rules (Theorem 4.2).
    pub dead_rules: Vec<DeadRule>,
    /// Blocks that appear in `cntᵢ > 0`-shaped conjuncts.
    pub need_match: Vec<usize>,
    /// Finish-fast (Theorem 4.1): once all `need_match` blocks have
    /// matched, the tuple is accepted and deactivated. Only set when the
    /// consumer projects the aggregates away and *every* conjunct is a
    /// `cnt > 0` condition.
    pub finish_early: bool,
}

impl CompletionPlan {
    /// True when the plan can actually do something.
    pub fn is_effective(&self) -> bool {
        !self.dead_rules.is_empty() || self.finish_early
    }
}

/// Shape of a single analyzable conjunct.
enum ConjunctShape {
    /// `cnt = 0` for the count output of `block`.
    Zero(usize),
    /// `cnt > 0` for the count output of `block`.
    Positive(usize),
    /// `cnt_a = cnt_b` over two count outputs.
    PairEq(usize, usize),
    /// Anything else.
    Opaque,
}

/// Derive a completion plan for `σ[selection](MD(B, R, spec))`, where
/// `aggs_projected_away` says whether the consumer keeps only **B**'s
/// attributes (Theorem 4.1's `A ∩ (l₁ ∪ … ∪ lₘ) = ∅` condition).
///
/// Returns `None` when nothing can be derived (e.g. disjunctive
/// selections, or selections over non-count aggregates only).
pub fn derive_completion(
    selection: &Predicate,
    spec: &GmdjSpec,
    aggs_projected_away: bool,
) -> Option<CompletionPlan> {
    // Only pure conjunctions are analyzed. (The translation algorithm
    // produces conjunctions for tree queries; disjunctive selections would
    // need per-disjunct reasoning that Theorems 4.1/4.2 do not cover.)
    if has_disjunction_or_negation(selection) {
        return None;
    }
    let conjuncts = selection.split_conjuncts();
    let mut dead_rules = Vec::new();
    let mut need_match = Vec::new();
    let mut all_analyzable_positive = true;
    for c in &conjuncts {
        match classify_conjunct(c, spec) {
            ConjunctShape::Zero(block) => {
                all_analyzable_positive = false;
                dead_rules.push(DeadRule {
                    on_block: block,
                    unless_also: None,
                });
            }
            ConjunctShape::Positive(block) => {
                need_match.push(block);
            }
            ConjunctShape::PairEq(a, b) => {
                all_analyzable_positive = false;
                // Order the pair by syntactic range inclusion: θ_sub has a
                // conjunct superset of θ_sup ⟹ RNG(sub) ⊆ RNG(sup).
                if let Some((sub, sup)) = subset_order(spec, a, b) {
                    dead_rules.push(DeadRule {
                        on_block: sup,
                        unless_also: Some(sub),
                    });
                }
            }
            ConjunctShape::Opaque => {
                all_analyzable_positive = false;
            }
        }
    }
    let finish_early = aggs_projected_away && all_analyzable_positive && !need_match.is_empty();
    let plan = CompletionPlan {
        dead_rules,
        need_match,
        finish_early,
    };
    plan.is_effective().then_some(plan)
}

fn has_disjunction_or_negation(p: &Predicate) -> bool {
    match p {
        Predicate::Or(..) | Predicate::Not(..) => true,
        Predicate::And(a, b) => has_disjunction_or_negation(a) || has_disjunction_or_negation(b),
        _ => false,
    }
}

fn classify_conjunct(c: &Predicate, spec: &GmdjSpec) -> ConjunctShape {
    let Predicate::Cmp { op, left, right } = c else {
        return ConjunctShape::Opaque;
    };
    let as_count_block = |e: &ScalarExpr| -> Option<usize> {
        let ScalarExpr::Column(col) = e else {
            return None;
        };
        if col.qualifier.is_some() {
            return None;
        }
        spec.output_is_count_star(&col.name)
            .then(|| spec.block_of_output(&col.name))
            .flatten()
    };
    let as_zero = |e: &ScalarExpr| matches!(e, ScalarExpr::Literal(Value::Int(0)));
    let as_int = |e: &ScalarExpr| match e {
        ScalarExpr::Literal(Value::Int(n)) => Some(*n),
        _ => None,
    };

    match (as_count_block(left), as_count_block(right)) {
        (Some(a), Some(b)) if *op == CmpOp::Eq => return ConjunctShape::PairEq(a, b),
        (Some(block), None) => {
            // cnt = 0 | cnt <= 0  → Zero;  cnt > 0 | cnt >= 1 | cnt <> 0 → Positive
            match (op, as_int(right)) {
                (CmpOp::Eq, Some(0)) | (CmpOp::Le, Some(0)) | (CmpOp::Lt, Some(1)) => {
                    return ConjunctShape::Zero(block)
                }
                (CmpOp::Gt, Some(0)) | (CmpOp::Ge, Some(1)) | (CmpOp::Ne, Some(0)) => {
                    return ConjunctShape::Positive(block)
                }
                _ => {}
            }
            let _ = as_zero;
        }
        (None, Some(block)) => {
            // Mirrored: 0 = cnt, 0 < cnt, …
            match (op.flip(), as_int(left)) {
                (CmpOp::Eq, Some(0)) | (CmpOp::Le, Some(0)) | (CmpOp::Lt, Some(1)) => {
                    return ConjunctShape::Zero(block)
                }
                (CmpOp::Gt, Some(0)) | (CmpOp::Ge, Some(1)) | (CmpOp::Ne, Some(0)) => {
                    return ConjunctShape::Positive(block)
                }
                _ => {}
            }
        }
        _ => {}
    }
    ConjunctShape::Opaque
}

/// If the θ of one block is a syntactic conjunct-superset of the other's
/// (hence its range a subset), return `(sub, sup)`.
fn subset_order(spec: &GmdjSpec, a: usize, b: usize) -> Option<(usize, usize)> {
    let ca = spec.blocks[a].theta.split_conjuncts();
    let cb = spec.blocks[b].theta.split_conjuncts();
    let contains_all = |big: &Vec<&Predicate>, small: &Vec<&Predicate>| {
        small.iter().all(|s| big.iter().any(|bp| bp == s))
    };
    if contains_all(&ca, &cb) {
        // θ_a ⊇ θ_b as conjunct sets ⟹ RNG(a) ⊆ RNG(b): a is sub.
        Some((a, b))
    } else if contains_all(&cb, &ca) {
        Some((b, a))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::expr::{col, lit};

    /// Spec shaped like Example 4.1's coalesced base-values GMDJ:
    /// cnt1 = 0 ∧ cnt2 > 0 ∧ cnt3 = 0.
    fn example_4_1_spec() -> GmdjSpec {
        GmdjSpec::new(vec![
            AggBlock::count(
                col("B.SourceIP")
                    .eq(col("F.SourceIP"))
                    .and(col("F.DestIP").eq(lit("167"))),
                "cnt1",
            ),
            AggBlock::count(
                col("B.SourceIP")
                    .eq(col("F.SourceIP"))
                    .and(col("F.DestIP").eq(lit("168"))),
                "cnt2",
            ),
            AggBlock::count(
                col("B.SourceIP")
                    .eq(col("F.SourceIP"))
                    .and(col("F.DestIP").eq(lit("169"))),
                "cnt3",
            ),
        ])
    }

    #[test]
    fn example_4_2_dead_rules() {
        let sel = col("cnt1")
            .eq(lit(0))
            .and(col("cnt2").gt(lit(0)))
            .and(col("cnt3").eq(lit(0)));
        let plan = derive_completion(&sel, &example_4_1_spec(), true).unwrap();
        assert_eq!(
            plan.dead_rules,
            vec![
                DeadRule {
                    on_block: 0,
                    unless_also: None
                },
                DeadRule {
                    on_block: 2,
                    unless_also: None
                },
            ]
        );
        assert_eq!(plan.need_match, vec![1]);
        // cnt=0 conjuncts can flip later, so no early finish.
        assert!(!plan.finish_early);
    }

    #[test]
    fn exists_selection_finishes_early() {
        let spec = GmdjSpec::new(vec![AggBlock::count(col("B.k").eq(col("R.k")), "cnt")]);
        let plan = derive_completion(&col("cnt").gt(lit(0)), &spec, true).unwrap();
        assert!(plan.finish_early);
        assert_eq!(plan.need_match, vec![0]);
        assert!(plan.dead_rules.is_empty());
        // Theorem 4.1 requires the aggregates to be projected away.
        let plan = derive_completion(&col("cnt").gt(lit(0)), &spec, false);
        assert!(plan.is_none());
    }

    #[test]
    fn all_subquery_pair_rule() {
        // θ_sub = θ ∧ B.x > R.y; θ_sup = θ. Selection cnt1 = cnt2.
        let theta = col("B.k").ne(col("R.k"));
        let spec = GmdjSpec::new(vec![
            AggBlock::count(theta.clone().and(col("B.x").gt(col("R.y"))), "cnt1"),
            AggBlock::count(theta, "cnt2"),
        ]);
        let plan = derive_completion(&col("cnt1").eq(col("cnt2")), &spec, true).unwrap();
        assert_eq!(
            plan.dead_rules,
            vec![DeadRule {
                on_block: 1,
                unless_also: Some(0)
            }]
        );
        assert!(!plan.finish_early);
    }

    #[test]
    fn mirrored_and_alternative_forms() {
        let spec = GmdjSpec::new(vec![AggBlock::count(Predicate::true_(), "cnt")]);
        for sel in [
            lit(0).eq(col("cnt")),
            col("cnt").le(lit(0)),
            col("cnt").lt(lit(1)),
        ] {
            let plan = derive_completion(&sel, &spec, true).unwrap();
            assert_eq!(plan.dead_rules.len(), 1, "for {sel}");
        }
        for sel in [
            lit(0).lt(col("cnt")),
            col("cnt").ge(lit(1)),
            col("cnt").ne(lit(0)),
        ] {
            let plan = derive_completion(&sel, &spec, true).unwrap();
            assert!(plan.finish_early, "for {sel}");
        }
    }

    #[test]
    fn disjunctions_and_unknown_conjuncts_are_conservative() {
        let spec = GmdjSpec::new(vec![AggBlock::count(Predicate::true_(), "cnt")]);
        assert!(derive_completion(
            &col("cnt").eq(lit(0)).or(col("cnt").gt(lit(5))),
            &spec,
            true
        )
        .is_none());
        // Opaque conjunct alongside a zero conjunct: dead rule survives,
        // early finish does not.
        let sel = col("cnt").eq(lit(0)).and(col("cnt").lt(lit(100)));
        let plan = derive_completion(&sel, &spec, true).unwrap();
        assert_eq!(plan.dead_rules.len(), 1);
        assert!(!plan.finish_early);
    }

    #[test]
    fn non_count_outputs_are_opaque() {
        let spec = GmdjSpec::new(vec![AggBlock::new(
            Predicate::true_(),
            vec![gmdj_relation::agg::NamedAgg::sum(col("R.x"), "s")],
        )]);
        assert!(derive_completion(&col("s").eq(lit(0)), &spec, true).is_none());
    }

    #[test]
    fn pair_without_subset_relation_gives_no_rule() {
        let spec = GmdjSpec::new(vec![
            AggBlock::count(col("R.a").eq(lit(1)), "c1"),
            AggBlock::count(col("R.b").eq(lit(2)), "c2"),
        ]);
        assert!(derive_completion(&col("c1").eq(col("c2")), &spec, true).is_none());
    }
}
