//! GMDJ evaluation (Definition 2.1), in a single scan of the detail
//! relation.
//!
//! The evaluator keeps the base-values relation (plus one accumulator per
//! base tuple per aggregate) in memory and streams the detail relation past
//! it. Per condition θᵢ it builds a *probe plan*:
//!
//! * equality conjuncts `B.x = R.y` → a [`HashIndex`] on the base rows —
//!   the "indexing mechanism intrinsic to GMDJ evaluation";
//! * band conjuncts `R.t ≥ B.lo ∧ R.t < B.hi` → an [`IntervalIndex`]
//!   (the Hours dimension of the motivating example);
//! * anything else → a scan of the *active* base tuples, which for
//!   conditions like the `<>` correlation of Figure 4 "essentially mimics
//!   tuple-iteration semantics" — unless base-tuple completion
//!   ([`crate::completion`]) keeps shrinking the active set.
//!
//! When the base-values relation does not fit the memory budget, the
//! evaluator partitions it and performs one detail scan per partition
//! ("simple memory management techniques … compute the GMDJ at a
//! well-defined cost"). Machine-independent work counters ([`EvalStats`])
//! make the benchmark shapes reproducible across hardware.

use gmdj_relation::agg::{Accumulator, BoundAgg};
use gmdj_relation::batch::{BatchPredicate, BatchView, ColData, ColView, BATCH_ROWS};
use gmdj_relation::columnar::{ColumnSet, COLUMN_CHUNK_ROWS};
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{BoundPredicate, BoundScalar, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::index::{HashIndex, IntervalIndex, TypedKeyIndex};
use gmdj_relation::relation::{Relation, Tuple};
use gmdj_relation::schema::Schema;
use gmdj_relation::value::Value;

use crate::completion::CompletionPlan;
use crate::spec::GmdjSpec;

/// How probe plans may be chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Hash / interval indexes when the condition allows, scan otherwise.
    #[default]
    Auto,
    /// Always scan the active base tuples (an ablation: GMDJ without its
    /// intrinsic indexing).
    ForceScan,
}

/// Which columns the (possibly filtered) GMDJ returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keep {
    /// **B**'s attributes followed by all aggregate outputs.
    All,
    /// Only **B**'s attributes — the π\[A\] of Table 1's ∄ row and the
    /// precondition of Theorem 4.1.
    BaseOnly,
}

/// Evaluation options.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjOptions {
    /// Probe plan selection.
    pub probe: ProbeStrategy,
    /// Maximum number of base tuples resident per detail scan. `None`
    /// keeps the whole base-values relation in memory (single scan).
    pub partition_rows: Option<usize>,
    /// Dispatch the detail scan to batched columnar kernels where a probe
    /// shape can be specialized (default on). Counter-exact: every
    /// [`EvalStats`] field matches the row-at-a-time scan bit for bit.
    /// Completion plans are scan-order-dependent and always keep the row
    /// path regardless of this flag.
    pub vectorized: bool,
}

impl Default for GmdjOptions {
    fn default() -> Self {
        GmdjOptions {
            probe: ProbeStrategy::default(),
            partition_rows: None,
            vectorized: true,
        }
    }
}

/// Machine-independent work counters, accumulated across an evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Detail tuples consumed (per partition scan).
    pub detail_scanned: u64,
    /// Candidate (base tuple, block) pairs produced by probe plans.
    pub probe_candidates: u64,
    /// Residual / full θ evaluations.
    pub theta_evals: u64,
    /// Aggregate accumulator updates.
    pub agg_updates: u64,
    /// Base tuples processed.
    pub base_rows: u64,
    /// Base tuples completed as rejected mid-scan (Theorem 4.2).
    pub dead_early: u64,
    /// Base tuples completed as accepted mid-scan (Theorem 4.1).
    pub done_early: u64,
    /// Probe indexes built.
    pub index_builds: u64,
    /// Detail scans performed (= number of base partitions).
    pub partitions: u64,
    /// Evaluations where a completion plan was present but skipped because
    /// the execution mode cannot honor it (dead rules and finish-early are
    /// scan-order-dependent, so parallel and distributed scans fall back to
    /// the plain filtered form; the answer is unchanged).
    pub completion_fallbacks: u64,
    /// Column-chunk pages read per detail scan: the paper's `k·P`
    /// arithmetic with `P` counted per *referenced* detail column
    /// (`ceil(|R| / chunk) × referenced_cols × partitions`). A closed form
    /// of the spec and detail length, identical across execution policies,
    /// vectorization settings, and morsel sizes — and strictly below
    /// `row_page_reads` whenever the plan references fewer columns than
    /// the detail schema holds.
    pub col_chunk_reads: u64,
    /// What the same detail scans would have cost under the old row
    /// layout, where every page holds full-width rows
    /// (`ceil(|R| / chunk) × schema_cols × partitions`).
    pub row_page_reads: u64,
}

impl EvalStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.detail_scanned += other.detail_scanned;
        self.probe_candidates += other.probe_candidates;
        self.theta_evals += other.theta_evals;
        self.agg_updates += other.agg_updates;
        self.base_rows += other.base_rows;
        self.dead_early += other.dead_early;
        self.done_early += other.done_early;
        self.index_builds += other.index_builds;
        self.partitions += other.partitions;
        self.completion_fallbacks += other.completion_fallbacks;
        self.col_chunk_reads += other.col_chunk_reads;
        self.row_page_reads += other.row_page_reads;
    }

    /// A single scalar "work" figure: the dominant per-tuple costs. The
    /// page-read counters are deliberately excluded: they restate
    /// `detail_scanned` in page units, not additional work.
    pub fn work(&self) -> u64 {
        self.detail_scanned + self.probe_candidates + self.theta_evals + self.agg_updates
    }

    /// Field-wise difference `self − earlier` (saturating): the counter
    /// delta attributable to a span that snapshotted `earlier` at entry.
    pub fn minus(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            detail_scanned: self.detail_scanned - earlier.detail_scanned,
            probe_candidates: self.probe_candidates - earlier.probe_candidates,
            theta_evals: self.theta_evals - earlier.theta_evals,
            agg_updates: self.agg_updates - earlier.agg_updates,
            base_rows: self.base_rows - earlier.base_rows,
            dead_early: self.dead_early - earlier.dead_early,
            done_early: self.done_early - earlier.done_early,
            index_builds: self.index_builds - earlier.index_builds,
            partitions: self.partitions - earlier.partitions,
            completion_fallbacks: self.completion_fallbacks - earlier.completion_fallbacks,
            col_chunk_reads: self.col_chunk_reads - earlier.col_chunk_reads,
            row_page_reads: self.row_page_reads - earlier.row_page_reads,
        }
    }

    /// The counters as named trace-span fields, in declaration order.
    pub fn trace_fields(&self) -> [(&'static str, u64); 12] {
        [
            ("detail_scanned", self.detail_scanned),
            ("probe_candidates", self.probe_candidates),
            ("theta_evals", self.theta_evals),
            ("agg_updates", self.agg_updates),
            ("base_rows", self.base_rows),
            ("dead_early", self.dead_early),
            ("done_early", self.done_early),
            ("index_builds", self.index_builds),
            ("partitions", self.partitions),
            ("completion_fallbacks", self.completion_fallbacks),
            ("col_chunk_reads", self.col_chunk_reads),
            ("row_page_reads", self.row_page_reads),
        ]
    }
}

/// Kernel-dispatch statistics for the batched detail scan — deliberately
/// *adjacent to* [`EvalStats`] rather than inside it: the semantic
/// counters must stay identical across execution modes and vectorization
/// settings, while these describe which physical path ran.
///
/// Units are (detail row × dispatching block) work units: a batch of 1024
/// rows scanned by two blocks contributes 2048, split between
/// `rows_vectorized` and `rows_row_path` according to whether each
/// block-batch pair ran a kernel or fell back to row-at-a-time
/// evaluation. For `Scan` access the granularity is per probing base
/// tuple (the kernel decision can differ per base row's value types).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Columnar windows viewed from the detail relation's stored columns.
    pub batches: u64,
    /// Work units processed through batched kernels.
    pub rows_vectorized: u64,
    /// Work units that fell back to row-at-a-time evaluation.
    pub rows_row_path: u64,
    /// Scheduling work units: one per detail scan call. Sequential scans
    /// count one morsel per partition (the whole relation is one morsel);
    /// the parallel morsel queue counts one per pulled morsel.
    pub morsels: u64,
}

impl KernelStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.batches += other.batches;
        self.rows_vectorized += other.rows_vectorized;
        self.rows_row_path += other.rows_row_path;
        self.morsels += other.morsels;
    }

    /// Field-wise difference `self − earlier`.
    pub fn minus(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            batches: self.batches - earlier.batches,
            rows_vectorized: self.rows_vectorized - earlier.rows_vectorized,
            rows_row_path: self.rows_row_path - earlier.rows_row_path,
            morsels: self.morsels - earlier.morsels,
        }
    }

    /// The counters as named trace-span fields, in declaration order.
    pub fn trace_fields(&self) -> [(&'static str, u64); 4] {
        [
            ("batches", self.batches),
            ("rows_vectorized", self.rows_vectorized),
            ("rows_row_path", self.rows_row_path),
            ("morsels", self.morsels),
        ]
    }
}

/// Plain GMDJ: `MD(base, detail, spec)`.
pub fn eval_gmdj(
    base: &Relation,
    detail: &Relation,
    spec: &GmdjSpec,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
) -> Result<Relation> {
    eval_gmdj_filtered(base, detail, spec, None, Keep::All, None, opts, stats)
}

/// Filtered GMDJ: `π[keep](σ[selection](MD(base, detail, spec)))`, with an
/// optional base-tuple completion plan derived from `selection`.
///
/// * `selection` is over the GMDJ output schema (base attributes plus
///   aggregate outputs); `None` keeps every base tuple.
/// * `completion` requires `selection`; its dead rules drop base tuples
///   mid-scan and its finish-early rule emits them mid-scan.
#[allow(clippy::too_many_arguments)]
pub fn eval_gmdj_filtered(
    base: &Relation,
    detail: &Relation,
    spec: &GmdjSpec,
    selection: Option<&Predicate>,
    keep: Keep,
    completion: Option<&CompletionPlan>,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
) -> Result<Relation> {
    eval_gmdj_filtered_traced(
        base,
        detail,
        spec,
        selection,
        keep,
        completion,
        opts,
        stats,
        &crate::trace::NullSink,
    )
}

/// [`eval_gmdj_filtered`] with a trace sink: each base-partition scan is
/// emitted as a `gmdj.partition` span carrying that partition's exact
/// counter delta, so the sum of partition spans reconciles with `stats`.
#[allow(clippy::too_many_arguments)]
pub fn eval_gmdj_filtered_traced(
    base: &Relation,
    detail: &Relation,
    spec: &GmdjSpec,
    selection: Option<&Predicate>,
    keep: Keep,
    completion: Option<&CompletionPlan>,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
    sink: &dyn crate::trace::TraceSink,
) -> Result<Relation> {
    let mut kernel = KernelStats::default();
    eval_gmdj_filtered_full(
        base,
        detail,
        spec,
        selection,
        keep,
        completion,
        opts,
        stats,
        &mut kernel,
        sink,
        None,
    )
}

/// [`eval_gmdj_filtered_traced`] additionally reporting which physical
/// scan path ran via [`KernelStats`] (batched kernels vs row fallback),
/// and optionally feeding live query progress: the sequential scan
/// schedules one progress morsel per base-partition detail pass, ticked
/// (with the partition's exact scanned-row delta) as each pass
/// completes.
#[allow(clippy::too_many_arguments)]
pub fn eval_gmdj_filtered_full(
    base: &Relation,
    detail: &Relation,
    spec: &GmdjSpec,
    selection: Option<&Predicate>,
    keep: Keep,
    completion: Option<&CompletionPlan>,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
    kernel: &mut KernelStats,
    sink: &dyn crate::trace::TraceSink,
    progress: Option<&crate::progress::QueryProgress>,
) -> Result<Relation> {
    if completion.is_some() && selection.is_none() {
        return Err(Error::invalid("completion plan requires a selection"));
    }
    let out_schema = spec.output_schema(base.schema());
    let result_schema = match keep {
        Keep::All => out_schema.clone(),
        Keep::BaseOnly => base.schema().clone(),
    };
    let bound_selection = match selection {
        Some(p) => Some(p.bind(&[&out_schema])?),
        None => None,
    };

    let partition = opts.partition_rows.unwrap_or(usize::MAX).max(1);
    // Page accounting: each partition pass reads every referenced detail
    // column's chunks once. Computed in closed form up front so the
    // counters are identical for every execution policy and morsel size.
    let io_pages = detail.len().div_ceil(COLUMN_CHUNK_ROWS) as u64;
    let io_referenced = referenced_detail_cols(spec, base.schema(), detail.schema())? as u64;
    let io_schema_cols = detail.schema().len() as u64;
    let mut out_rows: Vec<Tuple> = Vec::new();
    let mut start = 0usize;
    while start < base.len() || (base.is_empty() && start == 0) {
        let end = (start + partition).min(base.len());
        let chunk = &base.rows()[start..end];
        let before = *stats;
        let span = crate::trace::Span::begin(sink, "gmdj.partition");
        stats.col_chunk_reads += io_pages * io_referenced;
        stats.row_page_reads += io_pages * io_schema_cols;
        run_partition(
            chunk,
            base.schema(),
            detail,
            spec,
            bound_selection.as_ref(),
            keep,
            completion,
            opts,
            stats,
            kernel,
            sink,
            &mut out_rows,
        )?;
        let mut span = span;
        span.fields(stats.minus(&before).trace_fields());
        span.finish();
        if let Some(p) = progress {
            // One progress morsel per partition pass; rows are the
            // pass's exact scanned delta (completion may truncate it).
            p.add_morsels_done(1);
            p.add_rows(stats.detail_scanned - before.detail_scanned);
        }
        start = end;
        if base.is_empty() {
            break;
        }
    }
    Ok(Relation::from_parts(result_schema, out_rows))
}

/// The number of distinct detail columns a spec's detail scan reads: every
/// scope-1 column in each block's θ plus each aggregate input. This is
/// independent of the chosen access path — an index-enforced conjunct's
/// columns plus the residual's columns are exactly θ's columns — so the
/// page accounting derived from it matches across probe strategies,
/// execution policies, and morsel sizes.
pub(crate) fn referenced_detail_cols(
    spec: &GmdjSpec,
    base_schema: &Schema,
    detail_schema: &Schema,
) -> Result<usize> {
    fn mark_scalar(e: &BoundScalar, needed: &mut [bool]) {
        match e {
            BoundScalar::Column { scope: 1, index } => needed[*index] = true,
            BoundScalar::Column { .. } | BoundScalar::Literal(_) => {}
            BoundScalar::Binary { left, right, .. } => {
                mark_scalar(left, needed);
                mark_scalar(right, needed);
            }
            BoundScalar::Case {
                branches,
                otherwise,
            } => {
                for (p, v) in branches {
                    mark_pred(p, needed);
                    mark_scalar(v, needed);
                }
                if let Some(o) = otherwise {
                    mark_scalar(o, needed);
                }
            }
        }
    }
    fn mark_pred(p: &BoundPredicate, needed: &mut [bool]) {
        match p {
            BoundPredicate::Literal(_) => {}
            BoundPredicate::Cmp { left, right, .. } => {
                mark_scalar(left, needed);
                mark_scalar(right, needed);
            }
            BoundPredicate::IsNull(e) | BoundPredicate::IsNotNull(e) => mark_scalar(e, needed),
            BoundPredicate::And(a, b) | BoundPredicate::Or(a, b) => {
                mark_pred(a, needed);
                mark_pred(b, needed);
            }
            BoundPredicate::Not(a) => mark_pred(a, needed),
        }
    }
    let mut needed = vec![false; detail_schema.len()];
    for block in &spec.blocks {
        let theta = block.theta.bind(&[base_schema, detail_schema])?;
        mark_pred(&theta, &mut needed);
        for agg in &block.aggs {
            let bound = agg.bind(&[base_schema, detail_schema])?;
            if let Some(input) = &bound.input {
                mark_scalar(input, &mut needed);
            }
        }
    }
    Ok(needed.iter().filter(|&&n| n).count())
}

/// Fresh accumulators for `n` base tuples under `plans` (row-major: all of
/// one base tuple's accumulators are contiguous).
pub(crate) fn new_accumulators(
    plans: &[BlockPlan],
    n: usize,
    total_aggs: usize,
) -> Vec<Accumulator> {
    let mut accs: Vec<Accumulator> = Vec::with_capacity(n * total_aggs);
    for _ in 0..n {
        for plan in plans {
            for a in &plan.aggs {
                accs.push(a.accumulator());
            }
        }
    }
    accs
}

/// Finalize merged accumulators into output rows, applying the selection
/// and `keep` projection — exactly the materialization the sequential
/// partition scan performs for tuples that stay `Active` to the end.
pub(crate) fn materialize_filtered(
    base_rows: &[Tuple],
    accs: &[Accumulator],
    total_aggs: usize,
    bound_selection: Option<&BoundPredicate>,
    keep: Keep,
    out_rows: &mut Vec<Tuple>,
) -> Result<()> {
    for (b_idx, b_row) in base_rows.iter().enumerate() {
        let mut full: Vec<Value> = Vec::with_capacity(b_row.len() + total_aggs);
        full.extend(b_row.iter().cloned());
        let acc_base = b_idx * total_aggs;
        for acc in &accs[acc_base..acc_base + total_aggs] {
            full.push(acc.finish());
        }
        if let Some(sel) = bound_selection {
            if !sel.eval(&[&full])?.passes() {
                continue;
            }
        }
        match keep {
            Keep::All => out_rows.push(full.into_boxed_slice()),
            Keep::BaseOnly => out_rows.push(b_row.clone()),
        }
    }
    Ok(())
}

/// The probe loop without completion: fold one detail slice into `accs`.
pub(crate) fn scan_detail_plain(
    chunk: &[Tuple],
    plans: &[BlockPlan],
    base_rows: &[Tuple],
    total_aggs: usize,
    accs: &mut [Accumulator],
    stats: &mut EvalStats,
) -> Result<()> {
    let all_base: Vec<u32> = (0..base_rows.len() as u32).collect();
    let mut stab_scratch: Vec<u32> = Vec::new();
    let mut key_scratch: Vec<Value> = Vec::new();
    for r in chunk {
        let r: &[Value] = r;
        stats.detail_scanned += 1;
        for plan in plans {
            let candidates: &[u32] = match &plan.access {
                Access::Hash {
                    index, detail_cols, ..
                } => {
                    // Probe through a reused scratch key: `HashIndex::probe`
                    // takes a slice, so no per-row `Box<[Value]>` is built.
                    key_scratch.clear();
                    key_scratch.extend(detail_cols.iter().map(|&c| r[c].clone()));
                    index.probe(&key_scratch)
                }
                Access::Interval { index, detail_col } => {
                    index.stab(&r[*detail_col], &mut stab_scratch);
                    &stab_scratch
                }
                Access::Scan => &all_base,
            };
            for &b_idx in candidates {
                let b_idx = b_idx as usize;
                stats.probe_candidates += 1;
                let b_row: &[Value] = &base_rows[b_idx];
                let passes = match &plan.residual {
                    Some(res) => {
                        stats.theta_evals += 1;
                        res.eval(&[b_row, r])?.passes()
                    }
                    None => true,
                };
                if passes {
                    update_aggs(plan, b_idx, total_aggs, accs, b_row, r, stats)?;
                }
            }
        }
    }
    Ok(())
}

/// One query's slice of a shared multi-query window dispatch: route one
/// detail window through this query's planned kernels (vectorized) or its
/// row-path probe loop, maintaining its private counters exactly as a
/// standalone morsel pull would. The shared-scan executor
/// ([`crate::shared`]) calls this once per (query, window), so N coalesced
/// GMDJs pay one pass over the detail columns while keeping per-query
/// accounting identical to standalone execution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_detail_window(
    detail: &Relation,
    detail_rows: Option<&[Tuple]>,
    range: std::ops::Range<usize>,
    vectorized: bool,
    plans: &[BlockPlan],
    base_rows: &[Tuple],
    total_aggs: usize,
    accs: &mut [Accumulator],
    stats: &mut EvalStats,
    kernel: &mut KernelStats,
    sink: &dyn crate::trace::TraceSink,
) -> Result<()> {
    if vectorized {
        scan_detail_vectorized(
            detail.cols(),
            range,
            plans,
            base_rows,
            total_aggs,
            accs,
            stats,
            kernel,
            sink,
        )
    } else {
        let rows = detail_rows.ok_or_else(|| {
            Error::invalid("row-path window dispatch requires a materialized row view")
        })?;
        scan_detail_plain(&rows[range], plans, base_rows, total_aggs, accs, stats)?;
        kernel.morsels += 1;
        Ok(())
    }
}

/// Status of a base tuple during the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    /// Completed as rejected (Theorem 4.2) — excluded from output.
    Dead,
    /// Completed as accepted (Theorem 4.1) — emitted, no more updates.
    Done,
}

/// Per-condition probe plan.
pub(crate) struct BlockPlan {
    /// Full θᵢ bound against `[base, detail]` (used by dead-rule
    /// `unless_also` checks).
    full_theta: BoundPredicate,
    /// Residual after removing the conjuncts the access path enforces;
    /// `None` means the access path is exact.
    residual: Option<BoundPredicate>,
    access: Access,
    aggs: Vec<BoundAgg>,
    /// Offset of this block's accumulators within a base tuple's flat
    /// accumulator array.
    agg_offset: usize,
    /// `residual` compiled to a batch kernel; `None` when its shape or
    /// operand types cannot be specialized (the batched scan then
    /// evaluates the residual row by row, reproducing exact semantics).
    residual_kernel: Option<BatchPredicate>,
    /// True when `residual_kernel` reads only detail columns, so one mask
    /// per batch serves every probing base tuple.
    residual_detail_only: bool,
    /// Static label of the planned kernel for the `gmdj.kernel` trace
    /// detail and EXPLAIN ANALYZE.
    kernel_label: &'static str,
}

enum Access {
    /// Iterate all active base tuples.
    Scan,
    /// Hash probe: key extracted from the detail row.
    Hash {
        index: HashIndex,
        detail_cols: Vec<usize>,
        /// Typed single-column sidecar (built only under `vectorized`):
        /// probes from a matching typed batch column skip `Value`
        /// construction and, for strings, reuse the batch's cached hash
        /// codes.
        typed: Option<TypedKeyIndex>,
    },
    /// Interval stab: point extracted from the detail row.
    Interval {
        index: IntervalIndex,
        detail_col: usize,
    },
}

/// Comma-joined per-block kernel labels, e.g. `"hash-int,band"` — the
/// `gmdj.kernel` span detail.
pub(crate) fn kernel_summary(plans: &[BlockPlan]) -> String {
    plans
        .iter()
        .map(|p| p.kernel_label)
        .collect::<Vec<_>>()
        .join(",")
}

/// The probe loop without completion, vectorized: view the stored detail
/// columns in windows of [`BATCH_ROWS`] rows over `range` and dispatch
/// each block's planned kernel, falling back to row-at-a-time evaluation
/// for any block × window whose types cannot guarantee identical
/// semantics (including identical errors). There is no per-query decode:
/// kernels borrow column slices straight from storage, and full rows are
/// late-materialized into a scratch buffer only where row semantics are
/// required — at most once per detail position. Every [`EvalStats`]
/// counter is maintained exactly as [`scan_detail_plain`] would.
///
/// One call is one scheduling morsel: the sequential path calls this once
/// per partition, the parallel morsel queue once per pulled morsel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_detail_vectorized(
    cols: &ColumnSet,
    range: std::ops::Range<usize>,
    plans: &[BlockPlan],
    base_rows: &[Tuple],
    total_aggs: usize,
    accs: &mut [Accumulator],
    stats: &mut EvalStats,
    kernel: &mut KernelStats,
    sink: &dyn crate::trace::TraceSink,
) -> Result<()> {
    let before = *kernel;
    let span = crate::trace::Span::begin(sink, "gmdj.kernel").with_detail(kernel_summary(plans));
    kernel.morsels += 1;
    let mut mask: Vec<bool> = Vec::new();
    let mut stab_scratch: Vec<u32> = Vec::new();
    let mut key_scratch: Vec<Value> = Vec::new();
    let mut sel_scratch: Vec<u32> = Vec::new();
    let mut int_scratch: Vec<i64> = Vec::new();
    let mut float_scratch: Vec<f64> = Vec::new();
    // Lazily materialized row for the row-semantics fallbacks, keyed by
    // the global detail row index it currently holds.
    let mut row_scratch: Vec<Value> = Vec::new();
    let mut scratch_at: usize = usize::MAX;
    // Flattened per-row candidate lists (Hash/Interval): offsets[i]..
    // offsets[i+1] indexes row i's candidates in `cand_flat`.
    let mut cand_flat: Vec<u32> = Vec::new();
    let mut cand_offsets: Vec<u32> = Vec::new();
    let mut win_start = range.start;
    while win_start < range.end {
        let win_len = (range.end - win_start).min(BATCH_ROWS);
        let view = BatchView::new(cols, win_start, win_len);
        kernel.batches += 1;
        stats.detail_scanned += win_len as u64;
        for plan in plans {
            // Shared per-candidate body: counters and residual handling
            // mirror the row path; `theta_evals` counts per (base, detail)
            // pair even when a detail-only mask was computed once per row.
            macro_rules! process_candidates {
                ($cands:expr, $i:expr, $have_mask:expr) => {{
                    for &b_idx in $cands {
                        let b_idx = b_idx as usize;
                        stats.probe_candidates += 1;
                        let b_row: &[Value] = &base_rows[b_idx];
                        let passes = match &plan.residual {
                            None => true,
                            Some(res) => {
                                stats.theta_evals += 1;
                                if $have_mask {
                                    mask[$i]
                                } else {
                                    let r = scratch_row(
                                        cols,
                                        win_start + $i,
                                        &mut row_scratch,
                                        &mut scratch_at,
                                    );
                                    res.eval(&[b_row, r])?.passes()
                                }
                            }
                        };
                        if passes {
                            update_aggs_at(
                                plan,
                                b_idx,
                                total_aggs,
                                accs,
                                b_row,
                                cols,
                                win_start + $i,
                                &mut row_scratch,
                                &mut scratch_at,
                                stats,
                            )?;
                        }
                    }
                }};
            }

            match &plan.access {
                Access::Hash {
                    index,
                    detail_cols,
                    typed,
                } => {
                    // Pass 1: probe every row, flattening the candidate
                    // lists so mask profitability is known before pass 2.
                    let keycol = typed.as_ref().map(|_| view.col(detail_cols[0]));
                    cand_flat.clear();
                    cand_offsets.clear();
                    cand_offsets.push(0);
                    for i in 0..win_len {
                        let cands = probe_hash(
                            index,
                            typed,
                            keycol.as_ref(),
                            detail_cols,
                            cols,
                            i,
                            win_start + i,
                            &mut key_scratch,
                        );
                        cand_flat.extend_from_slice(cands);
                        cand_offsets.push(cand_flat.len() as u32);
                    }
                    let have_mask = shared_mask(plan, &view, cand_flat.len(), win_len, &mut mask);
                    if plan.residual.is_none() || have_mask {
                        kernel.rows_vectorized += win_len as u64;
                    } else {
                        kernel.rows_row_path += win_len as u64;
                    }
                    for i in 0..win_len {
                        let cands =
                            &cand_flat[cand_offsets[i] as usize..cand_offsets[i + 1] as usize];
                        process_candidates!(cands, i, have_mask);
                    }
                }
                Access::Interval { index, detail_col } => {
                    let col = view.col(*detail_col);
                    cand_flat.clear();
                    cand_offsets.clear();
                    cand_offsets.push(0);
                    for i in 0..win_len {
                        if col.nulls[i] {
                            stab_scratch.clear();
                        } else {
                            match &col.data {
                                ColData::Int(vals) => {
                                    index.stab_f64(vals[i] as f64, &mut stab_scratch)
                                }
                                ColData::Float(vals) => index.stab_f64(vals[i], &mut stab_scratch),
                                _ => {
                                    let v = cols.value_at(win_start + i, *detail_col);
                                    index.stab(&v, &mut stab_scratch)
                                }
                            }
                        }
                        cand_flat.extend_from_slice(&stab_scratch);
                        cand_offsets.push(cand_flat.len() as u32);
                    }
                    let have_mask = shared_mask(plan, &view, cand_flat.len(), win_len, &mut mask);
                    if plan.residual.is_none() || have_mask {
                        kernel.rows_vectorized += win_len as u64;
                    } else {
                        kernel.rows_row_path += win_len as u64;
                    }
                    for i in 0..win_len {
                        let cands =
                            &cand_flat[cand_offsets[i] as usize..cand_offsets[i + 1] as usize];
                        process_candidates!(cands, i, have_mask);
                    }
                }
                Access::Scan => {
                    let res = plan
                        .residual
                        .as_ref()
                        .expect("scan access always has residual");
                    // Base-outer within the window: per-accumulator update
                    // order stays detail-row order, so float sums are
                    // bit-identical to the row path.
                    for (b_idx, b_row) in base_rows.iter().enumerate() {
                        let b_row: &[Value] = b_row;
                        let masked = match &plan.residual_kernel {
                            Some(k) => k.eval_mask(&view, Some(b_row), &mut mask),
                            None => false,
                        };
                        stats.probe_candidates += win_len as u64;
                        stats.theta_evals += win_len as u64;
                        if masked {
                            kernel.rows_vectorized += win_len as u64;
                            sel_scratch.clear();
                            sel_scratch.extend(
                                mask.iter()
                                    .enumerate()
                                    .filter(|(_, &m)| m)
                                    .map(|(i, _)| i as u32),
                            );
                            if !sel_scratch.is_empty() {
                                update_aggs_batched(
                                    plan,
                                    b_idx,
                                    total_aggs,
                                    accs,
                                    b_row,
                                    &view,
                                    cols,
                                    win_start,
                                    &sel_scratch,
                                    stats,
                                    &mut int_scratch,
                                    &mut float_scratch,
                                    &mut row_scratch,
                                    &mut scratch_at,
                                )?;
                            }
                        } else {
                            kernel.rows_row_path += win_len as u64;
                            for i in 0..win_len {
                                let row = win_start + i;
                                let passes = {
                                    let r =
                                        scratch_row(cols, row, &mut row_scratch, &mut scratch_at);
                                    res.eval(&[b_row, r])?.passes()
                                };
                                if passes {
                                    update_aggs_at(
                                        plan,
                                        b_idx,
                                        total_aggs,
                                        accs,
                                        b_row,
                                        cols,
                                        row,
                                        &mut row_scratch,
                                        &mut scratch_at,
                                        stats,
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
        }
        win_start += win_len;
    }
    let mut span = span;
    span.fields(kernel.minus(&before).trace_fields());
    span.finish();
    Ok(())
}

/// Late-materialize the detail row at global index `row` into `scratch`
/// (reusing the previous fill when the index has not moved — a row is
/// rebuilt at most once however many candidates touch it).
#[inline]
fn scratch_row<'a>(
    cols: &ColumnSet,
    row: usize,
    scratch: &'a mut Vec<Value>,
    at: &mut usize,
) -> &'a [Value] {
    if *at != row {
        cols.fill_row(row, scratch);
        *at = row;
    }
    scratch
}

/// Fold one detail row into one base tuple's accumulators, reading
/// aggregate inputs straight from the stored columns: column inputs skip
/// expression evaluation entirely, and only computed expressions
/// late-materialize the full row. Mirrors [`BoundAgg::update`] exactly
/// (`COUNT(*)` folds a non-NULL marker; column inputs fold the cell
/// value, NULL where masked).
#[allow(clippy::too_many_arguments)]
fn update_aggs_at(
    plan: &BlockPlan,
    b_idx: usize,
    total_aggs: usize,
    accs: &mut [Accumulator],
    b_row: &[Value],
    cols: &ColumnSet,
    row: usize,
    row_scratch: &mut Vec<Value>,
    scratch_at: &mut usize,
    stats: &mut EvalStats,
) -> Result<()> {
    let base = b_idx * total_aggs + plan.agg_offset;
    for (k, agg) in plan.aggs.iter().enumerate() {
        let acc = &mut accs[base + k];
        match &agg.input {
            None => acc.update(&Value::Int(1)),
            Some(BoundScalar::Column { scope: 1, index }) => {
                acc.update(&cols.value_at(row, *index));
            }
            Some(BoundScalar::Column { scope: 0, index }) => acc.update(&b_row[*index]),
            Some(BoundScalar::Literal(v)) => acc.update(v),
            Some(e) => {
                let r = scratch_row(cols, row, row_scratch, scratch_at);
                let v = e.eval(&[b_row, r])?;
                acc.update(&v);
            }
        }
        stats.agg_updates += 1;
    }
    Ok(())
}

/// Decide whether a Hash/Interval block's detail-only residual mask is
/// worth computing for this batch, and compute it if so. The mask costs
/// one kernel pass over every window row; skipping it costs one
/// interpreted residual eval per candidate — so it only pays off when the
/// probe produced enough candidates to share it. The 25% density
/// threshold is deliberately conservative: an interpreted eval is several
/// times a kernel row op, so dense equality joins (≈1 candidate/row)
/// always mask while selective probes keep the cheap row path. Either
/// branch passes/rejects identical pairs and counts identical
/// [`EvalStats`]; only [`KernelStats`] and wall-clock move.
fn shared_mask(
    plan: &BlockPlan,
    view: &BatchView<'_>,
    candidates: usize,
    window_rows: usize,
    mask: &mut Vec<bool>,
) -> bool {
    match &plan.residual_kernel {
        Some(k) if plan.residual_detail_only && candidates * 4 >= window_rows => {
            k.eval_mask(view, None, mask)
        }
        _ => false,
    }
}

/// Hash-probe one detail row, preferring the typed sidecar when the
/// stored column's type matches it; otherwise the generic slice probe
/// through a reused scratch key. String probes never rehash: the
/// dictionary's cached per-distinct-value hash is forwarded to the
/// sidecar, so a probe costs a code lookup plus (on hash hit) one bytes
/// compare. Cross-type numeric equality (`Int(1) = Float(1.0)`) only
/// ever reaches the generic path: the sidecar is not built over float
/// keys and is not consulted for non-matching column types.
#[allow(clippy::too_many_arguments)]
fn probe_hash<'a>(
    index: &'a HashIndex,
    typed: &'a Option<TypedKeyIndex>,
    keycol: Option<&ColView<'_>>,
    detail_cols: &[usize],
    cols: &ColumnSet,
    i: usize,
    row: usize,
    key_scratch: &mut Vec<Value>,
) -> &'a [u32] {
    if let (Some(t), Some(col)) = (typed.as_ref(), keycol) {
        if col.is_null(i) {
            return &[];
        }
        match (&col.data, t) {
            (ColData::Int(vals), TypedKeyIndex::Int(_)) => return t.probe_int(vals[i]),
            (
                ColData::Str {
                    codes,
                    dict,
                    dict_hashes,
                },
                TypedKeyIndex::Str(_),
            ) => {
                let d = codes[i] as usize;
                return t.probe_str(dict_hashes[d], &dict[d]);
            }
            _ => {}
        }
    }
    key_scratch.clear();
    key_scratch.extend(detail_cols.iter().map(|&c| cols.value_at(row, c)));
    index.probe(key_scratch)
}

/// Fold the selected window rows into one base tuple's accumulators.
/// Typed columns use the batched [`Accumulator`] updates; base-constant
/// and literal inputs skip expression evaluation; other stored columns
/// fold the cell value row by row; only computed expressions
/// late-materialize full rows through the shared scratch. `agg_updates`
/// counts one per aggregate per selected row, exactly like the row path.
#[allow(clippy::too_many_arguments)]
fn update_aggs_batched(
    plan: &BlockPlan,
    b_idx: usize,
    total_aggs: usize,
    accs: &mut [Accumulator],
    b_row: &[Value],
    view: &BatchView<'_>,
    cols: &ColumnSet,
    win_start: usize,
    sel: &[u32],
    stats: &mut EvalStats,
    int_scratch: &mut Vec<i64>,
    float_scratch: &mut Vec<f64>,
    row_scratch: &mut Vec<Value>,
    scratch_at: &mut usize,
) -> Result<()> {
    let base = b_idx * total_aggs + plan.agg_offset;
    for (k, agg) in plan.aggs.iter().enumerate() {
        let acc = &mut accs[base + k];
        match &agg.input {
            None => acc.add_count_star(sel.len() as i64),
            Some(BoundScalar::Column { scope: 1, index }) => {
                let col = view.col(*index);
                match &col.data {
                    ColData::Int(vals) => {
                        int_scratch.clear();
                        int_scratch.extend(
                            sel.iter()
                                .filter(|&&i| !col.is_null(i as usize))
                                .map(|&i| vals[i as usize]),
                        );
                        acc.update_ints(int_scratch);
                    }
                    ColData::Float(vals) => {
                        float_scratch.clear();
                        float_scratch.extend(
                            sel.iter()
                                .filter(|&&i| !col.is_null(i as usize))
                                .map(|&i| vals[i as usize]),
                        );
                        acc.update_floats(float_scratch);
                    }
                    _ => {
                        for &i in sel {
                            acc.update(&cols.value_at(win_start + i as usize, *index));
                        }
                    }
                }
            }
            Some(BoundScalar::Column { scope: 0, index }) => {
                let v = &b_row[*index];
                for _ in sel {
                    acc.update(v);
                }
            }
            Some(BoundScalar::Literal(v)) => {
                for _ in sel {
                    acc.update(v);
                }
            }
            Some(e) => {
                for &i in sel {
                    let row = win_start + i as usize;
                    let r = scratch_row(cols, row, row_scratch, scratch_at);
                    let v = e.eval(&[b_row, r])?;
                    acc.update(&v);
                }
            }
        }
        stats.agg_updates += sel.len() as u64;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_partition(
    base_rows: &[Tuple],
    base_schema: &Schema,
    detail: &Relation,
    spec: &GmdjSpec,
    bound_selection: Option<&BoundPredicate>,
    keep: Keep,
    completion: Option<&CompletionPlan>,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
    kernel: &mut KernelStats,
    sink: &dyn crate::trace::TraceSink,
    out_rows: &mut Vec<Tuple>,
) -> Result<()> {
    stats.partitions += 1;
    stats.base_rows += base_rows.len() as u64;

    let blocks = plan_blocks(base_rows, base_schema, detail.schema(), spec, opts, stats)?;
    let total_aggs: usize = spec.agg_count();

    // Batched fast path. Completion (dead rules, finish-early) is
    // scan-order-dependent, so its bookkeeping keeps the row loop below.
    if opts.vectorized && completion.is_none() {
        let mut accs = new_accumulators(&blocks, base_rows.len(), total_aggs);
        scan_detail_vectorized(
            detail.cols(),
            0..detail.len(),
            &blocks,
            base_rows,
            total_aggs,
            &mut accs,
            stats,
            kernel,
            sink,
        )?;
        return materialize_filtered(
            base_rows,
            &accs,
            total_aggs,
            bound_selection,
            keep,
            out_rows,
        );
    }

    // Completion bookkeeping.
    let mut dead_rule_of_block: Vec<Option<Option<usize>>> = vec![None; blocks.len()];
    let mut need_mask: u64 = 0;
    let mut finish_early = false;
    if let Some(plan) = completion {
        for rule in &plan.dead_rules {
            dead_rule_of_block[rule.on_block] = Some(rule.unless_also);
        }
        if plan.finish_early && blocks.len() <= 64 {
            finish_early = true;
            for &b in &plan.need_match {
                need_mask |= 1u64 << b;
            }
        }
    }

    let n = base_rows.len();
    let mut accs: Vec<Accumulator> = Vec::with_capacity(n * total_aggs);
    for _ in 0..n {
        for block in &blocks {
            for a in &block.aggs {
                accs.push(a.accumulator());
            }
        }
    }
    let mut status: Vec<Status> = vec![Status::Active; n];
    let mut matched: Vec<u64> = vec![0; if finish_early { n } else { 0 }];
    // Active list for Scan access; rebuilt lazily after deaths.
    let has_scan_block = blocks.iter().any(|b| matches!(b.access, Access::Scan));
    let mut scan_list: Vec<u32> = if has_scan_block {
        (0..n as u32).collect()
    } else {
        Vec::new()
    };
    let mut inactive_since_compact = 0usize;
    let mut stab_scratch: Vec<u32> = Vec::new();
    let mut key_scratch: Vec<Value> = Vec::new();

    for r in detail.rows() {
        let r: &[Value] = r;
        stats.detail_scanned += 1;
        for (bi, block) in blocks.iter().enumerate() {
            // Collect candidates per access path and process them.
            macro_rules! process {
                ($b_idx:expr, $exact:expr) => {{
                    let b_idx = $b_idx as usize;
                    if status[b_idx] == Status::Active {
                        stats.probe_candidates += 1;
                        let b_row: &[Value] = &base_rows[b_idx];
                        let passes = match (&block.residual, $exact) {
                            (Some(res), _) => {
                                stats.theta_evals += 1;
                                res.eval(&[b_row, r])?.passes()
                            }
                            (None, true) => true,
                            (None, false) => unreachable!("scan access always has residual"),
                        };
                        if passes {
                            match dead_rule_of_block[bi] {
                                Some(unless_also) => {
                                    let survives = match unless_also {
                                        Some(sub) => {
                                            stats.theta_evals += 1;
                                            blocks[sub].full_theta.eval(&[b_row, r])?.passes()
                                        }
                                        None => false,
                                    };
                                    if survives {
                                        update_aggs(
                                            block, b_idx, total_aggs, &mut accs, b_row, r, stats,
                                        )?;
                                    } else {
                                        status[b_idx] = Status::Dead;
                                        stats.dead_early += 1;
                                        inactive_since_compact += 1;
                                    }
                                }
                                None => {
                                    update_aggs(
                                        block, b_idx, total_aggs, &mut accs, b_row, r, stats,
                                    )?;
                                    if finish_early {
                                        matched[b_idx] |= 1u64 << bi;
                                        if matched[b_idx] & need_mask == need_mask {
                                            status[b_idx] = Status::Done;
                                            stats.done_early += 1;
                                            inactive_since_compact += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }};
            }

            match &block.access {
                Access::Hash {
                    index, detail_cols, ..
                } => {
                    key_scratch.clear();
                    key_scratch.extend(detail_cols.iter().map(|&c| r[c].clone()));
                    for &b_idx in index.probe(&key_scratch) {
                        process!(b_idx, true);
                    }
                }
                Access::Interval { index, detail_col } => {
                    index.stab(&r[*detail_col], &mut stab_scratch);
                    // `stab` fills the scratch; move it out to satisfy the
                    // borrow checker, then put it back.
                    let scratch = std::mem::take(&mut stab_scratch);
                    for &b_idx in &scratch {
                        process!(b_idx, true);
                    }
                    stab_scratch = scratch;
                }
                Access::Scan => {
                    let list = std::mem::take(&mut scan_list);
                    for &b_idx in &list {
                        process!(b_idx, false);
                    }
                    scan_list = list;
                }
            }
        }
        // Lazily compact the scan list once enough tuples completed.
        if has_scan_block
            && inactive_since_compact > 0
            && inactive_since_compact * 8 >= scan_list.len().max(8)
        {
            scan_list.retain(|&b| status[b as usize] == Status::Active);
            inactive_since_compact = 0;
        }
    }

    // Materialize output in base order.
    for (b_idx, b_row) in base_rows.iter().enumerate() {
        match status[b_idx] {
            Status::Dead => continue,
            Status::Done => {
                debug_assert!(matches!(keep, Keep::BaseOnly));
                out_rows.push(b_row.clone());
            }
            Status::Active => {
                let mut full: Vec<Value> = Vec::with_capacity(b_row.len() + total_aggs);
                full.extend(b_row.iter().cloned());
                let acc_base = b_idx * total_aggs;
                for acc in &accs[acc_base..acc_base + total_aggs] {
                    full.push(acc.finish());
                }
                if let Some(sel) = bound_selection {
                    if !sel.eval(&[&full])?.passes() {
                        continue;
                    }
                }
                match keep {
                    Keep::All => out_rows.push(full.into_boxed_slice()),
                    Keep::BaseOnly => out_rows.push(b_row.clone()),
                }
            }
        }
    }
    Ok(())
}

#[inline]
fn update_aggs(
    block: &BlockPlan,
    b_idx: usize,
    total_aggs: usize,
    accs: &mut [Accumulator],
    b_row: &[Value],
    r: &[Value],
    stats: &mut EvalStats,
) -> Result<()> {
    let base = b_idx * total_aggs + block.agg_offset;
    for (k, agg) in block.aggs.iter().enumerate() {
        agg.update(&mut accs[base + k], &[b_row, r])?;
        stats.agg_updates += 1;
    }
    Ok(())
}

/// Build one probe plan per (lᵢ, θᵢ) block.
pub(crate) fn plan_blocks(
    base_rows: &[Tuple],
    base_schema: &Schema,
    detail_schema: &Schema,
    spec: &GmdjSpec,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
) -> Result<Vec<BlockPlan>> {
    let mut plans = Vec::with_capacity(spec.blocks.len());
    let mut agg_offset = 0usize;
    for block in &spec.blocks {
        let full_theta = block.theta.bind(&[base_schema, detail_schema])?;
        let aggs: Vec<BoundAgg> = block
            .aggs
            .iter()
            .map(|a| a.bind(&[base_schema, detail_schema]))
            .collect::<Result<Vec<_>>>()?;

        let (access, residual) = if opts.probe == ProbeStrategy::ForceScan {
            (Access::Scan, Some(block.theta.clone()))
        } else {
            choose_access(
                base_rows,
                base_schema,
                detail_schema,
                &block.theta,
                opts,
                stats,
            )?
        };
        let residual = match residual {
            Some(p) => Some(p.bind(&[base_schema, detail_schema])?),
            None => None,
        };
        let residual_kernel = if opts.vectorized {
            residual.as_ref().and_then(BatchPredicate::compile)
        } else {
            None
        };
        let residual_detail_only = residual_kernel
            .as_ref()
            .map(BatchPredicate::detail_only)
            .unwrap_or(false);
        let kernel_label = match &access {
            Access::Hash {
                typed: Some(TypedKeyIndex::Int(_)),
                ..
            } => "hash-int",
            Access::Hash {
                typed: Some(TypedKeyIndex::Str(_)),
                ..
            } => "hash-str",
            Access::Hash { .. } => "hash",
            Access::Interval { .. } => "band",
            Access::Scan if residual_kernel.is_some() => "scan-mask",
            Access::Scan => "scan-rows",
        };
        plans.push(BlockPlan {
            full_theta,
            residual,
            access,
            aggs,
            agg_offset,
            residual_kernel,
            residual_detail_only,
            kernel_label,
        });
        agg_offset += block.aggs.len();
    }
    Ok(plans)
}

/// Pick the best access path for θ and return it with the residual
/// predicate the path does not enforce.
fn choose_access(
    base_rows: &[Tuple],
    base_schema: &Schema,
    detail_schema: &Schema,
    theta: &Predicate,
    opts: &GmdjOptions,
    stats: &mut EvalStats,
) -> Result<(Access, Option<Predicate>)> {
    let conjuncts = theta.split_conjuncts();

    // 1. Equality pairs B.x = R.y.
    let mut base_cols = Vec::new();
    let mut detail_cols = Vec::new();
    let mut used = vec![false; conjuncts.len()];
    for (i, c) in conjuncts.iter().enumerate() {
        if let Predicate::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = c
        {
            if let Some((bc, dc)) = split_sides(left, right, base_schema, detail_schema)? {
                base_cols.push(bc);
                detail_cols.push(dc);
                used[i] = true;
            }
        }
    }
    if !base_cols.is_empty() {
        let index = HashIndex::build_rows(base_rows.iter().map(|r| r.as_ref()), &base_cols);
        stats.index_builds += 1;
        // Typed sidecar for the common single-column key. Does not count
        // as an index build: it is a physical detail of the same probe
        // plan, and `index_builds` is a gated semantic counter.
        let typed = if opts.vectorized && base_cols.len() == 1 {
            TypedKeyIndex::build_rows(base_rows.iter().map(|r| r.as_ref()), base_cols[0])
        } else {
            None
        };
        let residual = residual_of(&conjuncts, &used);
        return Ok((
            Access::Hash {
                index,
                detail_cols,
                typed,
            },
            residual,
        ));
    }

    // 2. Band pair: R.t >= B.lo ∧ R.t (< | <=) B.hi.
    if let Some((lo_i, hi_i, detail_col, lo_col, hi_col, hi_inclusive)) =
        find_band(&conjuncts, base_schema, detail_schema)?
    {
        let index = IntervalIndex::build(
            base_rows
                .iter()
                .map(|r| (r[lo_col].clone(), r[hi_col].clone())),
            hi_inclusive,
        );
        stats.index_builds += 1;
        used[lo_i] = true;
        used[hi_i] = true;
        let residual = residual_of(&conjuncts, &used);
        return Ok((Access::Interval { index, detail_col }, residual));
    }

    // 3. Fall back to scanning active base tuples.
    Ok((Access::Scan, Some(theta.clone())))
}

/// If `left`/`right` are single columns on opposite sides of the
/// (base, detail) divide, return `(base_col, detail_col)` positions.
fn split_sides(
    left: &ScalarExpr,
    right: &ScalarExpr,
    base: &Schema,
    detail: &Schema,
) -> Result<Option<(usize, usize)>> {
    let (ScalarExpr::Column(l), ScalarExpr::Column(r)) = (left, right) else {
        return Ok(None);
    };
    let l_base = l.resolve_in(base).ok();
    let l_detail = l.resolve_in(detail).ok();
    let r_base = r.resolve_in(base).ok();
    let r_detail = r.resolve_in(detail).ok();
    match (l_base, l_detail, r_base, r_detail) {
        (Some(b), None, None, Some(d)) => Ok(Some((b, d))),
        (None, Some(d), Some(b), None) => Ok(Some((b, d))),
        _ => Ok(None),
    }
}

type Band = (usize, usize, usize, usize, usize, bool);

/// Find a pair of conjuncts forming `R.t ≥ B.lo ∧ R.t < B.hi` (or `≤`).
/// Returns (lo conjunct idx, hi conjunct idx, detail col t, base col lo,
/// base col hi, hi_inclusive).
fn find_band(conjuncts: &[&Predicate], base: &Schema, detail: &Schema) -> Result<Option<Band>> {
    // Normalized single-sided comparisons: (conjunct idx, detail col,
    // base col, op with detail on the left).
    let mut lowers: Vec<(usize, usize, usize)> = Vec::new(); // R.t >= B.lo
    let mut uppers: Vec<(usize, usize, usize, bool)> = Vec::new(); // R.t < B.hi (incl?)
    for (i, c) in conjuncts.iter().enumerate() {
        let Predicate::Cmp { op, left, right } = c else {
            continue;
        };
        let (ScalarExpr::Column(l), ScalarExpr::Column(r)) = (left, right) else {
            continue;
        };
        // Orient so the detail column is on the left.
        let (detail_col, base_col, op) =
            if let (Ok(d), Ok(b)) = (l.resolve_in(detail), r.resolve_in(base)) {
                if l.resolve_in(base).is_ok() || r.resolve_in(detail).is_ok() {
                    continue; // ambiguous sides
                }
                (d, b, *op)
            } else if let (Ok(d), Ok(b)) = (r.resolve_in(detail), l.resolve_in(base)) {
                if r.resolve_in(base).is_ok() || l.resolve_in(detail).is_ok() {
                    continue;
                }
                (d, b, op.flip())
            } else {
                continue;
            };
        match op {
            CmpOp::Ge => lowers.push((i, detail_col, base_col)),
            CmpOp::Lt => uppers.push((i, detail_col, base_col, false)),
            CmpOp::Le => uppers.push((i, detail_col, base_col, true)),
            _ => {}
        }
    }
    for &(li, lt, lb) in &lowers {
        for &(ui, ut, ub, inclusive) in &uppers {
            if lt == ut {
                return Ok(Some((li, ui, lt, lb, ub, inclusive)));
            }
        }
    }
    Ok(None)
}

fn residual_of(conjuncts: &[&Predicate], used: &[bool]) -> Option<Predicate> {
    let rest: Vec<Predicate> = conjuncts
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(c, _)| (*c).clone())
        .collect();
    if rest.is_empty() {
        None
    } else {
        Some(Predicate::conjoin(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggBlock;
    use gmdj_relation::agg::NamedAgg;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;

    fn hours() -> Relation {
        RelationBuilder::new("H")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .row(vec![3.into(), 121.into(), 180.into()])
            .build()
            .unwrap()
    }

    fn flows() -> Relation {
        RelationBuilder::new("F")
            .column("StartTime", DataType::Int)
            .column("Protocol", DataType::Str)
            .column("NumBytes", DataType::Int)
            .row(vec![43.into(), "HTTP".into(), 12.into()])
            .row(vec![86.into(), "HTTP".into(), 36.into()])
            .row(vec![99.into(), "FTP".into(), 48.into()])
            .row(vec![132.into(), "HTTP".into(), 24.into()])
            .row(vec![156.into(), "HTTP".into(), 24.into()])
            .row(vec![161.into(), "FTP".into(), 48.into()])
            .build()
            .unwrap()
    }

    /// Example 2.1 / Figure 1: the GMDJ with two sum blocks.
    fn example_2_1_spec() -> GmdjSpec {
        let in_hour = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")));
        GmdjSpec::new(vec![
            AggBlock::new(
                in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
                vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
            ),
            AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
        ])
    }

    #[test]
    fn figure_1_output() {
        let mut stats = EvalStats::default();
        let out = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            out.schema().qualified_names(),
            vec![
                "H.HourDsc",
                "H.StartInterval",
                "H.EndInterval",
                "sum1",
                "sum2"
            ]
        );
        let rows = out.sorted_rows();
        // Figure 1: 12/12, 36/84, 48/96.
        assert_eq!(rows[0][3], Value::Int(12));
        assert_eq!(rows[0][4], Value::Int(12));
        assert_eq!(rows[1][3], Value::Int(36));
        assert_eq!(rows[1][4], Value::Int(84));
        assert_eq!(rows[2][3], Value::Int(48));
        assert_eq!(rows[2][4], Value::Int(96));
        // Single scan of the detail table per partition.
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.detail_scanned, 6);
        // Interval index was used for both blocks.
        assert_eq!(stats.index_builds, 2);
    }

    #[test]
    fn inclusive_band_uses_interval_index_and_matches_scan() {
        // R.t >= B.lo ∧ R.t <= B.hi (BETWEEN-style, inclusive upper).
        let spec = GmdjSpec::new(vec![AggBlock::count(
            col("F.StartTime")
                .ge(col("H.StartInterval"))
                .and(col("F.StartTime").le(col("H.EndInterval"))),
            "cnt",
        )]);
        let mut s1 = EvalStats::default();
        let mut s2 = EvalStats::default();
        let indexed =
            eval_gmdj(&hours(), &flows(), &spec, &GmdjOptions::default(), &mut s1).unwrap();
        let scanned = eval_gmdj(
            &hours(),
            &flows(),
            &spec,
            &GmdjOptions {
                probe: ProbeStrategy::ForceScan,
                ..GmdjOptions::default()
            },
            &mut s2,
        )
        .unwrap();
        assert!(indexed.multiset_eq(&scanned));
        assert_eq!(
            s1.index_builds, 1,
            "band condition should build an interval index"
        );
        // A boundary point: StartTime 120 would fall in hour 1's closed
        // interval [61, 120] — check the inclusive edge via hour 2's
        // upper bound.
        let rows = indexed.sorted_rows();
        assert_eq!(rows[1][3], Value::Int(2)); // 86 and 99 in [61,120]
    }

    #[test]
    fn force_scan_matches_indexed_result() {
        let mut s1 = EvalStats::default();
        let mut s2 = EvalStats::default();
        let indexed = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        let scanned = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions {
                probe: ProbeStrategy::ForceScan,
                ..GmdjOptions::default()
            },
            &mut s2,
        )
        .unwrap();
        assert!(indexed.multiset_eq(&scanned));
        assert!(s2.probe_candidates > s1.probe_candidates);
    }

    #[test]
    fn partitioned_evaluation_matches_single_scan() {
        let mut s1 = EvalStats::default();
        let mut s2 = EvalStats::default();
        let single = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut s1,
        )
        .unwrap();
        let parts = eval_gmdj(
            &hours(),
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions {
                partition_rows: Some(1),
                ..GmdjOptions::default()
            },
            &mut s2,
        )
        .unwrap();
        assert!(single.multiset_eq(&parts));
        assert_eq!(s2.partitions, 3);
        assert_eq!(s2.detail_scanned, 18); // one detail scan per partition
    }

    #[test]
    fn empty_detail_yields_zero_counts_and_null_sums() {
        let empty = RelationBuilder::new("F")
            .column("StartTime", DataType::Int)
            .column("Protocol", DataType::Str)
            .column("NumBytes", DataType::Int)
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::new(
            Predicate::true_(),
            vec![
                NamedAgg::count_star("cnt"),
                NamedAgg::sum(col("F.NumBytes"), "s"),
            ],
        )]);
        let mut stats = EvalStats::default();
        let out = eval_gmdj(&hours(), &empty, &spec, &GmdjOptions::default(), &mut stats).unwrap();
        assert_eq!(out.len(), 3);
        for row in out.rows() {
            assert_eq!(row[3], Value::Int(0));
            assert!(row[4].is_null());
        }
    }

    #[test]
    fn empty_base_yields_empty_output() {
        let empty_base = RelationBuilder::new("H")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .build()
            .unwrap();
        let mut stats = EvalStats::default();
        let out = eval_gmdj(
            &empty_base,
            &flows(),
            &example_2_1_spec(),
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    fn exists_spec() -> GmdjSpec {
        GmdjSpec::new(vec![AggBlock::count(
            col("F.StartTime")
                .ge(col("H.StartInterval"))
                .and(col("F.StartTime").lt(col("H.EndInterval")))
                .and(col("F.Protocol").eq(lit("FTP"))),
            "cnt",
        )])
    }

    #[test]
    fn filtered_exists_with_finish_early() {
        let spec = exists_spec();
        let sel = col("cnt").gt(lit(0));
        let plan = crate::completion::derive_completion(&sel, &spec, true).unwrap();
        assert!(plan.finish_early);
        let mut stats = EvalStats::default();
        let out = eval_gmdj_filtered(
            &hours(),
            &flows(),
            &spec,
            Some(&sel),
            Keep::BaseOnly,
            Some(&plan),
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        // Hours 2 and 3 contain FTP flows.
        let rows = out.sorted_rows();
        assert_eq!(out.len(), 2);
        assert_eq!(rows[0][0], Value::Int(2));
        assert_eq!(rows[1][0], Value::Int(3));
        assert_eq!(out.schema().len(), 3); // base attributes only
        assert_eq!(stats.done_early, 2);
    }

    #[test]
    fn filtered_not_exists_with_dead_rule() {
        let spec = exists_spec();
        let sel = col("cnt").eq(lit(0));
        let plan = crate::completion::derive_completion(&sel, &spec, true).unwrap();
        let mut stats = EvalStats::default();
        let out = eval_gmdj_filtered(
            &hours(),
            &flows(),
            &spec,
            Some(&sel),
            Keep::BaseOnly,
            Some(&plan),
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(stats.dead_early, 2);
        // Same result without completion.
        let mut stats2 = EvalStats::default();
        let out2 = eval_gmdj_filtered(
            &hours(),
            &flows(),
            &spec,
            Some(&sel),
            Keep::BaseOnly,
            None,
            &GmdjOptions::default(),
            &mut stats2,
        )
        .unwrap();
        assert!(out.multiset_eq(&out2));
        assert_eq!(stats2.dead_early, 0);
    }

    #[test]
    fn pair_dead_rule_mimics_smart_nested_loop() {
        // ALL-style: cnt1 counts θ ∧ B.v > F.NumBytes, cnt2 counts θ, with
        // θ a non-indexable <>; selection cnt1 = cnt2.
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .row(vec![1.into(), 1000.into()]) // > all bytes from other keys
            .row(vec![2.into(), 0.into()]) // fails immediately
            .build()
            .unwrap();
        let theta = col("B.k").ne(col("F.k"));
        let detail = RelationBuilder::new("F")
            .column("k", DataType::Int)
            .column("NumBytes", DataType::Int)
            .row(vec![1.into(), 12.into()])
            .row(vec![2.into(), 36.into()])
            .row(vec![3.into(), 48.into()])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![
            AggBlock::count(theta.clone().and(col("B.v").gt(col("F.NumBytes"))), "cnt1"),
            AggBlock::count(theta, "cnt2"),
        ]);
        let sel = col("cnt1").eq(col("cnt2"));
        let plan = crate::completion::derive_completion(&sel, &spec, true).unwrap();
        let mut stats = EvalStats::default();
        let out = eval_gmdj_filtered(
            &base,
            &detail,
            &spec,
            Some(&sel),
            Keep::BaseOnly,
            Some(&plan),
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(stats.dead_early, 1);
    }

    #[test]
    fn null_correlation_keys_never_match() {
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![Value::Null])
            .row(vec![1.into()])
            .build()
            .unwrap();
        let detail = RelationBuilder::new("R")
            .column("k", DataType::Int)
            .row(vec![Value::Null])
            .row(vec![1.into()])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::count(col("B.k").eq(col("R.k")), "cnt")]);
        let mut stats = EvalStats::default();
        let out = eval_gmdj(&base, &detail, &spec, &GmdjOptions::default(), &mut stats).unwrap();
        let rows = out.sorted_rows();
        // NULL base row: count 0 (NULL = anything is unknown).
        assert!(rows[0][0].is_null());
        assert_eq!(rows[0][1], Value::Int(0));
        assert_eq!(rows[1][1], Value::Int(1));
        // Scan path agrees (3VL handled by predicate evaluation).
        let mut s2 = EvalStats::default();
        let scanned = eval_gmdj(
            &base,
            &detail,
            &spec,
            &GmdjOptions {
                probe: ProbeStrategy::ForceScan,
                ..GmdjOptions::default()
            },
            &mut s2,
        )
        .unwrap();
        assert!(out.multiset_eq(&scanned));
    }

    #[test]
    fn duplicate_base_tuples_each_get_results() {
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .row(vec![1.into()])
            .build()
            .unwrap();
        let detail = RelationBuilder::new("R")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .row(vec![1.into()])
            .row(vec![2.into()])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::count(col("B.k").eq(col("R.k")), "cnt")]);
        let mut stats = EvalStats::default();
        let out = eval_gmdj(&base, &detail, &spec, &GmdjOptions::default(), &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        for row in out.rows() {
            assert_eq!(row[1], Value::Int(2));
        }
    }

    /// Run one (base, detail, spec) with `vectorized` on and off and
    /// require identical output multisets AND bit-identical counters.
    fn assert_vectorized_exact(
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        probe: ProbeStrategy,
        ctx: &str,
    ) {
        for partition_rows in [None, Some(2)] {
            let mut on_stats = EvalStats::default();
            let mut off_stats = EvalStats::default();
            let on = eval_gmdj(
                base,
                detail,
                spec,
                &GmdjOptions {
                    probe,
                    partition_rows,
                    vectorized: true,
                },
                &mut on_stats,
            )
            .unwrap();
            let off = eval_gmdj(
                base,
                detail,
                spec,
                &GmdjOptions {
                    probe,
                    partition_rows,
                    vectorized: false,
                },
                &mut off_stats,
            )
            .unwrap();
            assert!(
                on.multiset_eq(&off),
                "{ctx}: vectorized output diverged (partition_rows {partition_rows:?})"
            );
            assert_eq!(
                on_stats, off_stats,
                "{ctx}: vectorized counters diverged (partition_rows {partition_rows:?})"
            );
        }
    }

    #[test]
    fn vectorized_is_counter_exact_on_figure_1() {
        for probe in [ProbeStrategy::Auto, ProbeStrategy::ForceScan] {
            assert_vectorized_exact(&hours(), &flows(), &example_2_1_spec(), probe, "figure 1");
        }
    }

    #[test]
    fn vectorized_is_counter_exact_on_string_hash_keys() {
        // Equality on a Str key exercises the prehashed string sidecar;
        // the residual band keeps a detail+base mixed residual per row.
        let spec = GmdjSpec::new(vec![AggBlock::new(
            col("F.Protocol")
                .eq(col("B.proto"))
                .and(col("F.NumBytes").gt(col("B.floor"))),
            vec![
                NamedAgg::sum(col("F.NumBytes"), "s"),
                NamedAgg::count_star("c"),
            ],
        )]);
        let base = RelationBuilder::new("B")
            .column("proto", DataType::Str)
            .column("floor", DataType::Int)
            .row(vec!["HTTP".into(), 20.into()])
            .row(vec!["FTP".into(), 0.into()])
            .row(vec![Value::Null, 0.into()])
            .build()
            .unwrap();
        for probe in [ProbeStrategy::Auto, ProbeStrategy::ForceScan] {
            assert_vectorized_exact(&base, &flows(), &spec, probe, "string keys");
        }
    }

    #[test]
    fn vectorized_is_counter_exact_on_mixed_typed_columns() {
        // A detail key column mixing Int and Float defeats the typed
        // sidecar and the kernels; the fallback must stay exact,
        // including Int(1) = Float(1.0) cross-type equality.
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .row(vec![2.into()])
            .build()
            .unwrap();
        let detail = RelationBuilder::new("R")
            .column("k", DataType::Float)
            .column("v", DataType::Float)
            .row(vec![Value::Float(1.0), Value::Float(0.5)])
            .row(vec![Value::Int(2), Value::Int(3)])
            .row(vec![Value::Null, Value::Float(9.0)])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::new(
            col("B.k").eq(col("R.k")),
            vec![NamedAgg::sum(col("R.v"), "s"), NamedAgg::count_star("c")],
        )]);
        for probe in [ProbeStrategy::Auto, ProbeStrategy::ForceScan] {
            assert_vectorized_exact(&base, &detail, &spec, probe, "mixed columns");
        }
    }

    #[test]
    fn vectorized_spans_multiple_batches() {
        // More than BATCH_ROWS detail rows: exercises the per-window
        // decode loop and batch-boundary accumulator ordering.
        let mut detail = RelationBuilder::new("R")
            .column("k", DataType::Int)
            .column("v", DataType::Float);
        for i in 0..(super::BATCH_ROWS as i64 + 700) {
            detail = detail.row(vec![(i % 7).into(), Value::Float(i as f64 * 0.25)]);
        }
        let detail = detail.build().unwrap();
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![3.into()])
            .row(vec![5.into()])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::new(
            col("B.k").eq(col("R.k")),
            vec![NamedAgg::sum(col("R.v"), "s"), NamedAgg::count_star("c")],
        )]);
        for probe in [ProbeStrategy::Auto, ProbeStrategy::ForceScan] {
            assert_vectorized_exact(&base, &detail, &spec, probe, "multi batch");
        }
    }

    #[test]
    fn vectorized_errors_match_row_path() {
        // Comparing Str to Int raises TypeMismatch on the row path; the
        // kernel layer must refuse to specialize and surface the same
        // error rather than silently masking it.
        let base = RelationBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap();
        let detail = RelationBuilder::new("R")
            .column("k", DataType::Str)
            .row(vec!["x".into()])
            .build()
            .unwrap();
        let spec = GmdjSpec::new(vec![AggBlock::count(col("B.k").lt(col("R.k")), "c")]);
        for vectorized in [true, false] {
            let mut stats = EvalStats::default();
            let err = eval_gmdj(
                &base,
                &detail,
                &spec,
                &GmdjOptions {
                    vectorized,
                    ..GmdjOptions::default()
                },
                &mut stats,
            );
            assert!(err.is_err(), "vectorized={vectorized} must error");
        }
    }

    #[test]
    fn selection_without_completion_keeps_aggregates() {
        let spec = exists_spec();
        let sel = col("cnt").gt(lit(0));
        let mut stats = EvalStats::default();
        let out = eval_gmdj_filtered(
            &hours(),
            &flows(),
            &spec,
            Some(&sel),
            Keep::All,
            None,
            &GmdjOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.schema().len(), 4);
        assert_eq!(out.len(), 2);
    }
}
