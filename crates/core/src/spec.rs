//! The GMDJ operator specification (Definition 2.1).

use std::fmt;
use std::sync::Arc;

use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::Predicate;
use gmdj_relation::schema::Schema;

/// One (lᵢ, θᵢ) pair of a GMDJ: a list of aggregate functions computed
/// over the tuples of the detail relation satisfying θᵢ.
#[derive(Debug, Clone, PartialEq)]
pub struct AggBlock {
    /// The condition θᵢ over **B** ∪ **R**.
    pub theta: Predicate,
    /// The aggregate list lᵢ = (fᵢ₁ cᵢ₁ → name, …).
    pub aggs: Vec<NamedAgg>,
}

impl AggBlock {
    /// Construct a block.
    pub fn new(theta: Predicate, aggs: Vec<NamedAgg>) -> Self {
        AggBlock { theta, aggs }
    }

    /// The ubiquitous `count(*) → name` block of the subquery translation.
    pub fn count(theta: Predicate, output: impl Into<String>) -> Self {
        AggBlock {
            theta,
            aggs: vec![NamedAgg::count_star(output)],
        }
    }
}

impl fmt::Display for AggBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let aggs: Vec<String> = self.aggs.iter().map(|a| a.to_string()).collect();
        write!(f, "({}) | θ: {}", aggs.join(", "), self.theta)
    }
}

/// The aggregate/condition part of a GMDJ,
/// `MD(B, R, (l₁,…,lₘ), (θ₁,…,θₘ))`.
///
/// The base-values relation `B` and detail relation `R` are supplied at
/// evaluation time; a `GmdjSpec` is the reusable (l⃗, θ⃗) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjSpec {
    /// The (lᵢ, θᵢ) blocks, in output-column order.
    pub blocks: Vec<AggBlock>,
}

impl GmdjSpec {
    /// Construct from blocks.
    pub fn new(blocks: Vec<AggBlock>) -> Self {
        GmdjSpec { blocks }
    }

    /// Output schema: **B**'s attributes followed by every block's
    /// aggregate output columns (renamed on collision, footnote 1).
    pub fn output_schema(&self, base: &Schema) -> Arc<Schema> {
        let extra: Vec<_> = self
            .blocks
            .iter()
            .flat_map(|b| b.aggs.iter().map(NamedAgg::output_field))
            .collect();
        base.extend_computed(&extra)
    }

    /// Output names of every aggregate, in schema order.
    pub fn output_names(&self) -> Vec<&str> {
        self.blocks
            .iter()
            .flat_map(|b| b.aggs.iter().map(|a| a.output.as_str()))
            .collect()
    }

    /// Total number of aggregate output columns.
    pub fn agg_count(&self) -> usize {
        self.blocks.iter().map(|b| b.aggs.len()).sum()
    }

    /// Index of the block producing the named output, if any.
    pub fn block_of_output(&self, name: &str) -> Option<usize> {
        self.blocks
            .iter()
            .position(|b| b.aggs.iter().any(|a| a.output == name))
    }

    /// True when the named output is a `count(*)` (the completion
    /// derivation only reasons about counts).
    pub fn output_is_count_star(&self, name: &str) -> bool {
        self.blocks.iter().any(|b| {
            b.aggs
                .iter()
                .any(|a| a.output == name && a.func == gmdj_relation::agg::AggFunc::CountStar)
        })
    }

    /// Append the blocks of another spec (coalescing, Proposition 4.1).
    pub fn extended_with(&self, other: &GmdjSpec) -> GmdjSpec {
        let mut blocks = self.blocks.clone();
        blocks.extend(other.blocks.iter().cloned());
        GmdjSpec { blocks }
    }
}

impl fmt::Display for GmdjSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "l{} {b}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::schema::DataType;

    fn spec() -> GmdjSpec {
        GmdjSpec::new(vec![
            AggBlock::count(col("B.k").eq(col("R.k")), "cnt1"),
            AggBlock::new(
                col("B.k").eq(col("R.k")).and(col("R.p").eq(lit("HTTP"))),
                vec![
                    NamedAgg::sum(col("R.bytes"), "sum1"),
                    NamedAgg::count_star("cnt2"),
                ],
            ),
        ])
    }

    #[test]
    fn output_schema_appends_aggregates() {
        let base = Schema::qualified("B", &[("k", DataType::Int)]);
        let out = spec().output_schema(&base);
        assert_eq!(out.qualified_names(), vec!["B.k", "cnt1", "sum1", "cnt2"]);
    }

    #[test]
    fn output_lookup() {
        let s = spec();
        assert_eq!(s.output_names(), vec!["cnt1", "sum1", "cnt2"]);
        assert_eq!(s.agg_count(), 3);
        assert_eq!(s.block_of_output("cnt1"), Some(0));
        assert_eq!(s.block_of_output("sum1"), Some(1));
        assert_eq!(s.block_of_output("cnt2"), Some(1));
        assert_eq!(s.block_of_output("nope"), None);
        assert!(s.output_is_count_star("cnt1"));
        assert!(s.output_is_count_star("cnt2"));
        assert!(!s.output_is_count_star("sum1"));
    }

    #[test]
    fn coalescing_concatenates_blocks() {
        let s = spec().extended_with(&spec());
        assert_eq!(s.blocks.len(), 4);
    }

    #[test]
    fn output_schema_renames_collisions() {
        let base = Schema::qualified("B", &[("k", DataType::Int)]);
        let s = GmdjSpec::new(vec![
            AggBlock::count(Predicate::true_(), "cnt"),
            AggBlock::count(Predicate::true_(), "cnt"),
        ]);
        let out = s.output_schema(&base);
        assert_eq!(out.qualified_names(), vec!["B.k", "cnt", "cnt_2"]);
    }
}
