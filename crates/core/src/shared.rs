//! Cross-query shared detail scans (extended Prop. 4.1).
//!
//! The paper coalesces GMDJs over the same detail table *within* one
//! query; this module extends the same argument *across* concurrently
//! submitted queries. Accumulator arrays are per-query private state, so
//! any number of independent GMDJs over one detail relation can ride a
//! single morsel-driven pass: each pulled window is dispatched to every
//! query's membership predicates and accumulator updates
//! ([`crate::eval::scan_detail_window`]), then results demultiplex back
//! to per-query waiters. The physical wins: detail chunks are read once
//! per pass instead of once per query, and *structurally identical*
//! queries in one batch collapse to a single evaluation fanned out to
//! all members (the degenerate case of Prop. 4.1 block merging). The
//! logical accounting stays per-query, so every gated [`EvalStats`]
//! counter is identical to a standalone run of the same query.
//!
//! # Coalescing protocol
//!
//! [`SharedScanPool::submit`] keys arrivals on detail-table identity
//! (the columnar storage `Arc` pointer — [`Relation::cols_arc`] is shared
//! across renames, so the same stored table coalesces under any
//! qualifier). The first arrival for a key becomes the *leader*: it waits
//! out a short coalescing window (released early once
//! [`SharedScanConfig::target_batch`] queries are queued), drains the
//! batch, runs one shared pass, and delivers each query's result.
//! Arrivals during an in-flight pass elect the next leader and coalesce
//! behind it — i.e. they queue behind the running scan rather than start
//! a competing one on the same table.
//!
//! # Correctness
//!
//! Per query the shared pass performs exactly the standalone chunked
//! evaluation: its own probe plans ([`crate::eval::plan_blocks`]), its
//! own private per-worker accumulators merged in worker order
//! ([`gmdj_relation::agg::Accumulator::merge`] is exact), its own
//! selection/projection materialization. Sharing only changes *when*
//! windows are visited — and window scheduling is provably invisible
//! (the fuzz harness's morsel-size sweep gates this) — so results are
//! bit-identical and per-query counters match standalone execution.
//!
//! # Observability
//!
//! Each pass emits a `gmdj.shared_scan` span and maintains the gated
//! counters `shared_scan_passes_total` / `shared_scan_queries_served_total`
//! plus the `shared_scan_queries` log₂ histogram (queries per pass) in the
//! global [`metrics`] registry. The closed-form invariant: detail chunk
//! reads are paid once per *pass*, so under any actual sharing
//! `shared_scan_passes_total < shared_scan_queries_served_total`, while
//! the per-query `col_chunk_reads` counters still sum as if each query
//! had scanned alone (logical accounting).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gmdj_relation::agg::Accumulator;
use gmdj_relation::columnar::COLUMN_CHUNK_ROWS;
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{BoundPredicate, Predicate};
use gmdj_relation::relation::{Relation, Tuple};
use gmdj_relation::schema::Schema;

use crate::eval::{
    materialize_filtered, new_accumulators, plan_blocks, referenced_detail_cols,
    scan_detail_window, BlockPlan, EvalStats, GmdjOptions, Keep, KernelStats,
};
use crate::metrics;
use crate::runtime::DEFAULT_MORSEL_ROWS;
use crate::spec::GmdjSpec;
use crate::trace::{Span, TraceSink};

/// Tuning knobs for the coalescing queue and the shared pass.
#[derive(Debug, Clone)]
pub struct SharedScanConfig {
    /// How long the batch leader holds the door open for more arrivals.
    pub window: Duration,
    /// Release the window early once this many queries are queued.
    pub target_batch: usize,
    /// Worker threads for the shared morsel-driven pass.
    pub threads: usize,
    /// Morsel size (detail rows) for the shared pass's work queue. Pure
    /// scheduling — per-query counters and results are identical for
    /// every setting.
    pub morsel_rows: usize,
}

impl Default for SharedScanConfig {
    fn default() -> Self {
        SharedScanConfig {
            window: Duration::from_millis(2),
            target_batch: 8,
            threads: 4,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// What a shared pass hands back to each waiter: the query's result plus
/// its private counters, exactly as a standalone evaluation would have
/// recorded them.
#[derive(Debug)]
pub struct SharedOutput {
    /// The query's (filtered, projected) GMDJ answer.
    pub relation: Relation,
    /// This query's evaluator counters (logical accounting: identical to
    /// a standalone run of the same query).
    pub eval: EvalStats,
    /// This query's kernel counters.
    pub kernel: KernelStats,
    /// Critical-path worker wall-clock of the shared pass.
    pub worker_max_ns: u64,
    /// Summed worker wall-clock of the shared pass.
    pub worker_sum_ns: u64,
    /// How many queries shared the pass that produced this result.
    pub pass_queries: u64,
}

/// One enqueued query: everything the leader needs to evaluate it, plus
/// the slot its waiter blocks on.
#[derive(Debug)]
struct SharedRequest {
    base: Relation,
    detail: Relation,
    spec: GmdjSpec,
    selection: Option<Predicate>,
    keep: Keep,
    opts: GmdjOptions,
    /// The submitter carried a completion plan; chunked scans fall back
    /// to the plain filtered form (same answer) and record it.
    completion_fallback: bool,
    slot: Arc<ResultSlot>,
}

/// Rendezvous for one query's result.
#[derive(Debug, Default)]
struct ResultSlot {
    ready: Mutex<Option<Result<SharedOutput>>>,
    cv: Condvar,
}

impl ResultSlot {
    fn deliver(&self, result: Result<SharedOutput>) {
        let mut ready = self.ready.lock().expect("shared-scan slot poisoned");
        *ready = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<SharedOutput> {
        let mut ready = self.ready.lock().expect("shared-scan slot poisoned");
        loop {
            if let Some(result) = ready.take() {
                return result;
            }
            ready = self.cv.wait(ready).expect("shared-scan slot poisoned");
        }
    }
}

/// Identity of a detail table for coalescing: the columnar storage's
/// `Arc` pointer plus the row count. Renamed views share the storage
/// `Arc`, so the same stored table coalesces under any qualifier.
type DetailKey = (usize, usize);

fn detail_key(detail: &Relation) -> DetailKey {
    (
        Arc::as_ptr(&detail.cols_arc()) as *const () as usize,
        detail.len(),
    )
}

#[derive(Debug, Default)]
struct TableQueue {
    pending: Vec<SharedRequest>,
    /// A leader is currently inside the coalescing window for this key.
    /// Cleared at drain time, so arrivals during the in-flight pass
    /// elect the next leader.
    leader: bool,
}

#[derive(Debug, Default)]
struct PoolState {
    queues: HashMap<DetailKey, TableQueue>,
}

/// The concurrent submission layer: a process- or session-scoped pool
/// that merges concurrently submitted GMDJs over the same detail table
/// into one shared morsel-driven pass. Attach to a
/// [`Runtime`](crate::runtime::Runtime) via
/// [`with_shared_pool`](crate::runtime::Runtime::with_shared_pool); only
/// the explicit `submit` path engages sharing — standalone evaluation is
/// untouched.
#[derive(Debug, Default)]
pub struct SharedScanPool {
    cfg: SharedScanConfig,
    state: Mutex<PoolState>,
    arrivals: Condvar,
}

impl SharedScanPool {
    /// A pool with the given tuning.
    pub fn new(cfg: SharedScanConfig) -> Self {
        SharedScanPool {
            cfg,
            state: Mutex::new(PoolState::default()),
            arrivals: Condvar::new(),
        }
    }

    /// The pool's tuning knobs.
    pub fn config(&self) -> &SharedScanConfig {
        &self.cfg
    }

    /// Closed-form number of morsels one shared pass deals for a detail
    /// relation of `detail_len` rows (the coarse progress unit each
    /// submitted query announces).
    pub fn scheduled_morsels(&self, detail_len: usize) -> u64 {
        let morsel = self.cfg.morsel_rows.max(1).min(detail_len.max(1));
        detail_len.div_ceil(morsel).max(1) as u64
    }

    /// Submit one (filtered) GMDJ for coalesced evaluation and block
    /// until its result is demultiplexed back. Queries arriving within
    /// the coalescing window (or queued behind an in-flight pass) over
    /// the same detail table share one detail scan.
    ///
    /// `sink` receives the `gmdj.shared_scan` span if this caller ends up
    /// leading the pass.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        base: &Relation,
        detail: &Relation,
        spec: &GmdjSpec,
        selection: Option<&Predicate>,
        keep: Keep,
        opts: &GmdjOptions,
        completion_fallback: bool,
        sink: &dyn TraceSink,
    ) -> Result<SharedOutput> {
        let key = detail_key(detail);
        let slot = Arc::new(ResultSlot::default());
        let request = SharedRequest {
            // Storage-sharing clones: fresh row-view caches so enqueueing
            // never deep-copies a materialized row vector.
            base: Relation::from_columns(base.schema().clone(), base.cols_arc()),
            detail: Relation::from_columns(detail.schema().clone(), detail.cols_arc()),
            spec: spec.clone(),
            selection: selection.cloned(),
            keep,
            opts: opts.clone(),
            completion_fallback,
            slot: slot.clone(),
        };
        let leads = {
            let mut state = self.state.lock().expect("shared-scan pool poisoned");
            let queue = state.queues.entry(key).or_default();
            queue.pending.push(request);
            if queue.leader {
                // A leader is collecting: wake it so an early-release
                // target is noticed immediately.
                self.arrivals.notify_all();
                false
            } else {
                queue.leader = true;
                true
            }
        };
        if leads {
            let deadline = Instant::now() + self.cfg.window;
            let mut state = self.state.lock().expect("shared-scan pool poisoned");
            loop {
                let queued = state.queues.get(&key).map_or(0, |q| q.pending.len());
                if queued >= self.cfg.target_batch.max(1) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .arrivals
                    .wait_timeout(state, deadline - now)
                    .expect("shared-scan pool poisoned");
                state = guard;
            }
            let batch = {
                let queue = state
                    .queues
                    .get_mut(&key)
                    .expect("leader's queue disappeared");
                queue.leader = false;
                std::mem::take(&mut queue.pending)
            };
            drop(state);
            self.run_pass(batch, sink);
        }
        slot.wait()
    }

    /// Execute one shared pass over a drained batch and deliver each
    /// query's result to its waiter.
    fn run_pass(&self, batch: Vec<SharedRequest>, sink: &dyn TraceSink) {
        let queries = batch.len() as u64;
        let mut span = Span::begin(sink, "gmdj.shared_scan");
        let results = self.execute_batch(&batch, sink);
        span.field("queries", queries);
        span.field(
            "detail_rows",
            batch.first().map_or(0, |r| r.detail.len() as u64),
        );
        span.finish();
        let m = metrics::global();
        m.inc("shared_scan_passes_total", 1);
        m.inc("shared_scan_queries_served_total", queries);
        m.observe("shared_scan_queries", queries);
        for (request, result) in batch.iter().zip(results) {
            request.slot.deliver(result);
        }
    }

    /// One shared morsel-driven detail pass feeding every query's private
    /// accumulators — the multi-query generalization of the runtime's
    /// parallel partition scan.
    fn execute_batch(
        &self,
        batch: &[SharedRequest],
        sink: &dyn TraceSink,
    ) -> Vec<Result<SharedOutput>> {
        // All queued requests share one detail identity by construction.
        let detail = &batch[0].detail;
        let detail_len = detail.len();
        let io_pages = detail_len.div_ceil(COLUMN_CHUNK_ROWS) as u64;
        let io_schema_cols = detail.schema().len() as u64;

        let mut outputs: Vec<Option<Result<SharedOutput>>> = batch.iter().map(|_| None).collect();
        // Structurally identical queries in one batch collapse to a single
        // evaluation whose output fans out to every member — the
        // degenerate case of Prop. 4.1 block merging (two identical
        // blocks are one block). Under a concurrent load of clones this
        // is where the throughput win comes from: one probe/θ/accumulate
        // stream serves the whole group. Distinct queries keep their own
        // plans and accumulators within the same pass.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..batch.len() {
            match groups
                .iter_mut()
                .find(|g| same_query(&batch[g[0]], &batch[i]))
            {
                Some(g) => g.push(i),
                None => groups.push(vec![i]),
            }
        }
        // Per-group preparation mirrors the standalone chunked evaluator
        // (one base partition: the runtime refuses partitioned policies
        // on the shared path). A group whose planning fails gets its
        // error; the pass proceeds for the rest.
        let mut prepped: Vec<PreparedQuery> = Vec::with_capacity(groups.len());
        for group in groups {
            match PreparedQuery::prepare(&batch[group[0]], detail, io_pages, io_schema_cols) {
                Ok(mut p) => {
                    p.members = group;
                    prepped.push(p);
                }
                Err(e) => {
                    let msg = e.to_string();
                    for &i in &group {
                        outputs[i] = Some(Err(Error::invalid(msg.clone())));
                    }
                }
            }
        }

        let morsel = self.cfg.morsel_rows.max(1).min(detail_len.max(1));
        let n_morsels = detail_len.div_ceil(morsel).max(1);
        let workers = self.cfg.threads.min(n_morsels).max(1);
        let cursor = AtomicUsize::new(0);
        // The row-path twin scans late-materialized tuples; build the row
        // view once so every query and worker shares one cache.
        let any_row_path = prepped.iter().any(|p| !p.vectorized);
        let detail_rows: Option<&[Tuple]> = if any_row_path {
            Some(detail.rows())
        } else {
            None
        };

        // Per worker: one private (accumulators, stats, kernel) triple
        // per query, merged afterwards in worker order per query — the
        // same exact-merge discipline as the single-query parallel scan.
        type WorkerState = (Vec<Vec<Accumulator>>, Vec<EvalStats>, Vec<KernelStats>);
        type WorkerResult = Result<(WorkerState, u64)>;
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let prepped = &prepped;
            let cursor = &cursor;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || -> WorkerResult {
                        let mut wspan = Span::begin(sink, "gmdj.worker")
                            .with_detail(format!("shared-worker{w}"));
                        let mut accs: Vec<Vec<Accumulator>> = prepped
                            .iter()
                            .map(|p| new_accumulators(&p.plans, p.base_rows.len(), p.total_aggs))
                            .collect();
                        let mut stats: Vec<EvalStats> =
                            prepped.iter().map(|_| EvalStats::default()).collect();
                        let mut kernels: Vec<KernelStats> =
                            prepped.iter().map(|_| KernelStats::default()).collect();
                        let mut rows_pulled = 0u64;
                        let mut morsels_pulled = 0u64;
                        loop {
                            let start = cursor.fetch_add(morsel, Ordering::Relaxed);
                            if start >= detail_len {
                                break;
                            }
                            let end = (start + morsel).min(detail_len);
                            for (q, p) in prepped.iter().enumerate() {
                                scan_detail_window(
                                    detail,
                                    detail_rows,
                                    start..end,
                                    p.vectorized,
                                    &p.plans,
                                    p.base_rows,
                                    p.total_aggs,
                                    &mut accs[q],
                                    &mut stats[q],
                                    &mut kernels[q],
                                    sink,
                                )?;
                            }
                            rows_pulled += (end - start) as u64;
                            morsels_pulled += 1;
                        }
                        wspan.field("chunk_rows", rows_pulled);
                        wspan.field("morsels", morsels_pulled);
                        wspan.field("queries", prepped.len() as u64);
                        let dur = wspan.finish();
                        Ok(((accs, stats, kernels), dur.as_nanos() as u64))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| Err(shared_worker_panic_error(&payload)))
                })
                .collect()
        });

        let mut merged: Vec<Vec<Accumulator>> = prepped
            .iter()
            .map(|p| new_accumulators(&p.plans, p.base_rows.len(), p.total_aggs))
            .collect();
        let mut worker_max_ns = 0u64;
        let mut worker_sum_ns = 0u64;
        let mut scan_error: Option<Error> = None;
        for result in results {
            match result {
                Ok(((accs, stats, kernels), wall_ns)) => {
                    worker_max_ns = worker_max_ns.max(wall_ns);
                    worker_sum_ns += wall_ns;
                    for (q, p) in prepped.iter_mut().enumerate() {
                        p.eval.merge(&stats[q]);
                        p.kernel.merge(&kernels[q]);
                        for (m, a) in merged[q].iter_mut().zip(&accs[q]) {
                            m.merge(a);
                        }
                    }
                }
                Err(e) => scan_error = Some(e),
            }
        }
        if let Some(e) = scan_error {
            // A failed worker poisons the whole pass: every query that
            // made it into the scan shares the error (the scan loop is
            // query-interleaved, so partial state is not attributable).
            let msg = e.to_string();
            for p in &prepped {
                for &i in &p.members {
                    outputs[i] = Some(Err(Error::invalid(msg.clone())));
                }
            }
            return outputs.into_iter().flatten().collect();
        }

        let pass_queries = batch.len() as u64;
        for (q, p) in prepped.into_iter().enumerate() {
            let mut out_rows: Vec<Tuple> = Vec::new();
            match materialize_filtered(
                p.base_rows,
                &merged[q],
                p.total_aggs,
                p.bound_selection.as_ref(),
                p.keep,
                &mut out_rows,
            ) {
                Ok(()) => {
                    // Fan the group's one answer out to every member; the
                    // counters delivered are the evaluation's actual
                    // counters, which (the queries being identical) are
                    // each member's standalone counters.
                    for &i in &p.members {
                        outputs[i] = Some(Ok(SharedOutput {
                            relation: Relation::from_parts(
                                p.result_schema.clone(),
                                out_rows.clone(),
                            ),
                            eval: p.eval,
                            kernel: p.kernel,
                            worker_max_ns,
                            worker_sum_ns,
                            pass_queries,
                        }));
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for &i in &p.members {
                        outputs[i] = Some(Err(Error::invalid(msg.clone())));
                    }
                }
            }
        }
        outputs.into_iter().flatten().collect()
    }
}

/// Structural identity for in-batch query dedup: same base storage and
/// schema, same (l⃗, θ⃗) spec, selection, projection, and options. The
/// detail side is already identical by queue construction.
fn same_query(a: &SharedRequest, b: &SharedRequest) -> bool {
    Arc::ptr_eq(&a.base.cols_arc(), &b.base.cols_arc())
        && a.base.schema() == b.base.schema()
        && a.spec == b.spec
        && a.selection == b.selection
        && a.keep == b.keep
        && a.opts == b.opts
        && a.completion_fallback == b.completion_fallback
}

/// One distinct query's compiled state for a shared pass: probe plans,
/// bound selection, and the counters pre-charged exactly as the
/// standalone chunked evaluator charges them (partition bookkeeping +
/// closed-form page accounting + plan-time index builds). `members`
/// lists every batch index this evaluation serves (≥ 2 when identical
/// queries were deduplicated).
struct PreparedQuery<'a> {
    members: Vec<usize>,
    plans: Vec<BlockPlan>,
    base_rows: &'a [Tuple],
    total_aggs: usize,
    vectorized: bool,
    keep: Keep,
    bound_selection: Option<BoundPredicate>,
    result_schema: Arc<Schema>,
    eval: EvalStats,
    kernel: KernelStats,
}

impl<'a> PreparedQuery<'a> {
    fn prepare(
        request: &'a SharedRequest,
        detail: &Relation,
        io_pages: u64,
        io_schema_cols: u64,
    ) -> Result<PreparedQuery<'a>> {
        let mut eval = EvalStats::default();
        if request.completion_fallback {
            eval.completion_fallbacks += 1;
        }
        let out_schema = request.spec.output_schema(request.base.schema());
        let result_schema = match request.keep {
            Keep::All => out_schema.clone(),
            Keep::BaseOnly => request.base.schema().clone(),
        };
        let bound_selection = match &request.selection {
            Some(p) => Some(p.bind(&[&out_schema])?),
            None => None,
        };
        let total_aggs = request.spec.agg_count();
        let io_referenced =
            referenced_detail_cols(&request.spec, request.base.schema(), detail.schema())? as u64;
        eval.partitions += 1;
        eval.base_rows += request.base.len() as u64;
        eval.col_chunk_reads += io_pages * io_referenced;
        eval.row_page_reads += io_pages * io_schema_cols;
        let base_rows = request.base.rows();
        let plans = plan_blocks(
            base_rows,
            request.base.schema(),
            detail.schema(),
            &request.spec,
            &request.opts,
            &mut eval,
        )?;
        Ok(PreparedQuery {
            members: Vec::new(),
            plans,
            base_rows,
            total_aggs,
            vectorized: request.opts.vectorized,
            keep: request.keep,
            bound_selection,
            result_schema,
            eval,
            kernel: KernelStats::default(),
        })
    }
}

/// Turn a shared-pass worker panic into an error value (same discipline
/// as the single-query parallel scan).
fn shared_worker_panic_error(payload: &(dyn std::any::Any + Send)) -> Error {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    crate::trace::flight_dump_on_failure("shared-scan worker panic");
    Error::invalid(format!("shared-scan worker panicked: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{ExecPolicy, PlanNodeStats, Runtime};
    use crate::spec::AggBlock;
    use gmdj_relation::expr::col;
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn hours() -> Relation {
        RelationBuilder::new("H")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .row(vec![3.into(), 121.into(), 180.into()])
            .build()
            .unwrap()
    }

    fn flows() -> Relation {
        RelationBuilder::new("F")
            .column("StartTime", DataType::Int)
            .column("NumBytes", DataType::Int)
            .row(vec![10.into(), 5.into()])
            .row(vec![43.into(), 12.into()])
            .row(vec![70.into(), 7.into()])
            .row(vec![86.into(), 36.into()])
            .row(vec![130.into(), 2.into()])
            .row(vec![Value::Null, 9.into()])
            .build()
            .unwrap()
    }

    fn in_hour_count() -> GmdjSpec {
        GmdjSpec::new(vec![AggBlock::count(
            col("F.StartTime")
                .ge(col("H.StartInterval"))
                .and(col("F.StartTime").lt(col("H.EndInterval"))),
            "cnt",
        )])
    }

    fn sum_bytes() -> GmdjSpec {
        GmdjSpec::new(vec![AggBlock::new(
            col("F.StartTime")
                .ge(col("H.StartInterval"))
                .and(col("F.StartTime").lt(col("H.EndInterval"))),
            vec![gmdj_relation::agg::NamedAgg::sum(
                col("F.NumBytes"),
                "total",
            )],
        )])
    }

    fn pool(target: usize) -> Arc<SharedScanPool> {
        Arc::new(SharedScanPool::new(SharedScanConfig {
            window: Duration::from_millis(500),
            target_batch: target,
            threads: 2,
            morsel_rows: 2,
        }))
    }

    /// N identical clones submitted concurrently coalesce into one pass
    /// and every clone's answer and counters match standalone execution.
    #[test]
    fn concurrent_clones_share_one_pass_and_match_standalone() {
        let base = hours();
        let detail = flows();
        let spec = in_hour_count();

        let standalone = Runtime::new(ExecPolicy::parallel(2));
        let mut reference_node = PlanNodeStats::new("GMDJ");
        let expected = standalone
            .eval_gmdj(&base, &detail, &spec, &mut reference_node)
            .unwrap();

        let m = metrics::global();
        let passes_before = m.counter("shared_scan_passes_total");
        let served_before = m.counter("shared_scan_queries_served_total");

        let p = pool(3);
        let results: Vec<Result<SharedOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let (p, base, detail, spec) = (p.clone(), &base, &detail, &spec);
                    scope.spawn(move || {
                        p.submit(
                            base,
                            detail,
                            &spec.clone(),
                            None,
                            Keep::All,
                            &GmdjOptions::default(),
                            false,
                            &crate::trace::NullSink,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for result in results {
            let out = result.unwrap();
            assert!(out.relation.multiset_eq(&expected));
            assert_eq!(out.eval, reference_node.eval, "per-query counters drift");
            assert_eq!(out.pass_queries, 3);
        }
        assert_eq!(m.counter("shared_scan_passes_total") - passes_before, 1);
        assert_eq!(
            m.counter("shared_scan_queries_served_total") - served_before,
            3
        );
    }

    /// Distinct queries over the same detail table coalesce too, each
    /// getting its own answer.
    #[test]
    fn distinct_queries_demultiplex_correctly() {
        let base = hours();
        let detail = flows();
        let specs = [in_hour_count(), sum_bytes()];

        let standalone = Runtime::new(ExecPolicy::parallel(2));
        let expected: Vec<Relation> = specs
            .iter()
            .map(|s| {
                let mut node = PlanNodeStats::new("GMDJ");
                standalone.eval_gmdj(&base, &detail, s, &mut node).unwrap()
            })
            .collect();

        let p = pool(2);
        let results: Vec<(usize, Relation)> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let (p, base, detail) = (p.clone(), &base, &detail);
                    scope.spawn(move || {
                        let out = p
                            .submit(
                                base,
                                detail,
                                spec,
                                None,
                                Keep::All,
                                &GmdjOptions::default(),
                                false,
                                &crate::trace::NullSink,
                            )
                            .unwrap();
                        (i, out.relation)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, relation) in results {
            assert!(
                relation.multiset_eq(&expected[i]),
                "query {i} got the wrong demultiplexed result"
            );
        }
    }

    /// A solo submission past the window still completes (pass of one).
    #[test]
    fn solo_submission_runs_a_pass_of_one() {
        let base = hours();
        let detail = flows();
        let spec = in_hour_count();
        let p = Arc::new(SharedScanPool::new(SharedScanConfig {
            window: Duration::from_millis(1),
            target_batch: 8,
            threads: 2,
            morsel_rows: 1024,
        }));
        let out = p
            .submit(
                &base,
                &detail,
                &spec,
                None,
                Keep::All,
                &GmdjOptions::default(),
                false,
                &crate::trace::NullSink,
            )
            .unwrap();
        assert_eq!(out.pass_queries, 1);
        assert_eq!(out.relation.len(), base.len());
    }

    /// Different detail tables never coalesce: each keys its own queue.
    #[test]
    fn different_detail_tables_do_not_coalesce() {
        let detail_a = flows();
        let detail_b = flows();
        assert_ne!(detail_key(&detail_a), detail_key(&detail_b));
        // Renames share storage: same key.
        let renamed = detail_a.renamed("F2");
        assert_eq!(detail_key(&detail_a), detail_key(&renamed));
    }
}
