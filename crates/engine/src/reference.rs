//! Reference evaluation with tuple-iteration semantics — the paper's
//! "native" engine.
//!
//! Nested query expressions are evaluated exactly as their semantics read:
//! for every candidate tuple of the outer block, the subquery is evaluated
//! with the outer tuple bound. Three behaviours are configurable to model
//! the commercial DBMS of Section 5:
//!
//! * **naive** (`smart = false`): every subquery invocation scans its full
//!   source — pure tuple iteration.
//! * **smart** (`smart = true`): EXISTS stops at the first match, SOME at
//!   the first satisfying tuple, ALL at the first violation — the
//!   "specialized algorithm for handling the EXISTS predicate" and the
//!   "smart nested loop" discarding behaviour the paper observed (which it
//!   notes is "essentially a form of tuple completion").
//! * **indexed** (`indexed = true`): equality correlation attributes of a
//!   flat subquery body get a hash index, modelling "all important
//!   attributes were indexed".
//!
//! This evaluator is also the semantic oracle: the property tests require
//! every other strategy to agree with it.

use std::sync::Arc;

use gmdj_algebra::analysis::free_references;
use gmdj_algebra::ast::{
    peel_block, NestedPredicate, Quantifier, QueryExpr, SubqueryOutput, SubqueryPred,
};
use gmdj_core::exec::TableProvider;
use gmdj_relation::agg::{Accumulator, BoundAgg};
use gmdj_relation::error::{Error, Result};
use gmdj_relation::expr::{BoundPredicate, BoundScalar, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::index::HashIndex;
use gmdj_relation::ops;
use gmdj_relation::relation::{Relation, Tuple};
use gmdj_relation::schema::Schema;
use gmdj_relation::value::{Truth, Value};

/// Behaviour switches for the reference engine.
#[derive(Debug, Clone, Copy)]
pub struct RefOptions {
    /// Early-exit EXISTS/SOME/ALL evaluation.
    pub smart: bool,
    /// Hash indexes on equality correlation attributes of flat subquery
    /// bodies.
    pub indexed: bool,
}

impl Default for RefOptions {
    fn default() -> Self {
        RefOptions {
            smart: true,
            indexed: true,
        }
    }
}

/// Work counters for the reference engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefStats {
    /// Tuples consumed from subquery sources and scanned blocks.
    pub tuples_scanned: u64,
    /// Predicate evaluations.
    pub predicate_evals: u64,
    /// Hash-index probes.
    pub index_probes: u64,
    /// Subquery invocations (one per outer tuple per subquery site).
    pub subquery_invocations: u64,
}

impl RefStats {
    /// Scalar work figure comparable across strategies.
    pub fn work(&self) -> u64 {
        self.tuples_scanned + self.predicate_evals + self.index_probes
    }
}

/// Evaluate a nested query expression under tuple-iteration semantics.
pub fn eval(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    opts: &RefOptions,
) -> Result<(Relation, RefStats)> {
    let mut ev = Evaluator {
        catalog,
        opts: *opts,
        stats: RefStats::default(),
    };
    let compiled = ev.compile(query, &[])?;
    let rel = ev.run(&compiled, &mut Vec::new())?;
    Ok((rel, ev.stats))
}

struct Evaluator<'a> {
    catalog: &'a dyn TableProvider,
    opts: RefOptions,
    stats: RefStats,
}

/// A compiled query node; `schema` is its output schema.
// Compiled-plan nodes are built once per query and traversed by
// reference; variant size imbalance is irrelevant here.
#[allow(clippy::large_enum_variant)]
enum CNode {
    Rel {
        rel: Relation,
    },
    Select {
        input: Box<CNode>,
        pred: CPred,
        schema: Arc<Schema>,
    },
    Project {
        input: Box<CNode>,
        cols: Vec<usize>,
        distinct: bool,
        schema: Arc<Schema>,
    },
    AggProject {
        input: Box<CNode>,
        agg: BoundAgg,
        schema: Arc<Schema>,
    },
    Join {
        left: Box<CNode>,
        right: Box<CNode>,
        on: Predicate,
        schema: Arc<Schema>,
    },
    GroupBy {
        input: Box<CNode>,
        keys: Vec<gmdj_relation::schema::ColumnRef>,
        aggs: Vec<gmdj_relation::agg::NamedAgg>,
        schema: Arc<Schema>,
    },
    OrderBy {
        input: Box<CNode>,
        keys: Vec<(gmdj_relation::schema::ColumnRef, bool)>,
        schema: Arc<Schema>,
    },
    Limit {
        input: Box<CNode>,
        n: usize,
    },
}

impl CNode {
    fn schema(&self) -> &Arc<Schema> {
        match self {
            CNode::Rel { rel } => rel.schema(),
            CNode::Select { schema, .. }
            | CNode::Project { schema, .. }
            | CNode::AggProject { schema, .. }
            | CNode::GroupBy { schema, .. }
            | CNode::OrderBy { schema, .. }
            | CNode::Join { schema, .. } => schema,
            CNode::Limit { input, .. } => input.schema(),
        }
    }
}

/// A compiled nested predicate.
#[allow(clippy::large_enum_variant)]
enum CPred {
    Atom(BoundPredicate),
    And(Box<CPred>, Box<CPred>),
    Or(Box<CPred>, Box<CPred>),
    Not(Box<CPred>),
    Subquery(CSub),
}

/// A compiled subquery site.
struct CSub {
    kind: SubKind,
    /// Left operand of comparison forms, bound against the outer scopes.
    left: Option<BoundScalar>,
    body: CBody,
}

#[derive(Clone, Copy)]
enum SubKind {
    Exists {
        negated: bool,
    },
    Quant {
        op: CmpOp,
        all: bool,
    },
    /// Scalar comparison; `aggregate` selects the f(y) form.
    Cmp {
        op: CmpOp,
        aggregate: bool,
    },
}

#[allow(clippy::large_enum_variant)]
enum CBody {
    /// Outer-independent source with a flat θ: the fast path that can use
    /// a correlation-attribute index.
    Flat {
        source: Relation,
        theta: BoundPredicate,
        /// Output column position in `source` (comparison forms).
        output_col: Option<usize>,
        /// Aggregate over matching rows (aggregate comparison form).
        agg: Option<BoundAgg>,
        /// (index on source, outer key expressions, residual θ).
        index: Option<FlatIndex>,
    },
    /// Anything else (deeper nesting, correlated sources): a compiled
    /// query re-evaluated per outer tuple.
    General {
        node: Box<CNode>,
        output_col: Option<usize>,
    },
}

struct FlatIndex {
    index: HashIndex,
    outer_keys: Vec<BoundScalar>,
    residual: Option<BoundPredicate>,
}

impl<'a> Evaluator<'a> {
    /// Compile against the given enclosing scope schemas (outermost
    /// first).
    fn compile(&mut self, q: &QueryExpr, scopes: &[Arc<Schema>]) -> Result<CNode> {
        match q {
            QueryExpr::Table { name, qualifier } => Ok(CNode::Rel {
                rel: self.catalog.table(name)?.renamed(qualifier),
            }),
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => {
                let input = self.compile(input, scopes)?;
                let in_schema = input.schema().clone();
                let cols: Vec<usize> = columns
                    .iter()
                    .map(|c| c.resolve_in(&in_schema))
                    .collect::<Result<Vec<_>>>()?;
                let schema =
                    Schema::new(cols.iter().map(|&i| in_schema.field(i).clone()).collect());
                Ok(CNode::Project {
                    input: Box::new(input),
                    cols,
                    distinct: *distinct,
                    schema,
                })
            }
            QueryExpr::AggProject { input, agg } => {
                let input = self.compile(input, scopes)?;
                let in_schema = input.schema().clone();
                let mut scope_refs: Vec<&Schema> = scopes.iter().map(|s| s.as_ref()).collect();
                scope_refs.push(&in_schema);
                let bound = agg.bind(&scope_refs)?;
                let schema = Schema::empty().extend_computed(&[agg.output_field()]);
                Ok(CNode::AggProject {
                    input: Box::new(input),
                    agg: bound,
                    schema,
                })
            }
            QueryExpr::Join { left, right, on } => {
                let left = self.compile(left, scopes)?;
                let right = self.compile(right, scopes)?;
                let schema = left.schema().concat(right.schema())?;
                Ok(CNode::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: on.clone(),
                    schema,
                })
            }
            QueryExpr::Select { input, predicate } => {
                let input = self.compile(input, scopes)?;
                let schema = input.schema().clone();
                let mut inner_scopes: Vec<Arc<Schema>> = scopes.to_vec();
                inner_scopes.push(schema.clone());
                let pred = self.compile_pred(predicate, &inner_scopes)?;
                Ok(CNode::Select {
                    input: Box::new(input),
                    pred,
                    schema,
                })
            }
            QueryExpr::GroupBy { input, keys, aggs } => {
                let input = self.compile(input, scopes)?;
                let in_schema = input.schema().clone();
                let key_cols: Vec<usize> = keys
                    .iter()
                    .map(|k| k.resolve_in(&in_schema))
                    .collect::<Result<Vec<_>>>()?;
                let mut fields: Vec<gmdj_relation::schema::Field> = key_cols
                    .iter()
                    .map(|&i| in_schema.field(i).clone())
                    .collect();
                let _ = &mut fields;
                let schema = Schema::new(
                    key_cols
                        .iter()
                        .map(|&i| in_schema.field(i).clone())
                        .collect(),
                )
                .extend_computed(&aggs.iter().map(|a| a.output_field()).collect::<Vec<_>>());
                Ok(CNode::GroupBy {
                    input: Box::new(input),
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    schema,
                })
            }
            QueryExpr::OrderBy { input, keys } => {
                let input = self.compile(input, scopes)?;
                let schema = input.schema().clone();
                Ok(CNode::OrderBy {
                    input: Box::new(input),
                    keys: keys.clone(),
                    schema,
                })
            }
            QueryExpr::Limit { input, n } => {
                let input = self.compile(input, scopes)?;
                Ok(CNode::Limit {
                    input: Box::new(input),
                    n: *n,
                })
            }
        }
    }

    fn compile_pred(&mut self, p: &NestedPredicate, scopes: &[Arc<Schema>]) -> Result<CPred> {
        match p {
            NestedPredicate::Atom(flat) => {
                let refs: Vec<&Schema> = scopes.iter().map(|s| s.as_ref()).collect();
                Ok(CPred::Atom(flat.bind(&refs)?))
            }
            NestedPredicate::And(a, b) => Ok(CPred::And(
                Box::new(self.compile_pred(a, scopes)?),
                Box::new(self.compile_pred(b, scopes)?),
            )),
            NestedPredicate::Or(a, b) => Ok(CPred::Or(
                Box::new(self.compile_pred(a, scopes)?),
                Box::new(self.compile_pred(b, scopes)?),
            )),
            NestedPredicate::Not(inner) => {
                Ok(CPred::Not(Box::new(self.compile_pred(inner, scopes)?)))
            }
            NestedPredicate::Subquery(s) => Ok(CPred::Subquery(self.compile_subquery(s, scopes)?)),
        }
    }

    fn compile_subquery(&mut self, s: &SubqueryPred, scopes: &[Arc<Schema>]) -> Result<CSub> {
        let scope_refs: Vec<&Schema> = scopes.iter().map(|x| x.as_ref()).collect();
        let (kind, left_expr) = match s {
            SubqueryPred::Exists { negated, .. } => (SubKind::Exists { negated: *negated }, None),
            SubqueryPred::Quantified {
                left,
                op,
                quantifier,
                ..
            } => (
                SubKind::Quant {
                    op: *op,
                    all: *quantifier == Quantifier::All,
                },
                Some(left.clone()),
            ),
            SubqueryPred::In { left, negated, .. } => (
                SubKind::Quant {
                    op: if *negated { CmpOp::Ne } else { CmpOp::Eq },
                    all: *negated,
                },
                Some(left.clone()),
            ),
            SubqueryPred::Cmp { left, op, query } => {
                let (_, _, output) = peel_block(query);
                (
                    SubKind::Cmp {
                        op: *op,
                        aggregate: matches!(output, SubqueryOutput::Agg(_)),
                    },
                    Some(left.clone()),
                )
            }
        };
        let left = match left_expr {
            Some(e) => Some(e.bind(&scope_refs)?),
            None => None,
        };
        let body = self.compile_body(s.query(), scopes)?;
        Ok(CSub { kind, left, body })
    }

    /// Compile a subquery body, preferring the flat fast path.
    fn compile_body(&mut self, q: &QueryExpr, scopes: &[Arc<Schema>]) -> Result<CBody> {
        let (source, body_pred, output) = peel_block(q);
        let enclosing: Vec<Vec<String>> = scopes
            .iter()
            .map(|s| s.qualifiers().into_iter().map(str::to_string).collect())
            .collect();
        let source_independent = free_references(&source, &enclosing).is_empty();
        if let (Some(flat), true) = (body_pred.to_flat(), source_independent) {
            // Materialize the source once; the scan (and any index build
            // over it) is part of this query's work and wall time.
            let compiled_source = self.compile(&source, &[])?;
            let source_rel = self.run(&compiled_source, &mut Vec::new())?;
            self.stats.tuples_scanned += source_rel.len() as u64;
            let src_schema = source_rel.schema().clone();
            let mut all_scopes: Vec<&Schema> = scopes.iter().map(|s| s.as_ref()).collect();
            all_scopes.push(&src_schema);
            let theta = flat.bind(&all_scopes)?;
            let output_col = match &output {
                SubqueryOutput::Column(c) => Some(c.resolve_in(&src_schema)?),
                _ => None,
            };
            let agg = match &output {
                SubqueryOutput::Agg(a) => Some(a.bind(&all_scopes)?),
                _ => None,
            };
            let index = if self.opts.indexed {
                self.try_build_index(&flat, &source_rel, scopes)?
            } else {
                None
            };
            Ok(CBody::Flat {
                source: source_rel,
                theta,
                output_col,
                agg,
                index,
            })
        } else {
            // General: re-evaluate the full body per outer tuple.
            let node = self.compile(q, scopes)?;
            let out_schema = node.schema().clone();
            let output_col = match &output {
                SubqueryOutput::Column(_) | SubqueryOutput::Agg(_) => {
                    if out_schema.len() != 1 {
                        return Err(Error::invalid(
                            "comparison subquery must produce a single attribute",
                        ));
                    }
                    Some(0)
                }
                SubqueryOutput::Row => None,
            };
            Ok(CBody::General {
                node: Box::new(node),
                output_col,
            })
        }
    }

    /// Extract `source_col = outer_expr` pairs from a flat θ and build a
    /// hash index on the source.
    fn try_build_index(
        &mut self,
        theta: &Predicate,
        source: &Relation,
        scopes: &[Arc<Schema>],
    ) -> Result<Option<FlatIndex>> {
        let outer_refs: Vec<&Schema> = scopes.iter().map(|s| s.as_ref()).collect();
        let src_schema = source.schema();
        let conjuncts = theta.split_conjuncts();
        let mut src_cols = Vec::new();
        let mut outer_keys = Vec::new();
        let mut used = vec![false; conjuncts.len()];
        for (i, c) in conjuncts.iter().enumerate() {
            let Predicate::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = c
            else {
                continue;
            };
            // Which side is the source column?
            let as_src_col = |e: &ScalarExpr| -> Option<usize> {
                let ScalarExpr::Column(cr) = e else {
                    return None;
                };
                cr.resolve_in(src_schema).ok()
            };
            let try_pair = |src: &ScalarExpr, outer: &ScalarExpr| -> Option<(usize, BoundScalar)> {
                let col = as_src_col(src)?;
                // The outer side must bind using outer scopes alone.
                let bound = outer.bind(&outer_refs).ok()?;
                Some((col, bound))
            };
            if let Some((col, key)) = try_pair(left, right).or_else(|| try_pair(right, left)) {
                src_cols.push(col);
                outer_keys.push(key);
                used[i] = true;
            }
        }
        if src_cols.is_empty() {
            return Ok(None);
        }
        let rest: Vec<Predicate> = conjuncts
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(c, _)| (*c).clone())
            .collect();
        let residual = if rest.is_empty() {
            None
        } else {
            let mut all: Vec<&Schema> = scopes.iter().map(|s| s.as_ref()).collect();
            all.push(src_schema);
            Some(Predicate::conjoin(rest).bind(&all)?)
        };
        Ok(Some(FlatIndex {
            index: HashIndex::build(source, &src_cols),
            outer_keys,
            residual,
        }))
    }

    /// Run a compiled node given the enclosing scope rows.
    fn run(&mut self, node: &CNode, outer: &mut Vec<*const [Value]>) -> Result<Relation> {
        match node {
            CNode::Rel { rel } => Ok(rel.clone()),
            CNode::Project {
                input,
                cols,
                distinct,
                schema,
            } => {
                let rel = self.run(input, outer)?;
                let rows: Vec<Tuple> = rel
                    .rows()
                    .iter()
                    .map(|row| cols.iter().map(|&i| row[i].clone()).collect::<Tuple>())
                    .collect();
                let out = Relation::from_parts(schema.clone(), rows);
                Ok(if *distinct { ops::distinct(&out) } else { out })
            }
            CNode::AggProject { input, agg, schema } => {
                let rel = self.run(input, outer)?;
                let mut acc = agg.accumulator();
                for row in rel.rows() {
                    self.stats.tuples_scanned += 1;
                    with_scope(outer, row, |rows| agg.update(&mut acc, rows))?;
                }
                Ok(Relation::from_parts(
                    schema.clone(),
                    vec![vec![acc.finish()].into_boxed_slice()],
                ))
            }
            CNode::Join {
                left, right, on, ..
            } => {
                let l = self.run(left, outer)?;
                let r = self.run(right, outer)?;
                self.stats.tuples_scanned += (l.len() * r.len()) as u64;
                ops::theta_join(&l, &r, on)
            }
            CNode::GroupBy {
                input, keys, aggs, ..
            } => {
                let rel = self.run(input, outer)?;
                self.stats.tuples_scanned += rel.len() as u64;
                ops::group_by(&rel, keys, aggs)
            }
            CNode::OrderBy { input, keys, .. } => {
                let rel = self.run(input, outer)?;
                ops::sort_by(&rel, keys)
            }
            CNode::Limit { input, n } => {
                let rel = self.run(input, outer)?;
                Ok(ops::limit(&rel, *n))
            }
            CNode::Select {
                input,
                pred,
                schema,
            } => {
                let rel = self.run(input, outer)?;
                let mut rows = Vec::new();
                for row in rel.rows() {
                    self.stats.tuples_scanned += 1;
                    let keep = with_scope_mut(self, outer, row, |ev, sc| ev.eval_pred(pred, sc))?;
                    if keep.passes() {
                        rows.push(row.clone());
                    }
                }
                Ok(Relation::from_parts(schema.clone(), rows))
            }
        }
    }

    fn eval_pred(&mut self, p: &CPred, rows: &mut Vec<*const [Value]>) -> Result<Truth> {
        match p {
            CPred::Atom(bp) => {
                self.stats.predicate_evals += 1;
                bp.eval(&resolve_rows(rows))
            }
            CPred::And(a, b) => {
                let l = self.eval_pred(a, rows)?;
                if l == Truth::False {
                    return Ok(Truth::False);
                }
                Ok(l.and(self.eval_pred(b, rows)?))
            }
            CPred::Or(a, b) => {
                let l = self.eval_pred(a, rows)?;
                if l == Truth::True {
                    return Ok(Truth::True);
                }
                Ok(l.or(self.eval_pred(b, rows)?))
            }
            CPred::Not(inner) => Ok(self.eval_pred(inner, rows)?.not()),
            CPred::Subquery(sub) => self.eval_subquery(sub, rows),
        }
    }

    fn eval_subquery(&mut self, sub: &CSub, rows: &mut Vec<*const [Value]>) -> Result<Truth> {
        self.stats.subquery_invocations += 1;
        let left_val = match &sub.left {
            Some(e) => Some(e.eval(&resolve_rows(rows))?),
            None => None,
        };

        // Stream matching tuples through the kind's state machine.
        let mut state = KindState::new(&sub.kind);
        match &sub.body {
            CBody::Flat {
                source,
                theta,
                output_col,
                agg,
                index,
            } => {
                let mut acc = agg.as_ref().map(|a| a.accumulator());
                let smart = self.opts.smart;
                if let Some(fi) = index {
                    let key: Vec<Value> = fi
                        .outer_keys
                        .iter()
                        .map(|k| k.eval(&resolve_rows(rows)))
                        .collect::<Result<Vec<_>>>()?;
                    self.stats.index_probes += 1;
                    for &ri in fi.index.probe(&key) {
                        let r = &source.rows()[ri as usize];
                        self.stats.tuples_scanned += 1;
                        let matches = match &fi.residual {
                            Some(res) => {
                                self.stats.predicate_evals += 1;
                                with_scope(rows, r, |sc| res.eval(sc))?.passes()
                            }
                            None => true,
                        };
                        if matches {
                            feed(
                                &mut state,
                                &sub.kind,
                                left_val.as_ref(),
                                output_col.map(|c| &r[c]),
                                agg.as_ref(),
                                acc.as_mut(),
                                rows,
                                r,
                            )?;
                            if smart && state.decided(&sub.kind) {
                                break;
                            }
                        }
                    }
                } else {
                    for r in source.rows() {
                        self.stats.tuples_scanned += 1;
                        self.stats.predicate_evals += 1;
                        if with_scope(rows, r, |sc| theta.eval(sc))?.passes() {
                            feed(
                                &mut state,
                                &sub.kind,
                                left_val.as_ref(),
                                output_col.map(|c| &r[c]),
                                agg.as_ref(),
                                acc.as_mut(),
                                rows,
                                r,
                            )?;
                            if smart && state.decided(&sub.kind) {
                                break;
                            }
                        }
                    }
                }
                state.finish(&sub.kind, left_val.as_ref(), acc)
            }
            CBody::General { node, output_col } => {
                // The compiled plan already performed any aggregation (its
                // AggProject node), so an aggregate comparison degenerates
                // to a scalar comparison over the plan's single output row.
                let kind = match sub.kind {
                    SubKind::Cmp {
                        op,
                        aggregate: true,
                    } => SubKind::Cmp {
                        op,
                        aggregate: false,
                    },
                    k => k,
                };
                let rel = self.run(node, rows)?;
                for r in rel.rows() {
                    feed(
                        &mut state,
                        &kind,
                        left_val.as_ref(),
                        output_col.map(|c| &r[c]),
                        None,
                        None,
                        rows,
                        r,
                    )?;
                    if self.opts.smart && state.decided(&kind) {
                        break;
                    }
                }
                state.finish(&kind, left_val.as_ref(), None)
            }
        }
    }
}

/// Streaming evaluation state shared by all subquery kinds.
struct KindState {
    matches: u64,
    any_true: bool,
    any_false: bool,
    any_unknown: bool,
    /// For the scalar (non-aggregate) comparison form.
    scalar: Option<Value>,
}

impl KindState {
    fn new(_kind: &SubKind) -> Self {
        KindState {
            matches: 0,
            any_true: false,
            any_false: false,
            any_unknown: false,
            scalar: None,
        }
    }

    /// Early-exit criterion (the "smart nested loop").
    fn decided(&self, kind: &SubKind) -> bool {
        match kind {
            SubKind::Exists { .. } => self.matches > 0,
            SubKind::Quant { all: false, .. } => self.any_true,
            SubKind::Quant { all: true, .. } => self.any_false,
            // Scalar comparison needs the full scan to detect cardinality
            // violations; aggregates need every row.
            SubKind::Cmp { .. } => false,
        }
    }

    fn finish(
        self,
        kind: &SubKind,
        left: Option<&Value>,
        acc: Option<Accumulator>,
    ) -> Result<Truth> {
        match kind {
            SubKind::Exists { negated } => Ok(Truth::from_bool((self.matches > 0) != *negated)),
            SubKind::Quant { all: false, .. } => Ok(if self.any_true {
                Truth::True
            } else if self.any_unknown {
                Truth::Unknown
            } else {
                Truth::False
            }),
            SubKind::Quant { all: true, .. } => Ok(if self.any_false {
                Truth::False
            } else if self.any_unknown {
                Truth::Unknown
            } else {
                Truth::True
            }),
            SubKind::Cmp { op, aggregate } => {
                let left = left.expect("comparison subquery has a left operand");
                let value = if *aggregate {
                    acc.expect("aggregate comparison carries an accumulator")
                        .finish()
                } else {
                    match self.matches {
                        0 => Value::Null,
                        1 => self.scalar.expect("scalar recorded"),
                        n => {
                            return Err(Error::CardinalityViolation {
                                context: "scalar subquery".into(),
                                rows: n as usize,
                            })
                        }
                    }
                };
                Ok(op.apply(left.sql_cmp(&value)?))
            }
        }
    }
}

/// Feed one θ-matching tuple into the kind state.
#[allow(clippy::too_many_arguments)]
fn feed(
    state: &mut KindState,
    kind: &SubKind,
    left: Option<&Value>,
    out_val: Option<&Value>,
    agg: Option<&BoundAgg>,
    acc: Option<&mut Accumulator>,
    outer: &mut Vec<*const [Value]>,
    row: &Tuple,
) -> Result<()> {
    state.matches += 1;
    match kind {
        SubKind::Exists { .. } => {}
        SubKind::Quant { op, .. } => {
            let left = left.expect("quantified comparison has a left operand");
            let y = out_val.ok_or_else(|| {
                Error::invalid("quantified comparison subquery must project one attribute")
            })?;
            match op.apply(left.sql_cmp(y)?) {
                Truth::True => state.any_true = true,
                Truth::False => state.any_false = true,
                Truth::Unknown => state.any_unknown = true,
            }
        }
        SubKind::Cmp {
            aggregate: true, ..
        } => {
            let (agg, acc) = (
                agg.expect("aggregate comparison has an aggregate"),
                acc.expect("aggregate comparison has an accumulator"),
            );
            with_scope(outer, row, |sc| agg.update(acc, sc))?;
        }
        SubKind::Cmp {
            aggregate: false, ..
        } => {
            if state.matches == 1 {
                let y = out_val.ok_or_else(|| {
                    Error::invalid("scalar comparison subquery must project one attribute")
                })?;
                state.scalar = Some(y.clone());
            }
        }
    }
    Ok(())
}

// Scope rows are kept as raw slice pointers so the stack can be pushed and
// popped without fighting the borrow checker across recursive calls. The
// pointers are only ever created from live relations owned by the compiled
// tree (or the caller's row loop) and are resolved immediately within the
// same dynamic extent, so no dangling access is possible.

fn resolve_rows(rows: &[*const [Value]]) -> Vec<&[Value]> {
    // SAFETY: see module comment above — every pointer references a row of
    // a relation that outlives the current evaluation frame.
    rows.iter().map(|&p| unsafe { &*p }).collect()
}

fn with_scope<T>(
    rows: &mut Vec<*const [Value]>,
    row: &Tuple,
    f: impl FnOnce(&[&[Value]]) -> Result<T>,
) -> Result<T> {
    rows.push(row.as_ref() as *const [Value]);
    let resolved = resolve_rows(rows);
    let out = f(&resolved);
    drop(resolved);
    rows.pop();
    out
}

fn with_scope_mut<T>(
    ev: &mut Evaluator<'_>,
    rows: &mut Vec<*const [Value]>,
    row: &Tuple,
    f: impl FnOnce(&mut Evaluator<'_>, &mut Vec<*const [Value]>) -> Result<T>,
) -> Result<T> {
    rows.push(row.as_ref() as *const [Value]);
    let out = f(ev, rows);
    rows.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::{exists, not_exists};
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::{ColumnRef, DataType};

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("C")
            .column("id", DataType::Int)
            .column("country", DataType::Str)
            .row(vec![1.into(), "DK".into()])
            .row(vec![2.into(), "SE".into()])
            .row(vec![3.into(), "DK".into()])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("O")
            .column("cust", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 100.into()])
            .row(vec![1.into(), 50.into()])
            .row(vec![3.into(), 75.into()])
            .row(vec![Value::Null, 10.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("Customers", customers)
            .with("Orders", orders)
    }

    fn exists_query() -> QueryExpr {
        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
        QueryExpr::table("Customers", "C").select(exists(sub))
    }

    #[test]
    fn exists_and_not_exists() {
        let (rel, stats) = eval(&exists_query(), &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 2); // customers 1 and 3
        assert!(stats.subquery_invocations == 3);

        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
        let q = QueryExpr::table("Customers", "C").select(not_exists(sub));
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 1); // customer 2
    }

    #[test]
    fn smart_and_indexed_agree_with_naive() {
        let q = exists_query();
        let (naive, s_naive) = eval(
            &q,
            &catalog(),
            &RefOptions {
                smart: false,
                indexed: false,
            },
        )
        .unwrap();
        let (smart, s_smart) = eval(
            &q,
            &catalog(),
            &RefOptions {
                smart: true,
                indexed: false,
            },
        )
        .unwrap();
        let (indexed, s_idx) = eval(
            &q,
            &catalog(),
            &RefOptions {
                smart: true,
                indexed: true,
            },
        )
        .unwrap();
        assert!(naive.multiset_eq(&smart));
        assert!(naive.multiset_eq(&indexed));
        // Work ordering: naive ≥ smart ≥ indexed.
        assert!(s_naive.work() >= s_smart.work());
        assert!(s_smart.work() >= s_idx.work());
    }

    #[test]
    fn quantified_all_with_empty_range_is_true() {
        // C.id >all (totals of customer 2's orders) — customer 2 has none,
        // so ALL is true for every customer (footnote 2 semantics).
        let sub = QueryExpr::table("Orders", "O")
            .select_flat(col("O.cust").eq(lit(2)))
            .project(vec![ColumnRef::parse("O.total")]);
        let pred = NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("C.id"),
            op: CmpOp::Gt,
            quantifier: Quantifier::All,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn aggregate_comparison_with_empty_range_is_unknown() {
        // C.id > max(totals of customer 2's orders) = C.id > NULL → drop
        // every row: the aggregate half of footnote 2.
        let sub = QueryExpr::table("Orders", "O")
            .select_flat(col("O.cust").eq(lit(2)))
            .agg_project(gmdj_relation::agg::NamedAgg::new(
                gmdj_relation::agg::AggFunc::Max,
                col("O.total"),
                "m",
            ));
        let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("C.id"),
            op: CmpOp::Gt,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn scalar_subquery_cardinality_violation() {
        // π[O.total]σ[O.cust = C.id] returns two rows for customer 1.
        let sub = QueryExpr::table("Orders", "O")
            .select_flat(col("O.cust").eq(col("C.id")))
            .project(vec![ColumnRef::parse("O.total")]);
        let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("C.id"),
            op: CmpOp::Lt,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        let err = eval(&q, &catalog(), &RefOptions::default()).unwrap_err();
        assert!(matches!(err, Error::CardinalityViolation { .. }));
    }

    #[test]
    fn in_predicate_with_null_semantics() {
        // 2 NOT IN (cust values incl. NULL): for customer 2, no order has
        // cust = 2, but the NULL row makes ≠all unknown → dropped.
        let sub = QueryExpr::table("Orders", "O").project(vec![ColumnRef::parse("O.cust")]);
        let pred = NestedPredicate::Subquery(SubqueryPred::In {
            left: col("C.id"),
            query: Box::new(sub),
            negated: true,
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 0, "NULL in the IN-list poisons NOT IN");
    }

    #[test]
    fn linear_nesting_general_body() {
        // Customers with an order such that another customer in the same
        // country exists (always true for DK customers with orders).
        let inner = QueryExpr::table("Customers", "C2").select_flat(
            col("C2.country")
                .eq(col("C.country"))
                .and(col("C2.id").ne(col("C.id"))),
        );
        let mid = QueryExpr::table("Orders", "O")
            .select(NestedPredicate::Atom(col("O.cust").eq(col("C.id"))).and(exists(inner)));
        let q = QueryExpr::table("Customers", "C").select(exists(mid));
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        // Customers 1 and 3 have orders; each has the other in DK.
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn uncorrelated_subquery() {
        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.total").gt(lit(1000)));
        let q = QueryExpr::table("Customers", "C").select(exists(sub));
        let (rel, _) = eval(&q, &catalog(), &RefOptions::default()).unwrap();
        assert_eq!(rel.len(), 0);
    }
}
