//! Complex OLAP queries: a subquery-defined base-values table combined
//! with a GMDJ aggregation — the query form of Examples 2.1–2.3.
//!
//! The paper's motivating queries are GMDJ aggregations whose base-values
//! table is itself defined by (possibly nested) subquery expressions. An
//! [`OlapQuery`] captures that shape; [`OlapQuery::run`] evaluates the
//! base table under any subquery strategy and the aggregation with the
//! GMDJ evaluator. Under [`Strategy::GmdjOptimized`] the whole query is
//! compiled into a single GMDJ expression first, letting the coalescing
//! rewrite merge the base-table subquery blocks with the aggregation
//! blocks — Example 4.1's "a single scan of the Flow table suffices to
//! compute all the aggregates required".

use gmdj_algebra::ast::QueryExpr;
use gmdj_core::eval::EvalStats;
use gmdj_core::exec::{execute, ExecContext, TableProvider};
use gmdj_core::optimize::optimize;
use gmdj_core::plan::GmdjExpr;
use gmdj_core::runtime::{ExecPolicy, Runtime};
use gmdj_core::spec::GmdjSpec;
use gmdj_core::translate::subquery_to_gmdj;
use gmdj_relation::error::Result;
use gmdj_relation::expr::{Predicate, ScalarExpr};
use gmdj_relation::ops;
use gmdj_relation::relation::Relation;

use crate::strategy::{self, Strategy};

/// The GMDJ aggregation part of an OLAP query:
/// `MD(B, detail, spec)` with an optional final selection.
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// The detail relation (usually a base table).
    pub detail: QueryExpr,
    /// The aggregate blocks (lᵢ, θᵢ).
    pub spec: GmdjSpec,
    /// Selection over the GMDJ output (e.g. `cnt1 = cnt2` in
    /// Example 2.1).
    pub having: Option<Predicate>,
}

/// A complex OLAP query: base-values table + aggregation + projection.
#[derive(Debug, Clone)]
pub struct OlapQuery {
    /// The base-values table definition (may contain subqueries).
    pub base: QueryExpr,
    /// The aggregation; `None` evaluates just the base query.
    pub aggregation: Option<Aggregation>,
    /// Final projection items (expression, output name); empty keeps all
    /// columns.
    pub projection: Vec<(ScalarExpr, Option<String>)>,
}

impl OlapQuery {
    /// Query returning the base table as-is.
    pub fn base_only(base: QueryExpr) -> Self {
        OlapQuery {
            base,
            aggregation: None,
            projection: Vec::new(),
        }
    }

    /// Evaluate under a subquery strategy, sequentially. Returns the
    /// result and the GMDJ evaluator's work counters (zero for strategies
    /// that never reach a GMDJ).
    pub fn run(
        &self,
        catalog: &dyn TableProvider,
        strat: Strategy,
    ) -> Result<(Relation, EvalStats)> {
        self.run_with_policy(catalog, strat, ExecPolicy::sequential())
    }

    /// Evaluate under a subquery strategy and an execution policy; every
    /// GMDJ evaluation — including the aggregation step of the non-GMDJ
    /// strategies — goes through the policy's [`Runtime`].
    pub fn run_with_policy(
        &self,
        catalog: &dyn TableProvider,
        strat: Strategy,
        policy: ExecPolicy,
    ) -> Result<(Relation, EvalStats)> {
        let mut gmdj_stats = EvalStats::default();
        let combined = match strat {
            Strategy::GmdjBasic
            | Strategy::GmdjOptimized
            | Strategy::GmdjBasicNoProbeIndex
            | Strategy::GmdjOptimizedNoProbeIndex => {
                // Compile the whole query into one GMDJ expression.
                let base_plan = subquery_to_gmdj(&self.base, catalog)?;
                let plan = match &self.aggregation {
                    Some(agg) => {
                        let detail_plan = subquery_to_gmdj(&agg.detail, catalog)?;
                        let g = base_plan.gmdj(detail_plan, agg.spec.clone());
                        match &agg.having {
                            Some(h) => g.select(h.clone()),
                            None => g,
                        }
                    }
                    None => base_plan,
                };
                let plan = match strat {
                    Strategy::GmdjOptimized | Strategy::GmdjOptimizedNoProbeIndex => {
                        optimize(&plan)
                    }
                    _ => plan,
                };
                let probe = match strat {
                    Strategy::GmdjOptimizedNoProbeIndex | Strategy::GmdjBasicNoProbeIndex => {
                        gmdj_core::eval::ProbeStrategy::ForceScan
                    }
                    _ => gmdj_core::eval::ProbeStrategy::Auto,
                };
                let mut ctx = ExecContext::with_policy(policy.with_probe(probe));
                let rel = execute(&plan, catalog, &mut ctx)?;
                gmdj_stats = ctx.stats;
                rel
            }
            _ => {
                // Evaluate the base under the chosen strategy, then the
                // aggregation through the policy's runtime (the
                // aggregation is the query form itself, not a subquery).
                let base_rel =
                    strategy::run_with_policy(&self.base, catalog, strat, policy)?.relation;
                match &self.aggregation {
                    Some(agg) => {
                        let detail_rel =
                            strategy::run_with_policy(&agg.detail, catalog, strat, policy)?
                                .relation;
                        let mut node = gmdj_core::PlanNodeStats::new("GMDJ");
                        let out = Runtime::new(policy).eval_gmdj(
                            &base_rel,
                            &detail_rel,
                            &agg.spec,
                            &mut node,
                        )?;
                        gmdj_stats.merge(&node.eval);
                        match &agg.having {
                            Some(h) => ops::select(&out, h)?,
                            None => out,
                        }
                    }
                    None => base_rel,
                }
            }
        };
        let projected = if self.projection.is_empty() {
            combined
        } else {
            ops::project(&combined, &self.projection)?
        };
        Ok((projected, gmdj_stats))
    }

    /// The fully compiled (and optionally optimized) GMDJ plan, for
    /// EXPLAIN output.
    pub fn plan(&self, catalog: &dyn TableProvider, optimized: bool) -> Result<GmdjExpr> {
        let base_plan = subquery_to_gmdj(&self.base, catalog)?;
        let plan = match &self.aggregation {
            Some(agg) => {
                let detail_plan = subquery_to_gmdj(&agg.detail, catalog)?;
                let g = base_plan.gmdj(detail_plan, agg.spec.clone());
                match &agg.having {
                    Some(h) => g.select(h.clone()),
                    None => g,
                }
            }
            None => base_plan,
        };
        Ok(if optimized { optimize(&plan) } else { plan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::exists;
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_core::spec::AggBlock;
    use gmdj_relation::agg::NamedAgg;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn catalog() -> MemoryCatalog {
        let hours = RelationBuilder::new("Hours")
            .column("HourDsc", DataType::Int)
            .column("StartInterval", DataType::Int)
            .column("EndInterval", DataType::Int)
            .row(vec![1.into(), 0.into(), 60.into()])
            .row(vec![2.into(), 61.into(), 120.into()])
            .row(vec![3.into(), 121.into(), 180.into()])
            .build()
            .unwrap();
        let flow = RelationBuilder::new("Flow")
            .column("StartTime", DataType::Int)
            .column("Protocol", DataType::Str)
            .column("NumBytes", DataType::Int)
            .column("DestIP", DataType::Str)
            .row(vec![43.into(), "HTTP".into(), 12.into(), "10.0.0.1".into()])
            .row(vec![
                86.into(),
                "HTTP".into(),
                36.into(),
                "167.167.167.0".into(),
            ])
            .row(vec![99.into(), "FTP".into(), 48.into(), "10.0.0.2".into()])
            .row(vec![
                132.into(),
                "HTTP".into(),
                24.into(),
                "10.0.0.1".into(),
            ])
            .row(vec![
                156.into(),
                "HTTP".into(),
                24.into(),
                "10.0.0.3".into(),
            ])
            .row(vec![161.into(), "FTP".into(), 48.into(), "10.0.0.1".into()])
            .build()
            .unwrap();
        MemoryCatalog::new().with("Hours", hours).with("Flow", flow)
    }

    /// Example 2.1: hourly web-traffic fraction.
    fn example_2_1() -> OlapQuery {
        let in_hour = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")));
        OlapQuery {
            base: QueryExpr::table("Hours", "H"),
            aggregation: Some(Aggregation {
                detail: QueryExpr::table("Flow", "F"),
                spec: GmdjSpec::new(vec![
                    AggBlock::new(
                        in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
                        vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
                    ),
                    AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
                ]),
                having: None,
            }),
            projection: vec![
                (col("H.HourDsc"), None),
                (col("sum1").div(col("sum2")), Some("fraction".into())),
            ],
        }
    }

    #[test]
    fn example_2_1_fractions() {
        let (rel, _) = example_2_1()
            .run(&catalog(), Strategy::GmdjOptimized)
            .unwrap();
        let rows = rel.sorted_rows();
        assert_eq!(rows[0][1], Value::Float(1.0)); // 12/12
        assert_eq!(rows[1][1], Value::Float(36.0 / 84.0));
        assert_eq!(rows[2][1], Value::Float(0.5)); // 48/96
    }

    /// Example 2.2: base table filtered by an EXISTS subquery; all
    /// strategies must agree.
    #[test]
    fn example_2_2_all_strategies_agree() {
        let inner = QueryExpr::table("Flow", "FI").select_flat(
            col("FI.DestIP")
                .eq(lit("167.167.167.0"))
                .and(col("FI.StartTime").ge(col("H.StartInterval")))
                .and(col("FI.StartTime").lt(col("H.EndInterval"))),
        );
        let mut q = example_2_1();
        q.base = QueryExpr::table("Hours", "H").select(exists(inner));
        let mut previous: Option<Relation> = None;
        for strat in [
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ] {
            let (rel, _) = q.run(&catalog(), strat).unwrap();
            // Only hour 2 contains traffic to the marked destination.
            assert_eq!(rel.len(), 1, "{strat:?}");
            if let Some(p) = &previous {
                assert!(p.multiset_eq(&rel), "{strat:?}");
            }
            previous = Some(rel);
        }
    }

    #[test]
    fn example_2_1_identical_under_every_policy() {
        let q = example_2_1();
        let (seq, _) = q.run(&catalog(), Strategy::GmdjOptimized).unwrap();
        for strat in [
            Strategy::NativeSmart,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ] {
            for policy in [ExecPolicy::parallel(4), ExecPolicy::distributed(3)] {
                let (rel, _) = q.run_with_policy(&catalog(), strat, policy).unwrap();
                assert!(rel.multiset_eq(&seq), "{strat:?} under {policy:?}");
            }
        }
    }

    #[test]
    fn optimized_plan_coalesces_base_and_aggregation() {
        // Base subquery over Flow + aggregation over Flow should coalesce
        // into fewer GMDJs under the optimizer when the detail matches.
        let inner = QueryExpr::table("Flow", "FI").select_flat(
            col("FI.DestIP")
                .eq(lit("167.167.167.0"))
                .and(col("FI.StartTime").ge(col("H.StartInterval")))
                .and(col("FI.StartTime").lt(col("H.EndInterval"))),
        );
        let mut q = example_2_1();
        q.base = QueryExpr::table("Hours", "H").select(exists(inner));
        let basic = q.plan(&catalog(), false).unwrap();
        let optimized = q.plan(&catalog(), true).unwrap();
        assert_eq!(basic.gmdj_count(), 2);
        // Coalescing folds the EXISTS block into the aggregation GMDJ.
        assert_eq!(optimized.gmdj_count(), 1, "{optimized}");
    }
}
