//! # gmdj-engine
//!
//! A query engine exposing the evaluation strategies compared in Section 5
//! of the paper:
//!
//! * [`reference`] — **tuple-iteration semantics** ("native"): the nested
//!   query expression evaluated by nested loops, optionally with the
//!   *smart* early-exit behaviour the paper observed in its target DBMS
//!   (specialized EXISTS handling, discard-on-violation for ALL) and with
//!   hash indexes on correlation attributes (the "important attributes
//!   were indexed" condition).
//! * [`unnest`] — **join/outer-join unnesting**: the best-of-literature
//!   rewrites (Kim; Dayal; Ganski & Wong; Muralikrishna): EXISTS →
//!   semi-join, NOT EXISTS → anti-join, quantified comparisons →
//!   semi-/anti-joins over (non-)violations, aggregate comparisons →
//!   group-by + left outer join with the COUNT-bug fix. Hash joins model
//!   the indexed condition; forced block-nested-loop joins model its
//!   absence.
//! * GMDJ translation (basic and optimized) via [`gmdj_core`].
//!
//! [`strategy`] wraps all of them behind one [`strategy::Strategy`] enum
//! returning results plus machine-independent work counters, and
//! [`olap`] composes a subquery-defined base-values table with a GMDJ
//! aggregation (the complex-OLAP query form of Examples 2.1–2.3).
//!
//! ```
//! use gmdj_algebra::ast::{exists, QueryExpr};
//! use gmdj_engine::{run, Catalog, Strategy};
//! use gmdj_relation::expr::col;
//! use gmdj_relation::relation::RelationBuilder;
//! use gmdj_relation::schema::DataType;
//!
//! let users = RelationBuilder::new("u")
//!     .column("id", DataType::Int)
//!     .row(vec![1.into()])
//!     .row(vec![2.into()])
//!     .build()
//!     .unwrap();
//! let logins = RelationBuilder::new("l")
//!     .column("user_id", DataType::Int)
//!     .row(vec![2.into()])
//!     .build()
//!     .unwrap();
//! let catalog = Catalog::new().with("users", users).with("logins", logins);
//!
//! let sub = QueryExpr::table("logins", "l")
//!     .select_flat(col("l.user_id").eq(col("u.id")));
//! let query = QueryExpr::table("users", "u").select(exists(sub));
//!
//! // The same query under tuple-iteration semantics and the optimized
//! // GMDJ translation — identical answers, different work profiles.
//! let reference = run(&query, &catalog, Strategy::NaiveNestedLoop).unwrap();
//! let gmdj = run(&query, &catalog, Strategy::GmdjOptimized).unwrap();
//! assert!(reference.relation.multiset_eq(&gmdj.relation));
//! assert_eq!(gmdj.relation.len(), 1);
//! ```

pub mod analyze;
pub mod olap;
pub mod plan_cache;
pub mod reference;
pub mod strategy;
pub mod unnest;

pub use analyze::{explain_analyze, AnalyzeReport};
pub use gmdj_core::exec::MemoryCatalog as Catalog;
pub use olap::{Aggregation, OlapQuery};
pub use reference::{RefOptions, RefStats};
pub use strategy::{run, run_with_policy_pooled, run_with_policy_traced, RunResult, Strategy};
pub use unnest::UnnestOptions;
