//! One entry point over the evaluation strategies of Section 5.

use std::sync::Arc;
use std::time::Duration;

use gmdj_algebra::ast::QueryExpr;
use gmdj_core::eval::{EvalStats, ProbeStrategy};
use gmdj_core::exec::{execute, ExecContext, TableProvider};
use gmdj_core::metrics;
use gmdj_core::optimize::{optimize_with, OptFlags};
use gmdj_core::progress::{self, QueryProgress};
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats};
use gmdj_core::shared::SharedScanPool;
use gmdj_core::trace::{self, NullSink, Span, TraceSink};
use gmdj_core::translate::subquery_to_gmdj;
use gmdj_relation::error::Result;
use gmdj_relation::relation::Relation;

use crate::reference::{self, RefOptions, RefStats};
use crate::unnest::{self, UnnestOptions, UnnestStats};

/// The strategies the benchmark harness compares. The first five are the
/// paper's Section 5 contenders; the remainder are ablations of the GMDJ
/// design choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Pure tuple-iteration semantics (naive nested loop, no index) — the
    /// worst case the paper's "native" engine degrades to.
    NaiveNestedLoop,
    /// The paper's "native" engine: smart nested loop (early-exit
    /// EXISTS/ALL) with indexes on correlation attributes.
    NativeSmart,
    /// Native without indexes (Figure 5's unindexed condition).
    NativeSmartNoIndex,
    /// Join/outer-join unnesting with hash joins (indexed).
    JoinUnnest,
    /// Join unnesting forced onto block-nested-loop joins (unindexed).
    JoinUnnestNoIndex,
    /// Algorithm SubqueryToGMDJ, executed as-is (no Section 4
    /// optimizations).
    GmdjBasic,
    /// SubqueryToGMDJ + coalescing + base-tuple completion.
    GmdjOptimized,
    /// Ablation: optimized plan but probe indexes disabled (GMDJ without
    /// its intrinsic indexing).
    GmdjOptimizedNoProbeIndex,
    /// Ablation: basic plan with probe indexes disabled.
    GmdjBasicNoProbeIndex,
    /// SubqueryToGMDJ + the Section 6 cost-based rewrite selection
    /// ([`gmdj_core::cost::cost_based_optimize`]): every flag combination
    /// is costed against catalog cardinalities and the cheapest plan runs.
    GmdjCostBased,
}

impl Strategy {
    /// All Section 5 contenders (no ablations).
    pub fn paper_lineup() -> [Strategy; 6] {
        [
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::NativeSmartNoIndex,
            Strategy::JoinUnnest,
            Strategy::JoinUnnestNoIndex,
            Strategy::GmdjOptimized,
        ]
    }

    /// Short label for tables and charts.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::NaiveNestedLoop => "naive-nl",
            Strategy::NativeSmart => "native",
            Strategy::NativeSmartNoIndex => "native-noidx",
            Strategy::JoinUnnest => "unnest",
            Strategy::JoinUnnestNoIndex => "unnest-noidx",
            Strategy::GmdjBasic => "gmdj",
            Strategy::GmdjOptimized => "gmdj-opt",
            Strategy::GmdjOptimizedNoProbeIndex => "gmdj-opt-noidx",
            Strategy::GmdjBasicNoProbeIndex => "gmdj-noidx",
            Strategy::GmdjCostBased => "gmdj-cost",
        }
    }
}

/// Strategy-specific work counters.
#[derive(Debug, Clone, Copy)]
pub enum StrategyStats {
    Reference(RefStats),
    Unnest(UnnestStats),
    Gmdj(EvalStats),
}

impl StrategyStats {
    /// A single machine-independent work figure for shape comparisons.
    pub fn work(&self) -> u64 {
        match self {
            StrategyStats::Reference(s) => s.work(),
            StrategyStats::Unnest(s) => s.join_input_tuples + s.joins + s.aggregations,
            StrategyStats::Gmdj(s) => s.work(),
        }
    }
}

/// Result of running a query under one strategy.
#[derive(Debug)]
pub struct RunResult {
    /// The query answer.
    pub relation: Relation,
    /// Wall-clock time of query evaluation (excluding
    /// translation/compilation for the GMDJ strategies, matching the
    /// paper's reporting of query evaluation time). Measured by the
    /// `query.execute` span.
    pub wall: Duration,
    /// Wall-clock time of translation + plan optimization (GMDJ
    /// strategies; zero for the reference/unnest engines, which
    /// interpret the query directly). Measured by the `query.plan` span.
    pub plan_wall: Duration,
    /// Work counters.
    pub stats: StrategyStats,
    /// Per-plan-node statistics tree (GMDJ strategies only; the reference
    /// and unnest engines do not build GMDJ plans).
    pub plan_stats: Option<PlanNodeStats>,
}

/// Run a nested query expression under a strategy, sequentially.
pub fn run(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
) -> Result<RunResult> {
    run_with_policy(query, catalog, strategy, ExecPolicy::sequential())
}

/// [`run_with_policy_traced`] with tracing disabled.
pub fn run_with_policy(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
    policy: ExecPolicy,
) -> Result<RunResult> {
    run_with_policy_traced(query, catalog, strategy, policy, Arc::new(NullSink))
}

/// [`run_with_policy`] routed through a cross-query shared-scan pool:
/// (filtered) GMDJ nodes are submitted to `pool`, so runs of this
/// function issued concurrently from several threads coalesce their
/// detail scans when they hit the same detail table (see
/// [`gmdj_core::shared`]). Results and per-query counters are identical
/// to [`run_with_policy`] — only physical scan sharing differs. The
/// reference and unnest strategies have no GMDJ and ignore the pool.
pub fn run_with_policy_pooled(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
    policy: ExecPolicy,
    pool: Arc<SharedScanPool>,
) -> Result<RunResult> {
    run_traced_inner(
        query,
        catalog,
        strategy,
        policy,
        Arc::new(NullSink),
        Some(pool),
    )
}

/// Run a nested query expression under a strategy and an execution
/// policy. The policy's mode and memory budget apply to every GMDJ
/// strategy; the probe choice stays with the strategy (it is the ablation
/// axis). The reference and unnest engines are the paper's competitors —
/// they have no GMDJ to parallelize and ignore the policy.
///
/// Every run emits `query.plan` / `query.execute` spans into `sink`
/// (plus the `plan.node` / `gmdj.*` spans beneath them for GMDJ
/// strategies) and reports `queries_total` and the `query_latency_us`
/// histogram into the global [`metrics`] registry.
pub fn run_with_policy_traced(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
    policy: ExecPolicy,
    sink: Arc<dyn TraceSink>,
) -> Result<RunResult> {
    run_traced_inner(query, catalog, strategy, policy, sink, None)
}

fn run_traced_inner(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
    policy: ExecPolicy,
    sink: Arc<dyn TraceSink>,
    pool: Option<Arc<SharedScanPool>>,
) -> Result<RunResult> {
    // Every query's spans also land in the always-on flight recorder
    // (teed exactly once, here at the entry point), and every query is
    // visible in the progress registry for its lifetime — the ticket
    // deregisters on drop, including the error paths below. The ticket
    // starts in state `queued`; execution flips it to `running` here
    // (and the runtime to `coalescing` while parked in a shared-scan
    // batch window).
    let sink = trace::tee_flight(sink);
    let ticket = progress::global().register(query.to_string(), strategy.label(), policy.label());
    let progress = ticket.progress();
    progress.set_state("running");
    let pool = pool.as_ref();
    let result = match strategy {
        Strategy::NaiveNestedLoop => run_reference(
            query,
            catalog,
            RefOptions {
                smart: false,
                indexed: false,
            },
            &sink,
        ),
        Strategy::NativeSmart => run_reference(
            query,
            catalog,
            RefOptions {
                smart: true,
                indexed: true,
            },
            &sink,
        ),
        Strategy::NativeSmartNoIndex => run_reference(
            query,
            catalog,
            RefOptions {
                smart: true,
                indexed: false,
            },
            &sink,
        ),
        Strategy::JoinUnnest => run_unnest(query, catalog, UnnestOptions { indexed: true }, &sink),
        Strategy::JoinUnnestNoIndex => {
            run_unnest(query, catalog, UnnestOptions { indexed: false }, &sink)
        }
        Strategy::GmdjBasic => run_gmdj(
            query,
            catalog,
            false,
            policy.with_probe(ProbeStrategy::Auto),
            &sink,
            &progress,
            pool,
        ),
        Strategy::GmdjOptimized => run_gmdj(
            query,
            catalog,
            true,
            policy.with_probe(ProbeStrategy::Auto),
            &sink,
            &progress,
            pool,
        ),
        Strategy::GmdjOptimizedNoProbeIndex => run_gmdj(
            query,
            catalog,
            true,
            policy.with_probe(ProbeStrategy::ForceScan),
            &sink,
            &progress,
            pool,
        ),
        Strategy::GmdjBasicNoProbeIndex => run_gmdj(
            query,
            catalog,
            false,
            policy.with_probe(ProbeStrategy::ForceScan),
            &sink,
            &progress,
            pool,
        ),
        Strategy::GmdjCostBased => {
            run_gmdj_cost_based(query, catalog, policy, &sink, &progress, pool)
        }
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            // Preserve the trace tail for post-mortem before the error
            // propagates (first failure in the process wins).
            trace::flight_dump_on_failure("query error");
            return Err(e);
        }
    };
    let m = metrics::global();
    m.inc("queries_total", 1);
    m.inc(
        &format!("queries_total{{strategy=\"{}\"}}", strategy.label()),
        1,
    );
    m.observe("query_latency_us", result.wall.as_micros() as u64);
    Ok(result)
}

/// Run a compiled plan through the executor inside a `query.execute`
/// span, packaging the result.
fn execute_planned(
    plan: &gmdj_core::plan::GmdjExpr,
    catalog: &dyn TableProvider,
    policy: ExecPolicy,
    plan_wall: Duration,
    sink: &Arc<dyn TraceSink>,
    progress: &Arc<QueryProgress>,
    pool: Option<&Arc<SharedScanPool>>,
) -> Result<RunResult> {
    let mut ctx = ExecContext::with_policy(policy)
        .with_sink(sink.clone())
        .with_progress(progress.clone());
    if let Some(pool) = pool {
        ctx = ctx.with_shared(pool.clone());
    }
    let span = Span::begin(sink.as_ref(), "query.execute");
    let relation = execute(plan, catalog, &mut ctx)?;
    let mut span = span;
    span.field("rows_out", relation.len() as u64);
    let wall = span.finish();
    Ok(RunResult {
        relation,
        wall,
        plan_wall,
        stats: StrategyStats::Gmdj(ctx.stats),
        plan_stats: ctx.plan_stats,
    })
}

fn run_gmdj_cost_based(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    policy: ExecPolicy,
    sink: &Arc<dyn TraceSink>,
    progress: &Arc<QueryProgress>,
    pool: Option<&Arc<SharedScanPool>>,
) -> Result<RunResult> {
    let plan_span = Span::begin(sink.as_ref(), "query.plan");
    let plan = crate::plan_cache::cached_translate(query, catalog)?;
    let (best, estimate) = gmdj_core::cost::cost_based_optimize(&plan, catalog)?;
    progress.set_prediction(estimate.cost.total(), estimate.cost.io);
    let plan_wall = plan_span.finish();
    execute_planned(
        &best,
        catalog,
        policy.with_probe(ProbeStrategy::Auto),
        plan_wall,
        sink,
        progress,
        pool,
    )
}

fn run_reference(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    opts: RefOptions,
    sink: &Arc<dyn TraceSink>,
) -> Result<RunResult> {
    let span = Span::begin(sink.as_ref(), "query.execute");
    let (relation, stats) = reference::eval(query, catalog, &opts)?;
    let mut span = span;
    span.field("rows_out", relation.len() as u64);
    let wall = span.finish();
    Ok(RunResult {
        relation,
        wall,
        plan_wall: Duration::ZERO,
        stats: StrategyStats::Reference(stats),
        plan_stats: None,
    })
}

fn run_unnest(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    opts: UnnestOptions,
    sink: &Arc<dyn TraceSink>,
) -> Result<RunResult> {
    let span = Span::begin(sink.as_ref(), "query.execute");
    let (relation, stats) = unnest::eval(query, catalog, &opts)?;
    let mut span = span;
    span.field("rows_out", relation.len() as u64);
    let wall = span.finish();
    Ok(RunResult {
        relation,
        wall,
        plan_wall: Duration::ZERO,
        stats: StrategyStats::Unnest(stats),
        plan_stats: None,
    })
}

fn run_gmdj(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    optimized: bool,
    policy: ExecPolicy,
    sink: &Arc<dyn TraceSink>,
    progress: &Arc<QueryProgress>,
    pool: Option<&Arc<SharedScanPool>>,
) -> Result<RunResult> {
    let plan_span = Span::begin(sink.as_ref(), "query.plan");
    let plan = crate::plan_cache::cached_translate(query, catalog)?;
    let plan = if optimized {
        optimize_with(&plan, &OptFlags::default())
    } else {
        plan
    };
    // The ETA cross-check in progress snapshots compares morsel
    // throughput against the cost model's io prediction for this plan.
    if let Ok(est) = gmdj_core::cost::estimate(&plan, catalog) {
        progress.set_prediction(est.cost.total(), est.cost.io);
    }
    let plan_wall = plan_span.finish();
    execute_planned(&plan, catalog, policy, plan_wall, sink, progress, pool)
}

/// Translate + optimize and return the plan text — EXPLAIN for the GMDJ
/// strategies.
pub fn explain_gmdj(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    optimized: bool,
) -> Result<String> {
    let plan = subquery_to_gmdj(query, catalog)?;
    let plan = if optimized {
        gmdj_core::optimize::optimize(&plan)
    } else {
        plan
    };
    Ok(plan.explain())
}

/// Run all given strategies and assert they produce the same multiset.
/// Returns the per-strategy results. Panics on divergence — used by the
/// integration and property tests.
pub fn run_all_agree(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategies: &[Strategy],
) -> Result<Vec<(Strategy, RunResult)>> {
    let mut out: Vec<(Strategy, RunResult)> = Vec::new();
    for &s in strategies {
        let r = run(query, catalog, s)?;
        if let Some((s0, r0)) = out.first() {
            assert!(
                r0.relation.multiset_eq(&r.relation),
                "strategy {:?} disagrees with {:?} on {query}\n{} rows vs {} rows\nfirst:\n{}\nsecond:\n{}",
                s,
                s0,
                r.relation.len(),
                r0.relation.len(),
                r0.relation,
                r.relation,
            );
        }
        out.push((s, r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::{exists, not_exists};
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("C")
            .column("id", DataType::Int)
            .column("score", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![3.into(), 30.into()])
            .row(vec![4.into(), Value::Null])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("O")
            .column("cust", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 100.into()])
            .row(vec![1.into(), 50.into()])
            .row(vec![3.into(), 75.into()])
            .row(vec![Value::Null, 10.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("Customers", customers)
            .with("Orders", orders)
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::NativeSmartNoIndex,
            Strategy::JoinUnnest,
            Strategy::JoinUnnestNoIndex,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
            Strategy::GmdjOptimizedNoProbeIndex,
            Strategy::GmdjBasicNoProbeIndex,
        ]
    }

    #[test]
    fn all_strategies_agree_on_exists() {
        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
        let q = QueryExpr::table("Customers", "C").select(exists(sub));
        let results = run_all_agree(&q, &catalog(), &all_strategies()).unwrap();
        assert_eq!(results[0].1.relation.len(), 2);
    }

    #[test]
    fn all_strategies_agree_on_mixed_conjunction() {
        let has = QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let none_big = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("C.id"))
                .and(col("O2.total").gt(lit(80))),
        );
        let q =
            QueryExpr::table("Customers", "C").select(exists(has).and(not_exists(none_big)).and(
                gmdj_algebra::ast::NestedPredicate::Atom(col("C.id").gt(lit(0))),
            ));
        run_all_agree(&q, &catalog(), &all_strategies()).unwrap();
    }

    #[test]
    fn cost_based_strategy_agrees_and_coalesces() {
        let a = QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let b = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("C.id"))
                .and(col("O2.total").gt(lit(80))),
        );
        let q = QueryExpr::table("Customers", "C").select(exists(a).and(exists(b)));
        let results = run_all_agree(
            &q,
            &catalog(),
            &[
                Strategy::NaiveNestedLoop,
                Strategy::GmdjCostBased,
                Strategy::GmdjOptimized,
            ],
        )
        .unwrap();
        assert!(!results[0].1.relation.is_empty());
    }

    #[test]
    fn every_strategy_is_identical_under_parallel_policy() {
        // Mixed conjunction: the optimized GMDJ plan is a FilteredGMDJ
        // with a completion plan, so the parallel path exercises the
        // documented completion fallback end-to-end.
        let has = QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let none_big = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("C.id"))
                .and(col("O2.total").gt(lit(80))),
        );
        let q = QueryExpr::table("Customers", "C").select(exists(has).and(not_exists(none_big)));

        let mut strategies = all_strategies();
        strategies.push(Strategy::GmdjCostBased);
        for &s in &strategies {
            let seq = run(&q, &catalog(), s).unwrap();
            for policy in [
                ExecPolicy::parallel(3),
                ExecPolicy::parallel(3).with_partition_rows(Some(2)),
                ExecPolicy::distributed(2),
            ] {
                let r = run_with_policy(&q, &catalog(), s, policy).unwrap();
                assert!(
                    r.relation.multiset_eq(&seq.relation),
                    "{s:?} under {policy:?} diverged"
                );
            }
        }

        // The GMDJ stats tree is recorded and shows the fallback.
        let r = run_with_policy(
            &q,
            &catalog(),
            Strategy::GmdjOptimized,
            ExecPolicy::parallel(3),
        )
        .unwrap();
        let tree = r
            .plan_stats
            .expect("GMDJ strategies record a plan stats tree");
        assert!(tree.total_eval().completion_fallbacks > 0);
    }

    #[test]
    fn explain_shows_optimization() {
        let a = QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let b = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("C.id"))
                .and(col("O2.total").gt(lit(80))),
        );
        let q = QueryExpr::table("Customers", "C").select(exists(a).and(not_exists(b)));
        let basic = explain_gmdj(&q, &catalog(), false).unwrap();
        let optimized = explain_gmdj(&q, &catalog(), true).unwrap();
        assert!(basic.matches("GMDJ").count() >= 2);
        assert!(optimized.contains("FilteredGMDJ"));
        assert!(
            optimized.matches("blocks").count() < basic.matches("blocks").count()
                || optimized.contains("(2 blocks)")
        );
    }
}
