//! Join/outer-join unnesting — the conventional baseline the paper
//! compares against (Kim; Ganski & Wong; Dayal; Muralikrishna; Seshadri
//! et al.).
//!
//! Rewrites applied per subquery conjunct:
//!
//! * `∃S` → semi-join on the correlation condition;
//! * `∄S` → anti-join;
//! * `x φ_some S` → semi-join on θ ∧ (x φ y);
//! * `x φ_all S` → anti-join on the *violation* condition
//!   θ ∧ (x φ̄ y ∨ x IS NULL ∨ y IS NULL) — the set-difference unnesting,
//!   with the disjuncts making the 3VL unknown case a violation exactly as
//!   SQL requires;
//! * `x φ f(S)` → group the subquery source by its equality correlation
//!   attributes computing f, then **left outer join** and compare — with
//!   the classic COUNT-bug fix (`CASE WHEN fy IS NULL THEN 0 END` for
//!   COUNT) that motivated outer-join unnesting in the first place.
//!
//! Local (uncorrelated) conjuncts of the subquery are pushed into the
//! source before joining. `indexed = false` forces every join onto the
//! block-nested-loop path, modelling the paper's "no useful indexes"
//! condition. Shapes the rewrites do not cover (disjunctions over
//! subqueries, non-equality correlations in aggregate comparisons,
//! non-neighboring references) fall back to tuple iteration and are
//! counted in [`UnnestStats::fallbacks`].

use gmdj_algebra::ast::{
    peel_block, NestedPredicate, Quantifier, QueryExpr, SubqueryOutput, SubqueryPred,
};
use gmdj_core::exec::TableProvider;
use gmdj_relation::agg::{AggFunc, NamedAgg};
use gmdj_relation::error::Result;
use gmdj_relation::expr::{col, lit, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::ops;
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::ColumnRef;

use crate::reference::{self, RefOptions};

/// Options for the unnesting strategy.
#[derive(Debug, Clone, Copy)]
pub struct UnnestOptions {
    /// Hash joins (true) vs forced block-nested-loop joins (false).
    pub indexed: bool,
}

impl Default for UnnestOptions {
    fn default() -> Self {
        UnnestOptions { indexed: true }
    }
}

/// Work counters for the unnesting strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnnestStats {
    /// Joins executed (semi, anti, outer, inner).
    pub joins: u64,
    /// Tuples flowing through join inputs (sum of both sides).
    pub join_input_tuples: u64,
    /// Group-by operators executed.
    pub aggregations: u64,
    /// Subquery sites that fell back to tuple iteration.
    pub fallbacks: u64,
}

/// Evaluate a nested query expression by join/outer-join unnesting.
pub fn eval(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    opts: &UnnestOptions,
) -> Result<(Relation, UnnestStats)> {
    let mut ev = Unnester {
        catalog,
        opts: *opts,
        stats: UnnestStats::default(),
    };
    let rel = ev.eval_query(query)?;
    Ok((rel, ev.stats))
}

struct Unnester<'a> {
    catalog: &'a dyn TableProvider,
    opts: UnnestOptions,
    stats: UnnestStats,
}

impl<'a> Unnester<'a> {
    fn eval_query(&mut self, q: &QueryExpr) -> Result<Relation> {
        match q {
            QueryExpr::Table { name, qualifier } => {
                Ok(self.catalog.table(name)?.renamed(qualifier))
            }
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => {
                let rel = self.eval_query(input)?;
                let projected = ops::project_columns(&rel, columns)?;
                Ok(if *distinct {
                    ops::distinct(&projected)
                } else {
                    projected
                })
            }
            QueryExpr::AggProject { input, agg } => {
                let rel = self.eval_query(input)?;
                self.stats.aggregations += 1;
                ops::group_by(&rel, &[], std::slice::from_ref(agg))
            }
            QueryExpr::Join { left, right, on } => {
                let l = self.eval_query(left)?;
                let r = self.eval_query(right)?;
                self.join_counters(&l, &r);
                if self.opts.indexed {
                    ops::theta_join(&l, &r, on)
                } else {
                    ops::nested_loop_join(&l, &r, on)
                }
            }
            QueryExpr::Select { input, predicate } => {
                let rel = self.eval_query(input)?;
                self.apply_predicate(rel, predicate, q)
            }
            QueryExpr::GroupBy { input, keys, aggs } => {
                let rel = self.eval_query(input)?;
                self.stats.aggregations += 1;
                self.stats.join_input_tuples += rel.len() as u64;
                ops::group_by(&rel, keys, aggs)
            }
            QueryExpr::OrderBy { input, keys } => {
                let rel = self.eval_query(input)?;
                ops::sort_by(&rel, keys)
            }
            QueryExpr::Limit { input, n } => {
                let rel = self.eval_query(input)?;
                Ok(ops::limit(&rel, *n))
            }
        }
    }

    /// Apply a possibly-nested selection predicate to `rel` by unnesting.
    fn apply_predicate(
        &mut self,
        rel: Relation,
        predicate: &NestedPredicate,
        original: &QueryExpr,
    ) -> Result<Relation> {
        // Flat predicates apply directly.
        if let Some(flat) = predicate.to_flat() {
            return ops::select(&rel, &flat);
        }
        // Conjunctive predicates unnest conjunct by conjunct; anything
        // else (OR over subqueries) falls back to tuple iteration.
        let Some(conjuncts) = split_nested_conjuncts(predicate) else {
            return self.fallback(original);
        };
        let mut current = rel;
        for conjunct in conjuncts {
            current = match conjunct {
                NestedPredicate::Atom(p) => ops::select(&current, p)?,
                NestedPredicate::Subquery(s) => {
                    match none_on_unknown(self.apply_subquery(&current, s))?.flatten() {
                        Some(next) => next,
                        None => return self.fallback(original),
                    }
                }
                _ => return self.fallback(original),
            };
        }
        Ok(current)
    }

    /// Unnest one subquery conjunct. Returns `None` when the shape is not
    /// covered by the join rewrites.
    fn apply_subquery(&mut self, rel: &Relation, s: &SubqueryPred) -> Result<Option<Relation>> {
        let (source_qe, body, output) = peel_block(s.query());
        // The source itself may nest further (tree queries): evaluate it
        // recursively (it must be uncorrelated — correlated sources are a
        // fallback case detected by the bind failure below).
        let source = match self.eval_query(&source_qe) {
            Ok(r) => r,
            Err(_) => return Ok(None),
        };
        // Split the body into local conjuncts (push into the source),
        // correlation conjuncts (join condition), and nested subqueries
        // (recursively unnested into the source — tree-nested case).
        let Some(parts) = split_nested_conjuncts(&body) else {
            return Ok(None);
        };
        let mut local = Predicate::true_();
        let mut correlation = Predicate::true_();
        let mut filtered_source = source;
        for part in parts {
            match part {
                NestedPredicate::Atom(p) => {
                    // A conjunct is local iff it binds against the source
                    // schema alone.
                    if p.bind(&[filtered_source.schema()]).is_ok() {
                        local = local.and(p.clone());
                    } else {
                        correlation = correlation.and(p.clone());
                    }
                }
                NestedPredicate::Subquery(inner) => {
                    // Tree-nested subquery correlated to this source:
                    // unnest it against the source. A non-neighboring
                    // reference (binding past both the source and this
                    // block) surfaces as UnknownColumn anywhere inside the
                    // rewrite — treat every such failure as fallback.
                    match none_on_unknown(self.apply_subquery(&filtered_source, inner))?.flatten() {
                        Some(next) => filtered_source = next,
                        None => return Ok(None),
                    }
                }
                _ => return Ok(None),
            }
        }
        if !matches!(local, Predicate::Literal(_)) {
            filtered_source = ops::select(&filtered_source, &local)?;
        }

        match s {
            SubqueryPred::Exists { negated, .. } => {
                none_on_unknown(self.semi_or_anti(rel, &filtered_source, &correlation, *negated))
            }
            SubqueryPred::In { left, negated, .. } => {
                // x ∈ S ≡ x =some S; x ∉ S ≡ x ≠all S.
                let quantified = SubqueryPred::Quantified {
                    left: left.clone(),
                    op: if *negated { CmpOp::Ne } else { CmpOp::Eq },
                    quantifier: if *negated {
                        Quantifier::All
                    } else {
                        Quantifier::Some
                    },
                    query: Box::new(s.query().clone()),
                };
                self.apply_quantified(rel, &quantified, &filtered_source, &correlation, &output)
            }
            SubqueryPred::Quantified { .. } => {
                self.apply_quantified(rel, s, &filtered_source, &correlation, &output)
            }
            SubqueryPred::Cmp { left, op, .. } => match &output {
                SubqueryOutput::Agg(agg) => {
                    self.apply_aggregate_cmp(rel, left, *op, agg, &filtered_source, &correlation)
                }
                // Scalar column comparisons have no faithful pure-join
                // rewrite (cardinality semantics); fall back.
                _ => Ok(None),
            },
        }
    }

    fn apply_quantified(
        &mut self,
        rel: &Relation,
        s: &SubqueryPred,
        source: &Relation,
        correlation: &Predicate,
        output: &SubqueryOutput,
    ) -> Result<Option<Relation>> {
        let SubqueryPred::Quantified {
            left,
            op,
            quantifier,
            ..
        } = s
        else {
            return Ok(None);
        };
        let Some(y) = output_col(output) else {
            return Ok(None);
        };
        let y_expr = ScalarExpr::Column(y);
        match quantifier {
            Quantifier::Some => {
                // Semi-join on θ ∧ (x φ y).
                let cond = correlation.clone().and(left.clone().cmp_with(*op, y_expr));
                none_on_unknown(self.semi_or_anti(rel, source, &cond, false))
            }
            Quantifier::All => {
                // The join + set-difference unnesting of the literature
                // (Dayal's quantifier handling): materialize the outer
                // tuples paired with a *violating* subquery tuple — one
                // whose comparison is false or unknown — and subtract them.
                // This materializing join is exactly what degrades on the
                // Figure 4 workload (the paper measured > 7 hours at 20k
                // rows); the violation condition's disjunction also defeats
                // hash-join key extraction, as it did for the 2003
                // optimizers.
                let violated = left
                    .clone()
                    .cmp_with(op.negate(), y_expr.clone())
                    .or(Predicate::IsNull(left.clone()))
                    .or(Predicate::IsNull(y_expr));
                let cond = correlation.clone().and(violated);
                self.stats.joins += 1;
                // Work accounting: a nested-loop join considers every
                // pair; a hash join touches both inputs plus its matches.
                let analysis =
                    gmdj_relation::ops::analyze_join(&cond, rel.schema(), source.schema())?;
                let nl = !self.opts.indexed || !analysis.has_equi_keys();
                self.stats.join_input_tuples += if nl {
                    (rel.len() as u64) * (source.len() as u64)
                } else {
                    (rel.len() + source.len()) as u64
                };
                let joined = if self.opts.indexed {
                    ops::theta_join(rel, source, &cond)
                } else {
                    ops::nested_loop_join(rel, source, &cond)
                };
                let Some(pairs) = none_on_unknown(joined)? else {
                    return Ok(None);
                };
                self.stats.join_input_tuples += pairs.len() as u64;
                // Project the pairs back onto the outer schema and remove
                // every outer tuple that has at least one violation.
                let keep: Vec<ColumnRef> = rel
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| ColumnRef {
                        qualifier: (!f.qualifier.is_empty()).then(|| f.qualifier.clone()),
                        name: f.name.clone(),
                    })
                    .collect();
                let violating = ops::distinct(&ops::project_columns(&pairs, &keep)?);
                let mut violating_set: gmdj_relation::fxhash::FxHashSet<
                    gmdj_relation::relation::Tuple,
                > = gmdj_relation::fxhash::FxHashSet::default();
                for row in violating.rows() {
                    violating_set.insert(row.clone());
                }
                let rows: Vec<_> = rel
                    .rows()
                    .iter()
                    .filter(|row| !violating_set.contains(*row))
                    .cloned()
                    .collect();
                Ok(Some(Relation::from_parts(rel.schema().clone(), rows)))
            }
        }
    }

    /// Aggregate comparison: group by equality correlation attributes,
    /// left outer join, compare (Ganski & Wong / Muralikrishna).
    fn apply_aggregate_cmp(
        &mut self,
        rel: &Relation,
        left: &ScalarExpr,
        op: CmpOp,
        agg: &NamedAgg,
        source: &Relation,
        correlation: &Predicate,
    ) -> Result<Option<Relation>> {
        // Correlation must decompose into outer-col = source-col pairs.
        let mut outer_cols: Vec<ColumnRef> = Vec::new();
        let mut source_cols: Vec<ColumnRef> = Vec::new();
        for c in correlation.split_conjuncts() {
            let Predicate::Cmp {
                op: CmpOp::Eq,
                left: a,
                right: b,
            } = c
            else {
                return Ok(None);
            };
            let (ScalarExpr::Column(ca), ScalarExpr::Column(cb)) = (a, b) else {
                return Ok(None);
            };
            let a_in_src = ca.resolve_in(source.schema()).is_ok();
            let b_in_src = cb.resolve_in(source.schema()).is_ok();
            let a_in_outer = ca.resolve_in(rel.schema()).is_ok();
            let b_in_outer = cb.resolve_in(rel.schema()).is_ok();
            if a_in_outer && !a_in_src && b_in_src && !b_in_outer {
                outer_cols.push(ca.clone());
                source_cols.push(cb.clone());
            } else if b_in_outer && !b_in_src && a_in_src && !a_in_outer {
                outer_cols.push(cb.clone());
                source_cols.push(ca.clone());
            } else {
                return Ok(None);
            }
        }

        self.stats.aggregations += 1;
        // The grouping pass scans the whole (filtered) source.
        self.stats.join_input_tuples += source.len() as u64;
        let fy = "__unnest_fy";
        let grouped = ops::group_by(
            source,
            &source_cols,
            &[NamedAgg {
                func: agg.func,
                input: agg.input.clone(),
                output: fy.into(),
            }],
        )?;
        // Join back on the (now possibly renamed-by-projection) group keys:
        // group_by preserves the source field names.
        let on = Predicate::conjoin(
            outer_cols
                .iter()
                .zip(&source_cols)
                .map(|(o, s)| ScalarExpr::Column(o.clone()).eq(ScalarExpr::Column(s.clone()))),
        );
        self.join_counters(rel, &grouped);
        let joined = if self.opts.indexed || matches!(on, Predicate::Literal(_)) {
            ops::left_outer_join(rel, &grouped, &on)?
        } else {
            // The forced-NL condition still needs outer-join semantics;
            // left_outer_join falls back to NL when no equi keys exist, so
            // emulate by clearing the hash path via a non-equi wrapper is
            // unnecessary — use the operator directly (its cost model is
            // the join_input_tuples counter either way).
            ops::left_outer_join(rel, &grouped, &on)?
        };
        // COUNT over an empty group is 0, not NULL (the COUNT bug).
        let fy_expr = if matches!(agg.func, AggFunc::Count | AggFunc::CountStar) {
            ScalarExpr::Case {
                branches: vec![(Predicate::IsNull(col(fy)), lit(0))],
                otherwise: Some(Box::new(col(fy))),
            }
        } else {
            col(fy)
        };
        let selected = ops::select(&joined, &left.clone().cmp_with(op, fy_expr))?;
        // Project the outer attributes back out (drop group keys + fy).
        let keep: Vec<ColumnRef> = rel
            .schema()
            .fields()
            .iter()
            .map(|f| ColumnRef {
                qualifier: (!f.qualifier.is_empty()).then(|| f.qualifier.clone()),
                name: f.name.clone(),
            })
            .collect();
        Ok(Some(ops::project_columns(&selected, &keep)?))
    }

    fn semi_or_anti(
        &mut self,
        rel: &Relation,
        source: &Relation,
        cond: &Predicate,
        anti: bool,
    ) -> Result<Relation> {
        self.stats.joins += 1;
        let (out, work) = gmdj_relation::ops::join::semi_or_anti_with_work(
            rel,
            source,
            cond,
            !anti,
            self.opts.indexed,
        )?;
        self.stats.join_input_tuples += work;
        Ok(out)
    }

    fn join_counters(&mut self, l: &Relation, r: &Relation) {
        self.stats.joins += 1;
        self.stats.join_input_tuples += (l.len() + r.len()) as u64;
    }

    /// Tuple-iteration fallback for shapes the join rewrites do not cover.
    fn fallback(&mut self, q: &QueryExpr) -> Result<Relation> {
        self.stats.fallbacks += 1;
        let (rel, _) = reference::eval(
            q,
            self.catalog,
            &RefOptions {
                smart: true,
                indexed: self.opts.indexed,
            },
        )?;
        Ok(rel)
    }
}

/// Map an `UnknownColumn` binding failure — the signature of a
/// non-neighboring correlation reference that the join rewrites cannot
/// express — to `None` (triggering the tuple-iteration fallback).
fn none_on_unknown<T>(r: Result<T>) -> Result<Option<T>> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(gmdj_relation::error::Error::UnknownColumn { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Flatten a nested predicate into conjuncts; `None` if any disjunction or
/// negation sits above a subquery.
fn split_nested_conjuncts(p: &NestedPredicate) -> Option<Vec<&NestedPredicate>> {
    fn walk<'x>(p: &'x NestedPredicate, out: &mut Vec<&'x NestedPredicate>) -> bool {
        match p {
            NestedPredicate::And(a, b) => walk(a, out) && walk(b, out),
            NestedPredicate::Or(..) | NestedPredicate::Not(..) => {
                if p.is_flat() {
                    out.push(p);
                    true
                } else {
                    false
                }
            }
            leaf => {
                out.push(leaf);
                true
            }
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out).then_some(out)
}

fn output_col(output: &SubqueryOutput) -> Option<ColumnRef> {
    match output {
        SubqueryOutput::Column(c) => Some(c.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::{exists, not_exists};
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;
    use gmdj_relation::value::Value;

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("C")
            .column("id", DataType::Int)
            .column("score", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![3.into(), 30.into()])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("O")
            .column("cust", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 100.into()])
            .row(vec![1.into(), 50.into()])
            .row(vec![3.into(), 75.into()])
            .row(vec![Value::Null, 10.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("Customers", customers)
            .with("Orders", orders)
    }

    fn agree_with_reference(q: &QueryExpr) {
        let cat = catalog();
        let (expected, _) = reference::eval(q, &cat, &RefOptions::default()).unwrap();
        for indexed in [true, false] {
            let (got, _) = eval(q, &cat, &UnnestOptions { indexed }).unwrap();
            assert!(
                got.multiset_eq(&expected),
                "unnest(indexed={indexed}) disagrees with reference for {q}\nexpected:\n{expected}\ngot:\n{got}"
            );
        }
    }

    #[test]
    fn exists_via_semi_join() {
        let sub = QueryExpr::table("Orders", "O").select_flat(
            col("O.cust")
                .eq(col("C.id"))
                .and(col("O.total").gt(lit(60))),
        );
        let q = QueryExpr::table("Customers", "C").select(exists(sub));
        agree_with_reference(&q);
        let (rel, stats) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(stats.joins >= 1);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn not_exists_via_anti_join() {
        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
        let q = QueryExpr::table("Customers", "C").select(not_exists(sub));
        agree_with_reference(&q);
    }

    #[test]
    fn all_with_nulls_via_violation_anti_join() {
        // C.id ≠all (cust values incl. NULL) — NULL poisons everything.
        let sub = QueryExpr::table("Orders", "O").project(vec![ColumnRef::parse("O.cust")]);
        let pred = NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("C.id"),
            op: CmpOp::Ne,
            quantifier: Quantifier::All,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        agree_with_reference(&q);
        let (rel, _) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn aggregate_cmp_via_outer_join_with_count_bug_fix() {
        // score > count(orders of this customer) * nothing fancy: compare
        // score with COUNT — customer 2 has zero orders and must compare
        // against 0, not NULL.
        let sub = QueryExpr::table("Orders", "O")
            .select_flat(col("O.cust").eq(col("C.id")))
            .agg_project(NamedAgg::count_star("n"));
        let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("C.score"),
            op: CmpOp::Gt,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        agree_with_reference(&q);
        let (rel, stats) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        // Everyone's score exceeds their order count (incl. customer 2).
        assert_eq!(rel.len(), 3);
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.aggregations >= 1);
    }

    #[test]
    fn aggregate_cmp_sum_empty_group_is_null() {
        // score > sum(totals): customer 2 has no orders → NULL → dropped.
        let sub = QueryExpr::table("Orders", "O")
            .select_flat(col("O.cust").eq(col("C.id")))
            .agg_project(NamedAgg::sum(col("O.total"), "s"));
        let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("C.score"),
            op: CmpOp::Lt,
            query: Box::new(sub),
        });
        let q = QueryExpr::table("Customers", "C").select(pred);
        agree_with_reference(&q);
        let (rel, _) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        // Customer 1: 10 < 150 ✓; customer 2: NULL → drop; customer 3:
        // 30 < 75 ✓.
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn multiple_subqueries_chain() {
        let has_order =
            QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let no_big_order = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("C.id"))
                .and(col("O2.total").gt(lit(80))),
        );
        let q = QueryExpr::table("Customers", "C")
            .select(exists(has_order).and(not_exists(no_big_order)));
        agree_with_reference(&q);
        let (rel, _) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        // Customer 1 has a 100 order (excluded); customer 3 qualifies.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn disjunction_over_subqueries_falls_back() {
        let a = QueryExpr::table("Orders", "O1").select_flat(col("O1.cust").eq(col("C.id")));
        let b = QueryExpr::table("Orders", "O2").select_flat(col("O2.total").gt(col("C.score")));
        let q = QueryExpr::table("Customers", "C").select(exists(a).or(exists(b)));
        agree_with_reference(&q);
        let (_, stats) = eval(&q, &catalog(), &UnnestOptions::default()).unwrap();
        assert!(stats.fallbacks >= 1);
    }

    #[test]
    fn tree_nested_subquery_unnests_into_source() {
        // EXISTS order whose customer has another order over 60.
        let inner = QueryExpr::table("Orders", "O2").select_flat(
            col("O2.cust")
                .eq(col("O.cust"))
                .and(col("O2.total").gt(lit(60))),
        );
        let mid = QueryExpr::table("Orders", "O")
            .select(NestedPredicate::Atom(col("O.cust").eq(col("C.id"))).and(exists(inner)));
        let q = QueryExpr::table("Customers", "C").select(exists(mid));
        agree_with_reference(&q);
    }
}
