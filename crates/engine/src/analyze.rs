//! EXPLAIN ANALYZE: run a query and render the timed, counter-annotated
//! plan tree.
//!
//! [`explain_analyze`] executes the query under the requested strategy
//! and [`ExecPolicy`] with tracing enabled, then packages the
//! [`PlanNodeStats`] tree together with query-level wall-clock into an
//! [`AnalyzeReport`] renderable as text (the shell's `\analyze`) or JSON
//! (`\analyze json`, `repro --profile-json`).

use std::sync::Arc;
use std::time::Duration;

use gmdj_algebra::ast::QueryExpr;
use gmdj_core::exec::TableProvider;
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats};
use gmdj_core::trace::{json_escape, TraceSink};
use gmdj_relation::error::Result;

use crate::strategy::{run_with_policy_traced, Strategy, StrategyStats};

/// The product of an EXPLAIN ANALYZE run: query-level timing plus the
/// per-plan-node statistics tree (GMDJ strategies; the reference and
/// unnest engines report query totals only).
#[derive(Debug)]
pub struct AnalyzeReport {
    /// Strategy label (`gmdj-opt`, `native`, …).
    pub strategy: &'static str,
    /// The execution policy the query ran under.
    pub policy: ExecPolicy,
    /// Evaluation wall-clock (the `query.execute` span).
    pub wall: Duration,
    /// Translation + optimization wall-clock (the `query.plan` span;
    /// zero for plan-free engines).
    pub plan_wall: Duration,
    /// Result cardinality.
    pub rows: usize,
    /// The timed plan tree, when the strategy builds a GMDJ plan.
    pub tree: Option<PlanNodeStats>,
    /// Total machine-independent work (strategy-specific counters).
    pub work: u64,
}

impl AnalyzeReport {
    /// Human-readable report: header lines plus the annotated tree.
    pub fn render(&self) -> String {
        let morsel = match self.policy.morsel_size {
            Some(m) => format!("  morsel: {m} rows"),
            None => String::new(),
        };
        let mut out = format!(
            "strategy: {}  mode: {:?}{morsel}\nplan: {:.3}ms  execute: {:.3}ms  rows: {}  work: {}\n",
            self.strategy,
            self.policy.mode,
            self.plan_wall.as_secs_f64() * 1e3,
            self.wall.as_secs_f64() * 1e3,
            self.rows,
            self.work,
        );
        match &self.tree {
            Some(tree) => {
                // Percentages are of the executor's inclusive root time,
                // falling back to the query wall when the tree is empty.
                out.push_str(&tree.render_analyze());
            }
            None => out.push_str("(no plan tree: strategy interprets the query directly)\n"),
        }
        out
    }

    /// The cost model's figure for the work the plan tree recorded
    /// ([`gmdj_core::cost::observed_cost`]), if the strategy built one.
    /// Comparing it against `wall` calibrates the model's cost units.
    pub fn predicted_cost(&self) -> Option<f64> {
        self.tree
            .as_ref()
            .map(|t| gmdj_core::cost::observed_cost(t).total())
    }

    /// Machine-readable report (hand-rolled JSON; no serde in-tree).
    pub fn to_json(&self) -> String {
        let tree = match &self.tree {
            Some(t) => t.to_json(),
            None => "null".to_string(),
        };
        let predicted = match self.predicted_cost() {
            Some(c) => format!("{c:.1}"),
            None => "null".to_string(),
        };
        let morsel = match self.policy.morsel_size {
            Some(m) => m.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"strategy\":\"{}\",\"mode\":\"{}\",\"morsel_size\":{morsel},\"plan_us\":{},\"execute_us\":{},\"rows\":{},\"work\":{},\"predicted_cost\":{predicted},\"plan\":{}}}",
            json_escape(self.strategy),
            json_escape(&format!("{:?}", self.policy.mode)),
            self.plan_wall.as_micros(),
            self.wall.as_micros(),
            self.rows,
            self.work,
            tree,
        )
    }
}

/// Run `query` under `strategy` and `policy` with tracing into `sink`,
/// returning the timed report. Use [`gmdj_core::trace::NullSink`] when
/// only the report (not the raw spans) is wanted.
pub fn explain_analyze(
    query: &QueryExpr,
    catalog: &dyn TableProvider,
    strategy: Strategy,
    policy: ExecPolicy,
    sink: Arc<dyn TraceSink>,
) -> Result<AnalyzeReport> {
    let result = run_with_policy_traced(query, catalog, strategy, policy, sink)?;
    let work = match result.stats {
        StrategyStats::Reference(s) => s.work(),
        StrategyStats::Unnest(s) => s.join_input_tuples + s.joins + s.aggregations,
        StrategyStats::Gmdj(s) => s.work(),
    };
    Ok(AnalyzeReport {
        strategy: strategy.label(),
        policy,
        wall: result.wall,
        plan_wall: result.plan_wall,
        rows: result.relation.len(),
        tree: result.plan_stats,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::exists;
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_core::trace::NullSink;
    use gmdj_relation::expr::col;
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("C")
            .column("id", DataType::Int)
            .row(vec![1.into()])
            .row(vec![2.into()])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("O")
            .column("cust", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("Customers", customers)
            .with("Orders", orders)
    }

    fn query() -> QueryExpr {
        let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
        QueryExpr::table("Customers", "C").select(exists(sub))
    }

    #[test]
    fn analyze_renders_timed_tree_under_every_policy() {
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy::parallel(2),
            ExecPolicy::distributed(2),
        ] {
            let report = explain_analyze(
                &query(),
                &catalog(),
                Strategy::GmdjOptimized,
                policy,
                Arc::new(NullSink),
            )
            .unwrap();
            let text = report.render();
            assert!(text.contains("strategy: gmdj-opt"), "{text}");
            assert!(text.contains("time="), "{text}");
            assert!(text.contains("predicted="), "{text}");
            assert!(text.contains("GMDJ"), "{text}");
            let tree = report.tree.as_ref().unwrap();
            assert!(tree.elapsed_ns > 0);
            let predicted = report.predicted_cost().unwrap();
            assert!(predicted > 0.0 && predicted.is_finite());
            let json = report.to_json();
            assert!(json.contains("\"plan\":{"), "{json}");
            assert!(json.contains("\"predicted_cost\":"), "{json}");
        }
    }

    #[test]
    fn analyze_renders_per_site_breakdown_under_distributed_runs() {
        for real in [false, true] {
            let report = explain_analyze(
                &query(),
                &catalog(),
                Strategy::GmdjOptimized,
                ExecPolicy::distributed(2).with_real_sites(real),
                Arc::new(NullSink),
            )
            .unwrap();
            let text = report.render();
            // One breakdown line per site: round-trip wall, site-local
            // wall, derived wire time, coordinator merge time.
            for needle in ["site0", "site1", "rt=", "site=", "wire=", "merge="] {
                assert!(
                    text.contains(needle),
                    "real={real}: missing `{needle}`\n{text}"
                );
            }
            // The socket transport also reports measured wire bytes.
            assert_eq!(text.contains("bytes[sent="), real, "{text}");
            let json = report.to_json();
            assert!(json.contains("\"sites\":["), "{json}");
            assert!(json.contains("\"site_wall_ns\":"), "{json}");
        }
    }

    #[test]
    fn analyze_without_plan_tree_reports_totals() {
        let report = explain_analyze(
            &query(),
            &catalog(),
            Strategy::NativeSmart,
            ExecPolicy::sequential(),
            Arc::new(NullSink),
        )
        .unwrap();
        assert!(report.tree.is_none());
        assert!(report.predicted_cost().is_none());
        assert!(report.render().contains("no plan tree"));
        assert!(report.to_json().contains("\"plan\":null"));
        assert!(report.to_json().contains("\"predicted_cost\":null"));
    }
}
