//! Plan cache keyed on normalized algebra.
//!
//! Translation (Algorithm SubqueryToGMDJ) is pure given the catalog's
//! schema, and [`gmdj_algebra::normalize::normalize_negations`] canonizes
//! the query's predicate structure — so two syntactically different
//! submissions of the same normalized query against the same catalog
//! state translate to interchangeable plans. This module memoizes that
//! step: the cache key is `(catalog epoch, normalized query text)`,
//! where the epoch comes from
//! [`TableProvider::plan_cache_key`] and pins one
//! exact catalog state (providers that cannot pin one return `None` and
//! opt out — their lookups bypass the cache and count toward neither
//! counter).
//!
//! The cache is process-wide, FIFO-capped at [`CACHE_CAP`] entries, and
//! instrumented with `plan_cache_hits_total` / `plan_cache_misses_total`
//! in the global [`metrics`] registry. The SQL shell's `\cache`
//! meta-command renders [`stats`].

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use gmdj_algebra::ast::QueryExpr;
use gmdj_algebra::normalize::normalize_negations;
use gmdj_core::exec::TableProvider;
use gmdj_core::metrics;
use gmdj_core::plan::GmdjExpr;
use gmdj_core::translate::subquery_to_gmdj;
use gmdj_relation::error::Result;

/// Maximum resident plans; the oldest insertion is evicted beyond this.
pub const CACHE_CAP: usize = 128;

type Key = (u64, String);

#[derive(Debug, Default)]
struct Cache {
    plans: HashMap<Key, GmdjExpr>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    hits: u64,
    misses: u64,
}

fn cache() -> &'static Mutex<Cache> {
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Cache::default()))
}

/// Point-in-time cache observability for `\cache` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident plans.
    pub len: usize,
    /// Eviction cap ([`CACHE_CAP`]).
    pub cap: usize,
    /// Lifetime hits (process-wide).
    pub hits: u64,
    /// Lifetime misses (process-wide).
    pub misses: u64,
}

/// Translate `query` against `catalog`, serving the plan from the cache
/// when the same normalized query was already translated against the
/// same catalog epoch. Falls through to a plain
/// [`subquery_to_gmdj`] (uncounted) for providers
/// without a cache key. Translation errors are never cached.
pub fn cached_translate(query: &QueryExpr, catalog: &dyn TableProvider) -> Result<GmdjExpr> {
    let Some(epoch) = catalog.plan_cache_key() else {
        return subquery_to_gmdj(query, catalog);
    };
    let key: Key = (epoch, normalize_negations(query).to_string());
    {
        let mut cache = cache().lock().expect("plan cache poisoned");
        if let Some(plan) = cache.plans.get(&key) {
            let plan = plan.clone();
            cache.hits += 1;
            metrics::global().inc("plan_cache_hits_total", 1);
            return Ok(plan);
        }
    }
    // Translate outside the lock: misses are the slow path and the
    // catalog borrow must not serialize behind other queries' planning.
    let plan = subquery_to_gmdj(query, catalog)?;
    let mut cache = cache().lock().expect("plan cache poisoned");
    cache.misses += 1;
    metrics::global().inc("plan_cache_misses_total", 1);
    if !cache.plans.contains_key(&key) {
        while cache.order.len() >= CACHE_CAP {
            if let Some(old) = cache.order.pop_front() {
                cache.plans.remove(&old);
            }
        }
        cache.order.push_back(key.clone());
        cache.plans.insert(key, plan.clone());
    }
    Ok(plan)
}

/// Current size and lifetime hit/miss counts.
pub fn stats() -> CacheStats {
    let cache = cache().lock().expect("plan cache poisoned");
    CacheStats {
        len: cache.plans.len(),
        cap: CACHE_CAP,
        hits: cache.hits,
        misses: cache.misses,
    }
}

/// Drop every cached plan (hit/miss counters keep their lifetime
/// values — they are rates, not gauges).
pub fn clear() {
    let mut cache = cache().lock().expect("plan cache poisoned");
    cache.plans.clear();
    cache.order.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_algebra::ast::exists;
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_relation::expr::{col, lit};
    use gmdj_relation::relation::RelationBuilder;
    use gmdj_relation::schema::DataType;

    fn catalog() -> MemoryCatalog {
        let customers = RelationBuilder::new("c")
            .column("id", DataType::Int)
            .row(vec![1.into()])
            .row(vec![2.into()])
            .build()
            .unwrap();
        let orders = RelationBuilder::new("o")
            .column("cust", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 500.into()])
            .row(vec![2.into(), 10.into()])
            .build()
            .unwrap();
        MemoryCatalog::new()
            .with("customer", customers)
            .with("orders", orders)
    }

    fn query() -> QueryExpr {
        let sub = QueryExpr::table("orders", "o").select_flat(
            col("o.cust")
                .eq(col("c.id"))
                .and(col("o.total").gt(lit(100))),
        );
        QueryExpr::table("customer", "c").select(exists(sub))
    }

    #[test]
    fn second_translation_hits_and_plans_agree() {
        let catalog = catalog();
        let before = stats();
        let first = cached_translate(&query(), &catalog).unwrap();
        let second = cached_translate(&query(), &catalog).unwrap();
        assert_eq!(first, second);
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(
            first,
            subquery_to_gmdj(&query(), &catalog).unwrap(),
            "cached plan must equal a fresh translation"
        );
    }

    #[test]
    fn catalog_mutation_refreshes_the_epoch_and_misses() {
        let mut catalog = catalog();
        cached_translate(&query(), &catalog).unwrap();
        let before = stats();
        // Replacing a table re-draws the epoch: the old plan is stale.
        let orders = RelationBuilder::new("o")
            .column("cust", DataType::Int)
            .column("total", DataType::Int)
            .row(vec![1.into(), 5.into()])
            .build()
            .unwrap();
        catalog.register("orders", orders);
        cached_translate(&query(), &catalog).unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits, before.hits);
    }

    #[test]
    fn distinct_catalogs_never_share_entries() {
        let a = catalog();
        let b = catalog();
        assert_ne!(a.plan_cache_key(), b.plan_cache_key());
        let before = stats();
        cached_translate(&query(), &a).unwrap();
        cached_translate(&query(), &b).unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 2);
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let catalog = catalog();
        for i in 0..(CACHE_CAP + 8) {
            // Distinct normalized texts: vary the literal.
            let sub = QueryExpr::table("orders", "o").select_flat(
                col("o.cust")
                    .eq(col("c.id"))
                    .and(col("o.total").gt(lit(i as i64))),
            );
            let q = QueryExpr::table("customer", "c").select(exists(sub));
            cached_translate(&q, &catalog).unwrap();
        }
        assert!(stats().len <= CACHE_CAP);
    }
}
