//! Property test for the complex-OLAP query form (subquery-defined base
//! table + GMDJ aggregation): every strategy — including the fully
//! compiled-and-coalesced GMDJ path — produces the same result.

use proptest::prelude::*;

use gmdj_algebra::ast::{NestedPredicate, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_engine::olap::{Aggregation, OlapQuery};
use gmdj_engine::strategy::Strategy as EvalStrategy;
use gmdj_relation::agg::{AggFunc, NamedAgg};
use gmdj_relation::expr::{col, lit, CmpOp, ScalarExpr};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::Value;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..5).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation(qualifier: &'static str, max_rows: usize) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("k", DataType::Int), ("v", DataType::Int)]);
    proptest::collection::vec((value(), value()), 1..max_rows).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(k, v)| vec![k, v].into_boxed_slice())
                .collect(),
        )
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::CountStar),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The OLAP query form of Examples 2.2/2.3: base defined by EXISTS
    /// subqueries over the same table the aggregation details range over —
    /// the coalescing-heavy path.
    #[test]
    fn olap_queries_agree_across_strategies(
        b in relation("B", 8),
        r in relation("R", 12),
        sub_op in cmp_op(),
        negated in proptest::bool::ANY,
        f1 in agg_func(),
        f2 in agg_func(),
        local in 0i64..5,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let sub = QueryExpr::table("R", "RS").select_flat(
            ScalarExpr::Column(ColumnRef::qualified("RS", "k"))
                .cmp_with(sub_op, col("B.k"))
                .and(col("RS.v").ge(lit(local))),
        );
        let base = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(
            SubqueryPred::Exists { query: Box::new(sub), negated },
        ));
        let query = OlapQuery {
            base,
            aggregation: Some(Aggregation {
                detail: QueryExpr::table("R", "RD"),
                spec: GmdjSpec::new(vec![
                    AggBlock::new(
                        col("B.k").eq(col("RD.k")),
                        vec![mk_agg(f1, "a1")],
                    ),
                    AggBlock::new(
                        col("B.v").le(col("RD.v")),
                        vec![mk_agg(f2, "a2")],
                    ),
                ]),
                having: None,
            }),
            projection: vec![],
        };
        let strategies = [
            EvalStrategy::NaiveNestedLoop,
            EvalStrategy::NativeSmart,
            EvalStrategy::JoinUnnest,
            EvalStrategy::GmdjBasic,
            EvalStrategy::GmdjOptimized,
            EvalStrategy::GmdjOptimizedNoProbeIndex,
        ];
        let mut baseline: Option<Relation> = None;
        for strat in strategies {
            let (rel, _) = query.run(&catalog, strat).unwrap();
            match &baseline {
                None => baseline = Some(rel),
                Some(b) => prop_assert!(
                    b.multiset_eq(&rel),
                    "{strat:?} disagrees:\nbaseline\n{b}\ngot\n{rel}"
                ),
            }
        }
    }

    /// A `having` selection over count columns activates completion in the
    /// optimized path; results must not change.
    #[test]
    fn olap_having_with_completion_agrees(
        b in relation("B", 8),
        r in relation("R", 12),
        theta_op in cmp_op(),
        zero in proptest::bool::ANY,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let query = OlapQuery {
            base: QueryExpr::table("B", "B"),
            aggregation: Some(Aggregation {
                detail: QueryExpr::table("R", "RD"),
                spec: GmdjSpec::new(vec![AggBlock::count(
                    ScalarExpr::Column(ColumnRef::qualified("B", "k"))
                        .cmp_with(theta_op, col("RD.k")),
                    "cnt",
                )]),
                having: Some(if zero {
                    col("cnt").eq(lit(0))
                } else {
                    col("cnt").gt(lit(0))
                }),
            }),
            projection: vec![(col("B.k"), None), (col("B.v"), None)],
        };
        let (basic, _) = query.run(&catalog, EvalStrategy::GmdjBasic).unwrap();
        let (optimized, _) = query.run(&catalog, EvalStrategy::GmdjOptimized).unwrap();
        let (native, _) = query.run(&catalog, EvalStrategy::NativeSmart).unwrap();
        prop_assert!(basic.multiset_eq(&optimized));
        prop_assert!(basic.multiset_eq(&native));
    }
}

fn mk_agg(f: AggFunc, name: &str) -> NamedAgg {
    if f == AggFunc::CountStar {
        NamedAgg::count_star(name)
    } else {
        NamedAgg::new(f, col("RD.v"), name)
    }
}
