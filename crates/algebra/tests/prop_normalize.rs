//! Property tests for negation normalization: the postconditions of the
//! SubqueryToGMDJ preamble hold for arbitrary predicate trees.

use proptest::prelude::*;

use gmdj_algebra::ast::{NestedPredicate, Quantifier, QueryExpr, SubqueryPred};
use gmdj_algebra::normalize::{is_negation_free, normalize_negations};
use gmdj_relation::expr::{col, lit, CmpOp, ScalarExpr};
use gmdj_relation::schema::ColumnRef;

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn leaf() -> impl Strategy<Value = NestedPredicate> {
    let atom = (cmp_op(), 0i64..5).prop_map(|(op, k)| {
        NestedPredicate::Atom(
            ScalarExpr::Column(ColumnRef::qualified("B", "a")).cmp_with(op, lit(k)),
        )
    });
    let exists = (proptest::bool::ANY, cmp_op()).prop_map(|(negated, op)| {
        NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(
                ScalarExpr::Column(ColumnRef::qualified("R1", "a")).cmp_with(op, col("B.a")),
            )),
            negated,
        })
    });
    let quantified = (cmp_op(), proptest::bool::ANY).prop_map(|(op, all)| {
        NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("B.a"),
            op,
            quantifier: if all {
                Quantifier::All
            } else {
                Quantifier::Some
            },
            query: Box::new(QueryExpr::table("R", "R1").project(vec![ColumnRef::parse("R1.b")])),
        })
    });
    let in_pred = proptest::bool::ANY.prop_map(|negated| {
        NestedPredicate::Subquery(SubqueryPred::In {
            left: col("B.a"),
            query: Box::new(QueryExpr::table("R", "R1").project(vec![ColumnRef::parse("R1.a")])),
            negated,
        })
    });
    prop_oneof![atom, exists, quantified, in_pred]
}

fn predicate() -> impl Strategy<Value = NestedPredicate> {
    leaf().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|p| p.not()),
        ]
    })
}

fn count_subqueries(p: &NestedPredicate) -> usize {
    p.subquery_count()
}

fn count_in_preds(p: &NestedPredicate) -> usize {
    match p {
        NestedPredicate::Atom(_) => 0,
        NestedPredicate::Subquery(SubqueryPred::In { .. }) => 1,
        NestedPredicate::Subquery(_) => 0,
        NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => {
            count_in_preds(a) + count_in_preds(b)
        }
        NestedPredicate::Not(inner) => count_in_preds(inner),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The output never contains a negation node.
    #[test]
    fn output_is_negation_free(p in predicate()) {
        let q = QueryExpr::table("B", "B").select(p);
        let n = normalize_negations(&q);
        prop_assert!(is_negation_free(&n));
    }

    /// Normalization is idempotent.
    #[test]
    fn normalization_is_idempotent(p in predicate()) {
        let q = QueryExpr::table("B", "B").select(p);
        let once = normalize_negations(&q);
        let twice = normalize_negations(&once);
        prop_assert_eq!(once, twice);
    }

    /// The number of subquery constructs is preserved (IN desugars to a
    /// quantified comparison, one for one).
    #[test]
    fn subquery_count_preserved(p in predicate()) {
        let before = count_subqueries(&p);
        let q = QueryExpr::table("B", "B").select(p);
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            return Err(TestCaseError::fail("normalization changed the root shape"));
        };
        prop_assert_eq!(count_subqueries(predicate), before);
        // No IN predicates survive.
        prop_assert_eq!(count_in_preds(predicate), 0);
    }

    /// Double negation cancels exactly.
    #[test]
    fn double_negation_cancels(p in predicate()) {
        let q1 = QueryExpr::table("B", "B").select(p.clone());
        let q2 = QueryExpr::table("B", "B").select(p.not().not());
        prop_assert_eq!(normalize_negations(&q1), normalize_negations(&q2));
    }
}
