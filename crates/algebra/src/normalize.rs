//! Negation normalization — the preamble of Algorithm SubqueryToGMDJ.
//!
//! Before translating, the algorithm (Section 3.3):
//!
//! 1. applies De Morgan's laws to push negations down to atomic
//!    predicates, and
//! 2. eliminates negations in front of subqueries with the rules
//!    `¬(t φ S) ⇒ t φ̄ S`, `¬(t φ_some S) ⇒ t φ̄_all S`,
//!    `¬(t φ_all S) ⇒ t φ̄_some S`, `¬∃S ⇒ ∄S`, `¬∄S ⇒ ∃S`.
//!
//! `IN` / `NOT IN` are desugared first (`x ∈ S ≡ x =_some S`,
//! `x ∉ S ≡ x ≠_all S`, the definitions in Section 2.1).
//!
//! Negations on comparison *atoms* are also eliminated (`¬(x φ y) ⇒ x φ̄ y`)
//! — exact under 3VL because both sides are unknown when an operand is
//! NULL. `IS NULL` atoms are two-valued, so `¬(e IS NULL) ⇒ e IS NOT NULL`
//! is exact as well. Pushing down and eliminating negations ensures NULL
//! values are handled correctly by the count-based translation.

use gmdj_relation::expr::Predicate;

use crate::ast::{NestedPredicate, QueryExpr, SubqueryPred};

/// Normalize a whole query expression: desugar `IN`/`NOT IN` and eliminate
/// every negation in every selection predicate, recursively including the
/// subquery bodies.
pub fn normalize_negations(query: &QueryExpr) -> QueryExpr {
    match query {
        QueryExpr::Table { .. } => query.clone(),
        QueryExpr::Select { input, predicate } => QueryExpr::Select {
            input: Box::new(normalize_negations(input)),
            predicate: normalize_predicate(predicate, false),
        },
        QueryExpr::Project {
            input,
            columns,
            distinct,
        } => QueryExpr::Project {
            input: Box::new(normalize_negations(input)),
            columns: columns.clone(),
            distinct: *distinct,
        },
        QueryExpr::AggProject { input, agg } => QueryExpr::AggProject {
            input: Box::new(normalize_negations(input)),
            agg: agg.clone(),
        },
        QueryExpr::Join { left, right, on } => QueryExpr::Join {
            left: Box::new(normalize_negations(left)),
            right: Box::new(normalize_negations(right)),
            on: on.clone(),
        },
        QueryExpr::GroupBy { input, keys, aggs } => QueryExpr::GroupBy {
            input: Box::new(normalize_negations(input)),
            keys: keys.clone(),
            aggs: aggs.clone(),
        },
        QueryExpr::OrderBy { input, keys } => QueryExpr::OrderBy {
            input: Box::new(normalize_negations(input)),
            keys: keys.clone(),
        },
        QueryExpr::Limit { input, n } => QueryExpr::Limit {
            input: Box::new(normalize_negations(input)),
            n: *n,
        },
    }
}

/// Normalize a nested predicate, tracking the parity of enclosing
/// negations (`negated` = under an odd number of ¬).
fn normalize_predicate(pred: &NestedPredicate, negated: bool) -> NestedPredicate {
    match pred {
        NestedPredicate::Not(inner) => normalize_predicate(inner, !negated),
        NestedPredicate::And(a, b) => {
            let na = normalize_predicate(a, negated);
            let nb = normalize_predicate(b, negated);
            if negated {
                // ¬(a ∧ b) = ¬a ∨ ¬b
                NestedPredicate::Or(Box::new(na), Box::new(nb))
            } else {
                NestedPredicate::And(Box::new(na), Box::new(nb))
            }
        }
        NestedPredicate::Or(a, b) => {
            let na = normalize_predicate(a, negated);
            let nb = normalize_predicate(b, negated);
            if negated {
                NestedPredicate::And(Box::new(na), Box::new(nb))
            } else {
                NestedPredicate::Or(Box::new(na), Box::new(nb))
            }
        }
        NestedPredicate::Atom(p) => NestedPredicate::Atom(if negated {
            negate_flat(p)
        } else {
            eliminate_flat_negations(p, false)
        }),
        NestedPredicate::Subquery(s) => normalize_subquery(s, negated),
    }
}

fn normalize_subquery(s: &SubqueryPred, negated: bool) -> NestedPredicate {
    let norm = |q: &QueryExpr| Box::new(normalize_negations(q));
    let out = match s {
        SubqueryPred::In {
            left,
            query,
            negated: in_neg,
        } => {
            // x ∈ S ≡ x =some S; x ∉ S ≡ x ≠all S — then apply the outer ¬.
            let effective_neg = *in_neg != negated;
            if effective_neg {
                SubqueryPred::Quantified {
                    left: left.clone(),
                    op: gmdj_relation::expr::CmpOp::Ne,
                    quantifier: crate::ast::Quantifier::All,
                    query: norm(query),
                }
            } else {
                SubqueryPred::Quantified {
                    left: left.clone(),
                    op: gmdj_relation::expr::CmpOp::Eq,
                    quantifier: crate::ast::Quantifier::Some,
                    query: norm(query),
                }
            }
        }
        SubqueryPred::Cmp { left, op, query } => SubqueryPred::Cmp {
            left: left.clone(),
            op: if negated { op.negate() } else { *op },
            query: norm(query),
        },
        SubqueryPred::Quantified {
            left,
            op,
            quantifier,
            query,
        } => SubqueryPred::Quantified {
            left: left.clone(),
            op: if negated { op.negate() } else { *op },
            quantifier: if negated {
                quantifier.dual()
            } else {
                *quantifier
            },
            query: norm(query),
        },
        SubqueryPred::Exists {
            query,
            negated: ex_neg,
        } => SubqueryPred::Exists {
            query: norm(query),
            negated: *ex_neg != negated,
        },
    };
    NestedPredicate::Subquery(out)
}

/// Apply `¬` to a flat predicate, pushing it to the leaves.
fn negate_flat(p: &Predicate) -> Predicate {
    match p {
        Predicate::Literal(t) => Predicate::Literal(t.not()),
        Predicate::Cmp { op, left, right } => Predicate::Cmp {
            op: op.negate(),
            left: left.clone(),
            right: right.clone(),
        },
        Predicate::IsNull(e) => Predicate::IsNotNull(e.clone()),
        Predicate::IsNotNull(e) => Predicate::IsNull(e.clone()),
        Predicate::And(a, b) => Predicate::Or(Box::new(negate_flat(a)), Box::new(negate_flat(b))),
        Predicate::Or(a, b) => Predicate::And(Box::new(negate_flat(a)), Box::new(negate_flat(b))),
        Predicate::Not(inner) => eliminate_flat_negations(inner, false),
    }
}

/// Remove all `Not` nodes from a flat predicate.
fn eliminate_flat_negations(p: &Predicate, negated: bool) -> Predicate {
    if negated {
        return negate_flat(p);
    }
    match p {
        Predicate::Not(inner) => eliminate_flat_negations(inner, true),
        Predicate::And(a, b) => Predicate::And(
            Box::new(eliminate_flat_negations(a, false)),
            Box::new(eliminate_flat_negations(b, false)),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(eliminate_flat_negations(a, false)),
            Box::new(eliminate_flat_negations(b, false)),
        ),
        leaf => leaf.clone(),
    }
}

/// True when no negation nodes remain anywhere (the postcondition of
/// [`normalize_negations`]).
pub fn is_negation_free(query: &QueryExpr) -> bool {
    fn pred_free(p: &NestedPredicate) -> bool {
        match p {
            NestedPredicate::Not(_) => false,
            NestedPredicate::Atom(f) => flat_free(f),
            NestedPredicate::Subquery(s) => query_free(s.query()),
            NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => pred_free(a) && pred_free(b),
        }
    }
    fn flat_free(p: &Predicate) -> bool {
        match p {
            Predicate::Not(_) => false,
            Predicate::And(a, b) | Predicate::Or(a, b) => flat_free(a) && flat_free(b),
            _ => true,
        }
    }
    fn query_free(q: &QueryExpr) -> bool {
        match q {
            QueryExpr::Table { .. } => true,
            QueryExpr::Select { input, predicate } => query_free(input) && pred_free(predicate),
            QueryExpr::Project { input, .. }
            | QueryExpr::AggProject { input, .. }
            | QueryExpr::GroupBy { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Limit { input, .. } => query_free(input),
            QueryExpr::Join { left, right, on } => {
                query_free(left) && query_free(right) && flat_free(on)
            }
        }
    }
    query_free(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{exists, not_exists, Quantifier};
    use gmdj_relation::expr::{col, lit, CmpOp};

    fn table() -> QueryExpr {
        QueryExpr::table("R", "R")
    }

    #[test]
    fn not_exists_flips() {
        let q = QueryExpr::table("B", "B").select(exists(table()).not());
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        assert_eq!(predicate, &not_exists(table()));
        assert!(is_negation_free(&n));
    }

    #[test]
    fn double_negation_cancels() {
        let q = QueryExpr::table("B", "B").select(exists(table()).not().not());
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        assert_eq!(predicate, &exists(table()));
    }

    #[test]
    fn de_morgan_over_and() {
        let p = exists(table())
            .and(NestedPredicate::atom(col("B.a").eq(lit(1))))
            .not();
        let q = QueryExpr::table("B", "B").select(p);
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        // ¬(∃S ∧ a=1) = ∄S ∨ a<>1
        match predicate {
            NestedPredicate::Or(l, r) => {
                assert_eq!(**l, not_exists(table()));
                assert_eq!(**r, NestedPredicate::atom(col("B.a").ne(lit(1))));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn negated_quantifier_dualizes() {
        let sub = SubqueryPred::Quantified {
            left: col("B.x"),
            op: CmpOp::Gt,
            quantifier: Quantifier::All,
            query: Box::new(table()),
        };
        let q = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(sub).not());
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        match predicate {
            NestedPredicate::Subquery(SubqueryPred::Quantified { op, quantifier, .. }) => {
                assert_eq!(*op, CmpOp::Le);
                assert_eq!(*quantifier, Quantifier::Some);
            }
            other => panic!("expected quantified, got {other:?}"),
        }
    }

    #[test]
    fn in_desugars_to_some_and_not_in_to_all() {
        let mk = |negated| SubqueryPred::In {
            left: col("B.x"),
            query: Box::new(table()),
            negated,
        };
        let q = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(mk(false)));
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        match predicate {
            NestedPredicate::Subquery(SubqueryPred::Quantified { op, quantifier, .. }) => {
                assert_eq!(*op, CmpOp::Eq);
                assert_eq!(*quantifier, Quantifier::Some);
            }
            other => panic!("{other:?}"),
        }
        // ¬(x ∈ S) and x ∉ S both become ≠all.
        let q = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(mk(false)).not());
        let n = normalize_negations(&q);
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        match predicate {
            NestedPredicate::Subquery(SubqueryPred::Quantified { op, quantifier, .. }) => {
                assert_eq!(*op, CmpOp::Ne);
                assert_eq!(*quantifier, Quantifier::All);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negation_inside_subquery_body_is_normalized() {
        let inner = table().select(exists(QueryExpr::table("S", "S")).not());
        let q = QueryExpr::table("B", "B").select(exists(inner));
        let n = normalize_negations(&q);
        assert!(is_negation_free(&n));
    }

    #[test]
    fn flat_negations_eliminated() {
        let p = NestedPredicate::atom(col("a").eq(lit(1)).and(col("b").lt(lit(2)).not()).not());
        let q = QueryExpr::table("B", "B").select(p);
        let n = normalize_negations(&q);
        assert!(is_negation_free(&n));
        let QueryExpr::Select { predicate, .. } = &n else {
            unreachable!()
        };
        // ¬(a=1 ∧ ¬(b<2)) = a≠1 ∨ b<2
        let NestedPredicate::Atom(flat) = predicate else {
            panic!()
        };
        assert_eq!(flat.to_string(), "(a <> 1 ∨ b < 2)");
    }
}
