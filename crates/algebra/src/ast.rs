//! AST for nested query expressions.
//!
//! A [`QueryExpr`] is an algebraic expression whose selections may carry a
//! [`NestedPredicate`]: a boolean combination of ordinary comparison atoms
//! and [`SubqueryPred`] subquery constructs, each of which embeds a further
//! `QueryExpr`. This is exactly the grammar of Theorem 3.5:
//! `W := ¬(W) | W ∧ W | W ∨ W | P` with `P` a comparison predicate or a
//! subquery expression.

use std::fmt;

use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{CmpOp, Predicate, ScalarExpr};
use gmdj_relation::schema::ColumnRef;

/// An algebraic query expression (possibly containing nested subqueries in
/// its selection predicates).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// Base table scan with renaming: the paper's `Flow → F`. All
    /// attributes of the scan are qualified with `qualifier`.
    Table { name: String, qualifier: String },
    /// `σ[W](input)` — selection whose predicate may embed subqueries.
    Select {
        input: Box<QueryExpr>,
        predicate: NestedPredicate,
    },
    /// `π[columns](input)` — projection; `distinct` selects set semantics
    /// (the paper's base-values tables, e.g. `π[SourceIP]Flow` in
    /// Example 2.3, are distinct projections).
    Project {
        input: Box<QueryExpr>,
        columns: Vec<ColumnRef>,
        distinct: bool,
    },
    /// `π[f(y)](input)` — ungrouped scalar aggregate, always exactly one
    /// row (NULL-valued for empty input except COUNT). The inner block of
    /// an aggregate comparison subquery `σ[B.x φ π[f(R.y)]σ[θ](R)]B`.
    AggProject {
        input: Box<QueryExpr>,
        agg: NamedAgg,
    },
    /// `left ⋈_on right` — ordinary θ-join with a flat condition. Appears
    /// in source expressions and is introduced by the push-down rules for
    /// non-neighboring predicates (Theorems 3.3/3.4).
    Join {
        left: Box<QueryExpr>,
        right: Box<QueryExpr>,
        on: Predicate,
    },
    /// γ\[keys; aggs\](input) — SQL GROUP BY. The output schema is the key
    /// columns followed by the aggregate outputs. Not a subquery
    /// construct; appears in source positions and at the top of OLAP
    /// queries.
    GroupBy {
        input: Box<QueryExpr>,
        keys: Vec<ColumnRef>,
        aggs: Vec<NamedAgg>,
    },
    /// SQL ORDER BY — presentation only (relations are multisets). Keys
    /// are `(column, ascending)`.
    OrderBy {
        input: Box<QueryExpr>,
        keys: Vec<(ColumnRef, bool)>,
    },
    /// SQL LIMIT — keep the first `n` tuples of the (ordered) input.
    Limit { input: Box<QueryExpr>, n: usize },
}

impl QueryExpr {
    /// `Table { name, qualifier }` builder.
    pub fn table(name: impl Into<String>, qualifier: impl Into<String>) -> QueryExpr {
        QueryExpr::Table {
            name: name.into(),
            qualifier: qualifier.into(),
        }
    }

    /// Wrap in a selection.
    pub fn select(self, predicate: NestedPredicate) -> QueryExpr {
        QueryExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap in a selection over a flat (non-nested) predicate.
    pub fn select_flat(self, predicate: Predicate) -> QueryExpr {
        self.select(NestedPredicate::Atom(predicate))
    }

    /// Duplicate-preserving projection.
    pub fn project(self, columns: Vec<ColumnRef>) -> QueryExpr {
        QueryExpr::Project {
            input: Box::new(self),
            columns,
            distinct: false,
        }
    }

    /// Distinct projection.
    pub fn project_distinct(self, columns: Vec<ColumnRef>) -> QueryExpr {
        QueryExpr::Project {
            input: Box::new(self),
            columns,
            distinct: true,
        }
    }

    /// Scalar aggregate projection.
    pub fn agg_project(self, agg: NamedAgg) -> QueryExpr {
        QueryExpr::AggProject {
            input: Box::new(self),
            agg,
        }
    }

    /// θ-join builder.
    pub fn join(self, right: QueryExpr, on: Predicate) -> QueryExpr {
        QueryExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// GROUP BY builder.
    pub fn group_by(self, keys: Vec<ColumnRef>, aggs: Vec<NamedAgg>) -> QueryExpr {
        QueryExpr::GroupBy {
            input: Box::new(self),
            keys,
            aggs,
        }
    }

    /// ORDER BY builder.
    pub fn order_by(self, keys: Vec<(ColumnRef, bool)>) -> QueryExpr {
        QueryExpr::OrderBy {
            input: Box::new(self),
            keys,
        }
    }

    /// LIMIT builder.
    pub fn limit(self, n: usize) -> QueryExpr {
        QueryExpr::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// The qualifiers introduced by this expression's own FROM — i.e. the
    /// *local scope* of its selection predicates. References to any other
    /// qualifier are free (Section 2.1).
    pub fn local_qualifiers(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_local_qualifiers(&mut out);
        out
    }

    fn collect_local_qualifiers<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            QueryExpr::Table { qualifier, .. } => {
                if !out.contains(&qualifier.as_str()) {
                    out.push(qualifier);
                }
            }
            QueryExpr::Select { input, .. }
            | QueryExpr::Project { input, .. }
            | QueryExpr::AggProject { input, .. }
            | QueryExpr::GroupBy { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Limit { input, .. } => input.collect_local_qualifiers(out),
            QueryExpr::Join { left, right, .. } => {
                left.collect_local_qualifiers(out);
                right.collect_local_qualifiers(out);
            }
        }
    }

    /// Count of subquery predicates anywhere in the expression (used by
    /// tests and by the engine's plan statistics).
    pub fn subquery_count(&self) -> usize {
        match self {
            QueryExpr::Table { .. } => 0,
            QueryExpr::Select { input, predicate } => {
                input.subquery_count() + predicate.subquery_count()
            }
            QueryExpr::Project { input, .. }
            | QueryExpr::AggProject { input, .. }
            | QueryExpr::GroupBy { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Limit { input, .. } => input.subquery_count(),
            QueryExpr::Join { left, right, .. } => left.subquery_count() + right.subquery_count(),
        }
    }

    /// Maximum nesting depth of subqueries (0 = flat query).
    pub fn nesting_depth(&self) -> usize {
        match self {
            QueryExpr::Table { .. } => 0,
            QueryExpr::Select { input, predicate } => {
                input.nesting_depth().max(predicate.nesting_depth())
            }
            QueryExpr::Project { input, .. }
            | QueryExpr::AggProject { input, .. }
            | QueryExpr::GroupBy { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Limit { input, .. } => input.nesting_depth(),
            QueryExpr::Join { left, right, .. } => left.nesting_depth().max(right.nesting_depth()),
        }
    }
}

/// Quantifier of a quantified comparison predicate. `ANY` is a synonym for
/// `SOME` and is desugared by the SQL front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    Some,
    All,
}

impl Quantifier {
    /// Dual quantifier under negation: `¬(φ_some) = φ̄_all` and vice versa.
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Some => Quantifier::All,
            Quantifier::All => Quantifier::Some,
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Some => write!(f, "some"),
            Quantifier::All => write!(f, "all"),
        }
    }
}

/// A subquery predicate — one of the SQL subquery constructs of
/// Section 2.1.
#[derive(Debug, Clone, PartialEq)]
pub enum SubqueryPred {
    /// Nested comparison selection `x φ S`: `S` must be a single-tuple,
    /// single-attribute expression at run time (scalar subquery).
    Cmp {
        left: ScalarExpr,
        op: CmpOp,
        query: Box<QueryExpr>,
    },
    /// Quantified nested comparison `x φ_some S` / `x φ_all S`.
    Quantified {
        left: ScalarExpr,
        op: CmpOp,
        quantifier: Quantifier,
        query: Box<QueryExpr>,
    },
    /// `x IN S` / `x NOT IN S` — desugars to `=some` / `≠all`.
    In {
        left: ScalarExpr,
        query: Box<QueryExpr>,
        negated: bool,
    },
    /// `∃S` / `∄S`.
    Exists {
        query: Box<QueryExpr>,
        negated: bool,
    },
}

impl SubqueryPred {
    /// The embedded query.
    pub fn query(&self) -> &QueryExpr {
        match self {
            SubqueryPred::Cmp { query, .. }
            | SubqueryPred::Quantified { query, .. }
            | SubqueryPred::In { query, .. }
            | SubqueryPred::Exists { query, .. } => query,
        }
    }

    /// Mutable access to the embedded query.
    pub fn query_mut(&mut self) -> &mut QueryExpr {
        match self {
            SubqueryPred::Cmp { query, .. }
            | SubqueryPred::Quantified { query, .. }
            | SubqueryPred::In { query, .. }
            | SubqueryPred::Exists { query, .. } => query,
        }
    }
}

/// `∃ S` builder.
pub fn exists(query: QueryExpr) -> NestedPredicate {
    NestedPredicate::Subquery(SubqueryPred::Exists {
        query: Box::new(query),
        negated: false,
    })
}

/// `∄ S` builder.
pub fn not_exists(query: QueryExpr) -> NestedPredicate {
    NestedPredicate::Subquery(SubqueryPred::Exists {
        query: Box::new(query),
        negated: true,
    })
}

/// A predicate that may contain subquery constructs (the `W` grammar of
/// Theorem 3.5).
#[derive(Debug, Clone, PartialEq)]
pub enum NestedPredicate {
    /// A flat comparison predicate (possibly with free references —
    /// correlation predicates are atoms here).
    Atom(Predicate),
    /// A subquery construct.
    Subquery(SubqueryPred),
    And(Box<NestedPredicate>, Box<NestedPredicate>),
    Or(Box<NestedPredicate>, Box<NestedPredicate>),
    Not(Box<NestedPredicate>),
}

impl NestedPredicate {
    /// Atom builder.
    pub fn atom(p: Predicate) -> NestedPredicate {
        NestedPredicate::Atom(p)
    }

    /// Conjunction.
    pub fn and(self, other: NestedPredicate) -> NestedPredicate {
        NestedPredicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: NestedPredicate) -> NestedPredicate {
        NestedPredicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> NestedPredicate {
        NestedPredicate::Not(Box::new(self))
    }

    /// True when no subquery constructs occur anywhere below.
    pub fn is_flat(&self) -> bool {
        self.subquery_count() == 0
    }

    /// Convert to a flat [`Predicate`], which requires that no subqueries
    /// occur. Used after all subqueries have been translated away.
    pub fn to_flat(&self) -> Option<Predicate> {
        match self {
            NestedPredicate::Atom(p) => Some(p.clone()),
            NestedPredicate::Subquery(_) => None,
            NestedPredicate::And(a, b) => Some(a.to_flat()?.and(b.to_flat()?)),
            NestedPredicate::Or(a, b) => Some(a.to_flat()?.or(b.to_flat()?)),
            NestedPredicate::Not(p) => Some(p.to_flat()?.not()),
        }
    }

    /// Number of subquery constructs at this predicate level and inside
    /// any embedded queries.
    pub fn subquery_count(&self) -> usize {
        match self {
            NestedPredicate::Atom(_) => 0,
            NestedPredicate::Subquery(s) => 1 + s.query().subquery_count(),
            NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => {
                a.subquery_count() + b.subquery_count()
            }
            NestedPredicate::Not(p) => p.subquery_count(),
        }
    }

    /// Nesting depth contributed by this predicate (1 + depth of embedded
    /// queries, for each subquery construct).
    pub fn nesting_depth(&self) -> usize {
        match self {
            NestedPredicate::Atom(_) => 0,
            NestedPredicate::Subquery(s) => 1 + s.query().nesting_depth(),
            NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => {
                a.nesting_depth().max(b.nesting_depth())
            }
            NestedPredicate::Not(p) => p.nesting_depth(),
        }
    }

    /// The subquery predicates at *this* level (not descending into
    /// embedded queries), in left-to-right order.
    pub fn top_level_subqueries(&self) -> Vec<&SubqueryPred> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a NestedPredicate, out: &mut Vec<&'a SubqueryPred>) {
            match p {
                NestedPredicate::Atom(_) => {}
                NestedPredicate::Subquery(s) => out.push(s),
                NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                NestedPredicate::Not(q) => walk(q, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

/// Shape of a subquery's output, used when decomposing a subquery block
/// for translation (Table 1 distinguishes `π[R.y]`, `π[f(R.y)]`, and bare
/// existential blocks).
#[derive(Debug, Clone, PartialEq)]
pub enum SubqueryOutput {
    /// Whole rows — existential subqueries.
    Row,
    /// A single projected attribute `R.y`.
    Column(ColumnRef),
    /// A scalar aggregate `f(R.y)`.
    Agg(NamedAgg),
}

/// Peel a query block into (source expression, accumulated selection
/// predicate, output shape). Projection and selection layers interleave
/// freely; the source is whatever remains (a table, join, or nested
/// structure). Used both by the GMDJ translation (to extract θ and the
/// compared attribute per Table 1) and by the baseline evaluators.
pub fn peel_block(q: &QueryExpr) -> (QueryExpr, NestedPredicate, SubqueryOutput) {
    let mut output = SubqueryOutput::Row;
    let mut preds: Vec<NestedPredicate> = Vec::new();
    let mut cur = q;
    loop {
        match cur {
            QueryExpr::Project { input, columns, .. } => {
                if matches!(output, SubqueryOutput::Row) && columns.len() == 1 {
                    output = SubqueryOutput::Column(columns[0].clone());
                }
                cur = input;
            }
            QueryExpr::AggProject { input, agg } => {
                output = SubqueryOutput::Agg(agg.clone());
                cur = input;
            }
            QueryExpr::Select { input, predicate } => {
                preds.push(predicate.clone());
                cur = input;
            }
            other => {
                let body = preds
                    .into_iter()
                    .rev()
                    .reduce(|a, b| a.and(b))
                    .unwrap_or(NestedPredicate::Atom(Predicate::true_()));
                return (other.clone(), body, output);
            }
        }
    }
}

impl fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryExpr::Table { name, qualifier } => {
                if name == qualifier {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name}→{qualifier}")
                }
            }
            QueryExpr::Select { input, predicate } => write!(f, "σ[{predicate}]({input})"),
            QueryExpr::Project {
                input,
                columns,
                distinct,
            } => {
                let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
                let pi = if *distinct { "πᵈ" } else { "π" };
                write!(f, "{pi}[{}]({input})", cols.join(", "))
            }
            QueryExpr::AggProject { input, agg } => write!(f, "π[{agg}]({input})"),
            QueryExpr::Join { left, right, on } => write!(f, "({left} ⋈[{on}] {right})"),
            QueryExpr::GroupBy { input, keys, aggs } => {
                let ks: Vec<String> = keys.iter().map(|c| c.to_string()).collect();
                let ags: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                write!(f, "γ[{}; {}]({input})", ks.join(", "), ags.join(", "))
            }
            QueryExpr::OrderBy { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c}{}", if *asc { "" } else { "↓" }))
                    .collect();
                write!(f, "sort[{}]({input})", ks.join(", "))
            }
            QueryExpr::Limit { input, n } => write!(f, "limit[{n}]({input})"),
        }
    }
}

impl fmt::Display for SubqueryPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubqueryPred::Cmp { left, op, query } => write!(f, "{left} {op} ({query})"),
            SubqueryPred::Quantified {
                left,
                op,
                quantifier,
                query,
            } => {
                write!(f, "{left} {op}_{quantifier} ({query})")
            }
            SubqueryPred::In {
                left,
                query,
                negated,
            } => {
                write!(f, "{left} {} ({query})", if *negated { "∉" } else { "∈" })
            }
            SubqueryPred::Exists { query, negated } => {
                write!(f, "{}({query})", if *negated { "∄" } else { "∃" })
            }
        }
    }
}

impl fmt::Display for NestedPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestedPredicate::Atom(p) => write!(f, "{p}"),
            NestedPredicate::Subquery(s) => write!(f, "{s}"),
            NestedPredicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            NestedPredicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            NestedPredicate::Not(p) => write!(f, "¬({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_relation::expr::{col, lit};

    fn flow(q: &str) -> QueryExpr {
        QueryExpr::table("Flow", q)
    }

    #[test]
    fn local_qualifiers_cover_joins_and_dedupe() {
        let q = flow("F1").join(flow("F2"), col("F1.k").eq(col("F2.k")));
        assert_eq!(q.local_qualifiers(), vec!["F1", "F2"]);
        let q = flow("F").select_flat(col("F.a").eq(lit(1)));
        assert_eq!(q.local_qualifiers(), vec!["F"]);
    }

    #[test]
    fn subquery_count_and_depth() {
        // σ[∃ σ[∄ σ[θ](Flow→F)](Hours→H)](User→U): two subqueries, depth 2.
        let inner = flow("F").select_flat(col("F.x").eq(col("H.y")));
        let mid = QueryExpr::table("Hours", "H").select(not_exists(inner));
        let outer = QueryExpr::table("User", "U").select(exists(mid));
        assert_eq!(outer.subquery_count(), 2);
        assert_eq!(outer.nesting_depth(), 2);
    }

    #[test]
    fn to_flat_requires_no_subqueries() {
        let p = NestedPredicate::atom(col("a").eq(lit(1)))
            .and(NestedPredicate::atom(col("b").gt(lit(2))));
        assert!(p.to_flat().is_some());
        let q = p.and(exists(flow("F")));
        assert!(q.to_flat().is_none());
        assert!(!q.is_flat());
    }

    #[test]
    fn top_level_subqueries_do_not_descend() {
        let inner = flow("F2").select(exists(flow("F3")));
        let p = exists(inner).and(not_exists(flow("F1")));
        // Two at top level; the one inside F2's selection is not listed.
        assert_eq!(p.top_level_subqueries().len(), 2);
        assert_eq!(p.subquery_count(), 3);
    }

    #[test]
    fn quantifier_duality() {
        assert_eq!(Quantifier::Some.dual(), Quantifier::All);
        assert_eq!(Quantifier::All.dual(), Quantifier::Some);
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = flow("F").select_flat(col("F.DestIP").eq(lit("167.167.167.0")));
        let p = not_exists(q);
        assert_eq!(p.to_string(), "∄(σ[F.DestIP = \"167.167.167.0\"](Flow→F))");
    }
}
