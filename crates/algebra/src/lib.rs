//! # gmdj-algebra
//!
//! The nested query algebra of Section 2.1 of the paper: an extended
//! version of the algebra of Bækgaard & Mark whose selection predicates may
//! embed SQL subquery constructs.
//!
//! The algebra mirrors SQL's subquery vocabulary exactly:
//!
//! * nested comparison selection `σ[x φ S]B` — scalar subquery;
//! * quantified nested comparison `σ[x φ_some S]B` / `σ[x φ_all S]B`;
//! * nested existential selection `σ[∃S]B` / `σ[∄S]B`;
//! * `IN` / `NOT IN` as the standard synonyms for `=some` / `≠all`.
//!
//! This crate owns:
//!
//! * [`ast`] — the query-expression and nested-predicate AST, with
//!   builders that read like the paper's notation;
//! * [`analysis`] — scope computation, *free references* and *correlation
//!   predicates*, and the neighboring / non-neighboring classification of
//!   Section 3.2;
//! * [`normalize`] — the preamble of Algorithm SubqueryToGMDJ: desugaring
//!   `IN`/`NOT IN`, pushing negations down by De Morgan's laws, and
//!   eliminating negations in front of subqueries with
//!   `¬(t φ S) ⇒ t φ̄ S`, `¬(t φ_some S) ⇒ t φ̄_all S`,
//!   `¬(t φ_all S) ⇒ t φ̄_some S`, `¬∃ ⇒ ∄`, `¬∄ ⇒ ∃`.
//!
//! Evaluation of the algebra lives elsewhere: reference (tuple-iteration)
//! semantics in `gmdj-engine`, and the GMDJ translation in `gmdj-core`.

pub mod analysis;
pub mod ast;
pub mod normalize;

pub use analysis::{classify_correlations, free_references, CorrelationClass, FreeRef};
pub use ast::{
    exists, not_exists, NestedPredicate, Quantifier, QueryExpr, SubqueryOutput, SubqueryPred,
};
pub use normalize::normalize_negations;
