//! Free references and correlation analysis (Sections 2.1 and 3.2).
//!
//! The analysis is syntactic over qualifiers, matching the paper's usage:
//! every attribute reference is qualifier-dotted, and a reference is *free*
//! in a query block when its qualifier is not introduced by that block's
//! own FROM. A selection predicate containing a free reference is a
//! *correlation predicate*.
//!
//! Section 3.2 further distinguishes **neighboring** predicates (all free
//! references resolve one level up, in the immediately enclosing query
//! expression) from **non-neighboring** ones (some reference reaches
//! further out). Non-neighboring predicates are the only case where the
//! GMDJ translation must introduce supplementary joins (Theorems 3.3/3.4).

use gmdj_relation::schema::ColumnRef;

use crate::ast::{NestedPredicate, QueryExpr, SubqueryPred};

/// A free attribute reference found inside a query block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeRef {
    /// The reference as written.
    pub column: ColumnRef,
    /// Number of enclosing blocks between the reference and the block that
    /// introduces its qualifier: `Some(1)` = immediately enclosing block
    /// (neighboring), `Some(n>1)` = non-neighboring, `None` = the
    /// qualifier is introduced nowhere in scope (a malformed query).
    pub levels_up: Option<usize>,
}

/// Correlation classification of a subquery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationClass {
    /// No free references: the subquery is independent of the outer query.
    Uncorrelated,
    /// All free references resolve in the immediately enclosing block.
    Neighboring,
    /// At least one free reference reaches past the immediately enclosing
    /// block (Example 3.3's `F.SourceIP = U.IPAddress`).
    NonNeighboring,
}

/// Compute the free references of `query`, treating `enclosing` as the
/// stack of enclosing blocks' local qualifier sets (outermost first).
///
/// References inside nested subqueries of `query` are analyzed in their
/// own scopes and reported here only if they reach *past* `query` itself —
/// i.e. the result is exactly the set of references that make `query`
/// correlated with its enclosing blocks.
pub fn free_references(query: &QueryExpr, enclosing: &[Vec<String>]) -> Vec<FreeRef> {
    let mut scopes: Vec<Vec<String>> = enclosing.to_vec();
    let mut out = Vec::new();
    walk_query(query, &mut scopes, &mut out);
    // Keep only references escaping `query` itself: those whose qualifier
    // is not introduced at any depth at or below `query`. `walk_query`
    // already resolves against the full stack; filter to ones reaching
    // into `enclosing`.
    // A reference escapes `query` iff the scope that introduces its
    // qualifier is one of the `enclosing` scopes: the resolving scope's
    // stack index is `depth_of_block - levels_up`.
    out.retain(|(depth_of_block, fr)| match fr.levels_up {
        Some(levels) => depth_of_block
            .checked_sub(levels)
            .is_none_or(|resolved_idx| resolved_idx < enclosing.len()),
        None => true,
    });
    out.into_iter().map(|(_, fr)| fr).collect()
}

/// Classify the correlation of `query` against its enclosing scopes.
pub fn classify_correlations(query: &QueryExpr, enclosing: &[Vec<String>]) -> CorrelationClass {
    let refs = free_references(query, enclosing);
    if refs.is_empty() {
        return CorrelationClass::Uncorrelated;
    }
    // A reference is neighboring iff it resolves exactly one block up from
    // the block it occurs in. `free_references` returns levels relative to
    // the occurrence block, so Some(1) is neighboring regardless of how
    // deep the occurrence sits inside `query`.
    if refs.iter().all(|r| r.levels_up == Some(1)) {
        CorrelationClass::Neighboring
    } else {
        CorrelationClass::NonNeighboring
    }
}

/// Walk a query: `scopes` holds qualifier sets of all enclosing blocks
/// plus, while visiting selection predicates, the current block's own
/// qualifiers as the last entry. Records `(depth_of_block, FreeRef)` where
/// `depth_of_block` is the number of scopes enclosing the *occurrence*.
fn walk_query(query: &QueryExpr, scopes: &mut Vec<Vec<String>>, out: &mut Vec<(usize, FreeRef)>) {
    let local: Vec<String> = query
        .local_qualifiers()
        .into_iter()
        .map(str::to_string)
        .collect();
    scopes.push(local);
    collect_from_query(query, scopes, out);
    scopes.pop();
}

fn collect_from_query(
    query: &QueryExpr,
    scopes: &mut Vec<Vec<String>>,
    out: &mut Vec<(usize, FreeRef)>,
) {
    match query {
        QueryExpr::Table { .. } => {}
        QueryExpr::Select { input, predicate } => {
            collect_from_query(input, scopes, out);
            collect_from_predicate(predicate, scopes, out);
        }
        QueryExpr::Project { input, .. }
        | QueryExpr::AggProject { input, .. }
        | QueryExpr::OrderBy { input, .. }
        | QueryExpr::Limit { input, .. } => {
            collect_from_query(input, scopes, out);
        }
        QueryExpr::GroupBy { input, keys, aggs } => {
            collect_from_query(input, scopes, out);
            record_columns(keys, scopes, out);
            for a in aggs {
                if let Some(e) = &a.input {
                    let mut cols = Vec::new();
                    e.collect_columns(&mut cols);
                    record_columns(&cols, scopes, out);
                }
            }
        }
        QueryExpr::Join { left, right, on } => {
            collect_from_query(left, scopes, out);
            collect_from_query(right, scopes, out);
            record_columns(&on.columns(), scopes, out);
        }
    }
}

fn collect_from_predicate(
    pred: &NestedPredicate,
    scopes: &mut Vec<Vec<String>>,
    out: &mut Vec<(usize, FreeRef)>,
) {
    match pred {
        NestedPredicate::Atom(p) => record_columns(&p.columns(), scopes, out),
        NestedPredicate::Subquery(s) => {
            // The left operand (if any) is written in the current block but
            // *evaluated* in the subquery's block: the Table-1 translation
            // places the comparison `x φ y` inside the subquery's own GMDJ
            // condition (Theorem 3.2). Record it one level deeper, so a
            // reference to the current block resolves one level up and a
            // reference past it counts as non-neighboring (and receives
            // the Theorem 3.3 push-down).
            match s {
                SubqueryPred::Cmp { left, .. }
                | SubqueryPred::Quantified { left, .. }
                | SubqueryPred::In { left, .. } => {
                    let mut cols = Vec::new();
                    left.collect_columns(&mut cols);
                    let local: Vec<String> = s
                        .query()
                        .local_qualifiers()
                        .into_iter()
                        .map(str::to_string)
                        .collect();
                    scopes.push(local);
                    record_columns(&cols, scopes, out);
                    scopes.pop();
                }
                SubqueryPred::Exists { .. } => {}
            }
            walk_query(s.query(), scopes, out);
        }
        NestedPredicate::And(a, b) | NestedPredicate::Or(a, b) => {
            collect_from_predicate(a, scopes, out);
            collect_from_predicate(b, scopes, out);
        }
        NestedPredicate::Not(p) => collect_from_predicate(p, scopes, out),
    }
}

fn record_columns(cols: &[ColumnRef], scopes: &[Vec<String>], out: &mut Vec<(usize, FreeRef)>) {
    let depth_of_block = scopes.len() - 1; // number of *enclosing* scopes
    let current = scopes.last().expect("scope stack never empty here");
    for c in cols {
        let Some(q) = &c.qualifier else { continue }; // unqualified = local
        if current.iter().any(|s| s == q) {
            continue; // bound locally
        }
        let mut levels_up = None;
        for (dist, scope) in scopes[..scopes.len() - 1].iter().rev().enumerate() {
            if scope.iter().any(|s| s == q) {
                levels_up = Some(dist + 1);
                break;
            }
        }
        out.push((
            depth_of_block,
            FreeRef {
                column: c.clone(),
                levels_up,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{exists, not_exists, QueryExpr};
    use gmdj_relation::expr::{col, lit};

    /// Example 2.2's B: σ[∃ σ[... H refs ...](Flow→FI)](Hours→H)
    fn example_2_2_base() -> QueryExpr {
        let inner = QueryExpr::table("Flow", "FI").select_flat(
            col("FI.DestIP")
                .eq(lit("167.167.167.0"))
                .and(col("FI.StartTime").ge(col("H.StartInterval")))
                .and(col("FI.StartTime").lt(col("H.EndInterval"))),
        );
        QueryExpr::table("Hours", "H").select(exists(inner))
    }

    #[test]
    fn neighboring_correlation_detected() {
        let q = example_2_2_base();
        // Analyze the inner subquery in the context of the Hours block.
        let NestedPredicate::Subquery(sq) = (match &q {
            QueryExpr::Select { predicate, .. } => predicate.clone(),
            _ => unreachable!(),
        }) else {
            unreachable!()
        };
        let refs = free_references(sq.query(), &[vec!["H".into()]]);
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().all(|r| r.levels_up == Some(1)));
        assert_eq!(
            classify_correlations(sq.query(), &[vec!["H".into()]]),
            CorrelationClass::Neighboring
        );
    }

    #[test]
    fn uncorrelated_subquery() {
        let inner = QueryExpr::table("Flow", "F").select_flat(col("F.a").eq(lit(1)));
        assert_eq!(
            classify_correlations(&inner, &[vec!["B".into()]]),
            CorrelationClass::Uncorrelated
        );
    }

    /// Example 3.3: σ[∄ σ[θH ∧ ∄σ[θF](Flow→F)](Hours→H)](User→U) where θF
    /// references U — a non-neighboring predicate.
    fn example_3_3() -> QueryExpr {
        let theta_f = col("F.StartTime")
            .ge(col("H.StartInterval"))
            .and(col("F.StartTime").lt(col("H.EndInterval")))
            .and(col("F.SourceIP").eq(col("U.IPAddress")));
        let inner_flow = QueryExpr::table("Flow", "F").select_flat(theta_f);
        let theta_h = col("H.StartInterval").gt(lit(0));
        let hours = QueryExpr::table("Hours", "H")
            .select(NestedPredicate::atom(theta_h).and(not_exists(inner_flow)));
        QueryExpr::table("User", "U").select(not_exists(hours))
    }

    #[test]
    fn non_neighboring_correlation_detected() {
        let q = example_3_3();
        let QueryExpr::Select { predicate, .. } = &q else {
            unreachable!()
        };
        let NestedPredicate::Subquery(sq) = predicate else {
            unreachable!()
        };
        // The Hours subquery, in the scope of User→U: the F.SourceIP =
        // U.IPAddress reference reaches 2 levels up from the Flow block.
        let refs = free_references(sq.query(), &[vec!["U".into()]]);
        assert!(refs.iter().any(|r| r.levels_up == Some(2)));
        assert_eq!(
            classify_correlations(sq.query(), &[vec!["U".into()]]),
            CorrelationClass::NonNeighboring
        );
        // The innermost Flow subquery, analyzed against [U, H] scopes, is
        // neighboring w.r.t. H but non-neighboring overall.
        let QueryExpr::Select {
            predicate: hours_pred,
            ..
        } = sq.query()
        else {
            unreachable!()
        };
        let subs = hours_pred.top_level_subqueries();
        assert_eq!(subs.len(), 1);
        let refs = free_references(subs[0].query(), &[vec!["U".into()], vec!["H".into()]]);
        let ups: Vec<_> = refs.iter().filter_map(|r| r.levels_up).collect();
        assert!(ups.contains(&1)); // H references
        assert!(ups.contains(&2)); // U reference
    }

    #[test]
    fn unresolvable_reference_reported() {
        let inner = QueryExpr::table("Flow", "F").select_flat(col("Z.a").eq(col("F.a")));
        let refs = free_references(&inner, &[vec!["B".into()]]);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].levels_up, None);
        assert_eq!(
            classify_correlations(&inner, &[vec!["B".into()]]),
            CorrelationClass::NonNeighboring
        );
    }

    #[test]
    fn left_operand_of_subquery_cmp_is_not_free_in_subquery() {
        // σ[B.x =some π[y](R)] — B.x belongs to the outer block.
        let sub = QueryExpr::table("R", "R")
            .project(vec![gmdj_relation::schema::ColumnRef::parse("R.y")]);
        let pred = NestedPredicate::Subquery(crate::ast::SubqueryPred::Quantified {
            left: col("B.x"),
            op: gmdj_relation::expr::CmpOp::Eq,
            quantifier: crate::ast::Quantifier::Some,
            query: Box::new(sub),
        });
        let outer = QueryExpr::table("Base", "B").select(pred);
        // Analyzed as a whole (no enclosing scopes), nothing is free.
        let refs = free_references(&outer, &[]);
        assert!(refs.is_empty());
    }
}
