//! CSV round-trip property: any relation (NULLs, quotes, commas,
//! newlines, unicode) survives write → read unchanged, both with the
//! declared schema and with inference.

use std::io::BufReader;

use proptest::prelude::*;

use gmdj_relation::csv::{read_csv, read_csv_infer, write_csv};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{DataType, Schema};
use gmdj_relation::value::Value;

fn string_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => "[a-zA-Z0-9 ,\"'\n;|_-]{0,12}".prop_map(Value::from),
        1 => Just(Value::str("")),
        1 => Just(Value::Null),
    ]
}

fn int_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => any::<i64>().prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation() -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(
        "T",
        &[
            ("id", DataType::Int),
            ("label", DataType::Str),
            ("note", DataType::Str),
        ],
    );
    proptest::collection::vec((int_value(), string_value(), string_value()), 0..20).prop_map(
        move |rows| {
            Relation::from_parts(
                schema.clone(),
                rows.into_iter()
                    .map(|(a, b, c)| vec![a, b, c].into_boxed_slice())
                    .collect(),
            )
        },
    )
}

/// Like [`relation`] but string cells can never look numeric, so type
/// inference cannot legitimately re-type them (inference of `"007"` as
/// the integer 7 is correct behaviour, not a round-trip bug).
fn relation_with_nonnumeric_strings() -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(
        "T",
        &[
            ("id", DataType::Int),
            ("label", DataType::Str),
            ("note", DataType::Str),
        ],
    );
    let s = prop_oneof![
        4 => "[a-z][a-zA-Z0-9 ,\"'\n;|_-]{0,11}".prop_map(Value::from),
        1 => Just(Value::str("")),
        1 => Just(Value::Null),
    ];
    proptest::collection::vec((int_value(), s.clone(), s), 0..20).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(a, b, c)| vec![a, b, c].into_boxed_slice())
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn schema_checked_round_trip(rel in relation()) {
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let mut reader = BufReader::new(buf.as_slice());
        let back = read_csv(&mut reader, rel.schema().clone()).unwrap();
        prop_assert!(rel.multiset_eq(&back), "csv:\n{}", String::from_utf8_lossy(&buf));
        // Row ORDER is also preserved, not just the multiset.
        for (a, b) in rel.rows().iter().zip(back.rows()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn inferring_round_trip(rel in relation_with_nonnumeric_strings()) {
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let mut reader = BufReader::new(buf.as_slice());
        let back = read_csv_infer(&mut reader, "T").unwrap();
        // Inference may type an all-integer-looking string column as Int;
        // compare via display text instead of value identity.
        prop_assert_eq!(rel.len(), back.len());
        for (a, b) in rel.rows().iter().zip(back.rows()) {
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_string(), y.to_string());
            }
        }
    }
}
