//! Property tests for the relational substrate: operator equivalences and
//! algebraic laws over randomized relations (with NULLs and duplicates).

use proptest::prelude::*;

use gmdj_relation::expr::{col, lit, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::index::IntervalIndex;
use gmdj_relation::ops::{self, join};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::{Truth, Value};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..6).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation(qualifier: &'static str, max_rows: usize) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("k", DataType::Int), ("v", DataType::Int)]);
    proptest::collection::vec((value(), value()), 0..max_rows).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(k, v)| vec![k, v].into_boxed_slice())
                .collect(),
        )
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// A join condition mixing an equality pair and a residual comparison.
fn join_condition() -> impl Strategy<Value = Predicate> {
    (proptest::bool::ANY, cmp_op(), proptest::bool::ANY).prop_map(|(with_equi, op, extra)| {
        let mut p = if with_equi {
            col("L.k").eq(col("R.k"))
        } else {
            ScalarExpr::Column(ColumnRef::qualified("L", "k")).cmp_with(op, col("R.k"))
        };
        if extra {
            p = p.and(col("L.v").cmp_with(op, col("R.v")));
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Hash joins and block nested-loop joins are equivalent.
    #[test]
    fn hash_join_equals_nested_loop(
        l in relation("L", 12),
        r in relation("R", 12),
        cond in join_condition(),
    ) {
        let h = join::theta_join(&l, &r, &cond).unwrap();
        let n = join::nested_loop_join(&l, &r, &cond).unwrap();
        prop_assert!(h.multiset_eq(&n));
    }

    /// Semi-join and anti-join partition the left input, on both the hash
    /// and the forced-NL paths.
    #[test]
    fn semi_and_anti_partition(
        l in relation("L", 12),
        r in relation("R", 12),
        cond in join_condition(),
    ) {
        let s = join::semi_join(&l, &r, &cond).unwrap();
        let a = join::anti_join(&l, &r, &cond).unwrap();
        prop_assert_eq!(s.len() + a.len(), l.len());
        prop_assert!(join::semi_join_nl(&l, &r, &cond).unwrap().multiset_eq(&s));
        prop_assert!(join::anti_join_nl(&l, &r, &cond).unwrap().multiset_eq(&a));
        // Semi-join result equals the distinct-free filter of matching
        // left rows of the inner join.
        let inner = join::theta_join(&l, &r, &cond).unwrap();
        for row in s.rows() {
            prop_assert!(inner.rows().iter().any(|j| j[..2] == row[..]));
        }
    }

    /// Left outer join: every left tuple appears; unmatched ones carry
    /// NULL padding; the matched part is exactly the inner join.
    #[test]
    fn left_outer_join_laws(
        l in relation("L", 10),
        r in relation("R", 10),
        cond in join_condition(),
    ) {
        let outer = join::left_outer_join(&l, &r, &cond).unwrap();
        let inner = join::theta_join(&l, &r, &cond).unwrap();
        let padded: Vec<_> =
            outer.rows().iter().filter(|row| row[2].is_null() && row[3].is_null()).collect();
        // inner ⊎ padded covers outer... sizes must tally: every left row
        // appears max(matches, 1) times.
        prop_assert!(outer.len() >= l.len());
        prop_assert_eq!(outer.len(), inner.len() + padded.len());
        // The non-padded part is the inner join (as multisets).
        let matched_rows: Vec<_> = outer
            .rows()
            .iter()
            .filter(|row| !(row[2].is_null() && row[3].is_null()))
            .cloned()
            .collect();
        let matched = Relation::from_parts(outer.schema().clone(), matched_rows);
        prop_assert!(matched.multiset_eq(&inner));
    }

    /// σ[p] ⊎ σ[¬p] loses exactly the unknown rows; both are subsets of
    /// the input.
    #[test]
    fn select_and_negation_partition_modulo_unknown(
        t in relation("T", 14),
        op in cmp_op(),
        k in 0i64..6,
    ) {
        let p = col("T.k").cmp_with(op, lit(k));
        let yes = ops::select(&t, &p).unwrap();
        let no = ops::select(&t, &p.clone().not()).unwrap();
        let unknown = t.rows().iter().filter(|row| row[0].is_null()).count();
        prop_assert_eq!(yes.len() + no.len() + unknown, t.len());
    }

    /// distinct is idempotent and bounded by the input.
    #[test]
    fn distinct_laws(t in relation("T", 14)) {
        let d = ops::distinct(&t);
        prop_assert!(d.len() <= t.len());
        prop_assert!(ops::distinct(&d).multiset_eq(&d));
    }

    /// Multiset difference: |A ∖ B| + |A ∩ B|ᵐᵘˡᵗⁱ = |A|.
    #[test]
    fn difference_monus(a in relation("T", 12), b in relation("T", 12)) {
        let d = ops::difference(&a, &b).unwrap();
        prop_assert!(d.len() <= a.len());
        // Subtracting twice changes nothing more.
        let d2 = ops::difference(&d, &b).unwrap();
        // d2 can only shrink if b had more copies than a at some tuple —
        // impossible after one subtraction of the same b... unless b has
        // duplicates that exceeded a's count the first time, in which case
        // they were already exhausted. Hence idempotence:
        prop_assert!(d2.multiset_eq(&ops::difference(&d, &b).unwrap()));
        // Union then difference restores the original.
        let u = ops::union_all(&a, &b).unwrap();
        let back = ops::difference(&u, &b).unwrap();
        prop_assert!(back.multiset_eq(&a));
    }

    /// Hash group-by: group sizes sum to the input size; global
    /// aggregation matches a manual fold.
    #[test]
    fn group_by_laws(t in relation("T", 14)) {
        use gmdj_relation::agg::NamedAgg;
        let grouped = ops::group_by(
            &t,
            &[ColumnRef::parse("T.k")],
            &[NamedAgg::count_star("cnt"), NamedAgg::sum(col("T.v"), "s")],
        )
        .unwrap();
        let total: i64 = grouped.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, t.len());
        // Global sum agrees with a manual fold skipping NULLs.
        let global = ops::group_by(&t, &[], &[NamedAgg::sum(col("T.v"), "s")]).unwrap();
        let manual: Option<i64> = t
            .rows()
            .iter()
            .filter_map(|r| r[1].as_i64())
            .fold(None, |acc, v| Some(acc.unwrap_or(0) + v));
        match manual {
            Some(m) => prop_assert_eq!(global.rows()[0][0].clone(), Value::Int(m)),
            None => prop_assert!(global.rows()[0][0].is_null()),
        }
    }

    /// The interval index agrees with a linear scan of the band
    /// condition.
    #[test]
    fn interval_index_equals_scan(
        bounds in proptest::collection::vec((0i64..20, 0i64..20), 0..15),
        probe in 0i64..25,
        inclusive in proptest::bool::ANY,
    ) {
        let idx = IntervalIndex::build(
            bounds.iter().map(|(lo, hi)| (Value::Int(*lo), Value::Int(*hi))),
            inclusive,
        );
        let mut got = Vec::new();
        idx.stab(&Value::Int(probe), &mut got);
        got.sort_unstable();
        let expected: Vec<u32> = bounds
            .iter()
            .enumerate()
            .filter(|(_, (lo, hi))| {
                *lo <= probe && if inclusive { probe <= *hi } else { probe < *hi }
            })
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// 3VL laws hold under evaluation: double negation, De Morgan, and
    /// comparison-operator complement.
    #[test]
    fn three_valued_logic_laws(
        a in value(),
        b in value(),
        op in cmp_op(),
    ) {
        let schema = Schema::qualified("T", &[("x", DataType::Int), ("y", DataType::Int)]);
        let row = [a, b];
        let p = col("T.x").cmp_with(op, col("T.y"));
        let not_p = Predicate::Not(Box::new(p.clone()));
        let complement = col("T.x").cmp_with(op.negate(), col("T.y"));
        let ev = |q: &Predicate| q.eval_row(&schema, &row).unwrap();
        // ¬¬p = p
        prop_assert_eq!(ev(&Predicate::Not(Box::new(not_p.clone()))), ev(&p));
        // ¬(x φ y) = x φ̄ y under 3VL.
        prop_assert_eq!(ev(&not_p), ev(&complement));
        // De Morgan on (p ∧ q) with q = IS NULL.
        let q = Predicate::IsNull(col("T.y"));
        let lhs = Predicate::Not(Box::new(p.clone().and(q.clone())));
        let rhs = not_p.or(Predicate::Not(Box::new(q)));
        prop_assert_eq!(ev(&lhs), ev(&rhs));
    }

    /// Projection then projection composes; extend-then-drop is identity.
    #[test]
    fn project_extend_drop_roundtrip(t in relation("T", 10)) {
        let extended = ops::extend(&t, &[(col("T.k").add(lit(1)), "k1".into())]).unwrap();
        let dropped = ops::drop_columns(&extended, &["k1"]).unwrap();
        prop_assert!(dropped.multiset_eq(&t));
    }

    /// Where-clause truncation: selected rows all evaluate to true.
    #[test]
    fn selection_soundness(t in relation("T", 12), op in cmp_op(), k in 0i64..6) {
        let p = col("T.v").cmp_with(op, lit(k));
        let out = ops::select(&t, &p).unwrap();
        for row in out.rows() {
            prop_assert_eq!(p.eval_row(t.schema(), row).unwrap(), Truth::True);
        }
    }
}
